//! One simulated experiment: a video-recording use case running against a
//! multi-channel memory configuration for one frame, evaluated the way the
//! paper's Section IV evaluates it — per-frame memory access time against
//! the real-time budget (with the 15 % data-processing margin), and average
//! power over the frame period with the equation (1) interface power added.

use core::fmt;

use serde::{Deserialize, Serialize};

use mcm_channel::{MasterTransaction, MemoryConfig, MemorySubsystem, SubsystemReport};
use mcm_ctrl::AccessOp;
use mcm_fault::{DegradeSummary, FaultPlan, StageShed, SHED_PRIORITY};
use mcm_load::{
    HdOperatingPoint, LayoutOptions, LoadModel, Region, Stage, Traffic, UseCase, Workload,
};
use mcm_power::{InterfacePowerModel, PowerSummary};
use mcm_sim::SimTime;
use mcm_verify::{
    audit_trace, check_degradation, check_tenant_attribution, check_traffic_balance, lint_all,
    Report, TraceAuditOptions,
};

use crate::error::CoreError;

/// How a configuration fares against the frame's real-time budget.
///
/// The paper suppresses Fig. 5 bars that "cannot meet the real time
/// requirements with a 15 % margin for the data processing" and flags
/// configurations that only just meet it as MARGINAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealTimeVerdict {
    /// Access time fits within the budget minus the margin.
    Meets,
    /// Access time fits the budget but not the margin (the paper's
    /// "MARGINAL" annotation).
    Marginal,
    /// Access time exceeds the frame budget outright.
    Fails,
}

impl RealTimeVerdict {
    /// Whether the configuration is usable at all (meets or marginal).
    pub fn is_real_time(self) -> bool {
        !matches!(self, RealTimeVerdict::Fails)
    }
}

impl fmt::Display for RealTimeVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealTimeVerdict::Meets => write!(f, "meets"),
            RealTimeVerdict::Marginal => write!(f, "MARGINAL"),
            RealTimeVerdict::Fails => write!(f, "FAILS"),
        }
    }
}

/// How large the master transactions the SMP side emits are.
///
/// The paper's load is "very regular and foreseeable … relatively large data
/// amounts resulting in several memory accesses to sequential memory
/// locations", interleaved so that "all the channels can be used in a single
/// master transaction". Its uniform ≈2× speedup per channel doubling implies
/// the per-channel sequential run length stays constant as channels are
/// added — that is [`ChunkPolicy::PerChannel`], the default. A fixed
/// cache-line master ([`ChunkPolicy::Fixed`]`(64)`) is kept for the
/// transaction-size ablation; it makes multi-channel efficiency collapse
/// into read/write turnarounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChunkPolicy {
    /// Master transactions of exactly this many bytes.
    Fixed(u32),
    /// Master transactions of `bytes_per_channel × channels` bytes, keeping
    /// each channel's burst-run length constant as the channel count grows.
    PerChannel(u32),
}

impl ChunkPolicy {
    /// The concrete transaction size for a `channels`-channel memory.
    pub fn bytes(self, channels: u32) -> u32 {
        match self {
            ChunkPolicy::Fixed(n) => n,
            ChunkPolicy::PerChannel(n) => n * channels,
        }
    }
}

/// How the master paces its memory operations within the frame budget.
///
/// The paper measures pure memory access time: the master issues the
/// frame's operations as fast as the memory accepts them and the subsystem
/// then idles (race-to-sleep). [`Pacing::Paced`] is this repo's extension:
/// a rate-controlled master that spreads the same operations evenly over
/// the frame budget, exposing the energy/latency trade between racing to
/// power-down and running just-in-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Pacing {
    /// Issue everything back-to-back, then idle (the paper's model).
    #[default]
    Greedy,
    /// Spread arrivals uniformly over the frame budget.
    Paced,
}

/// A fully specified experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The video-recording load.
    pub use_case: UseCase,
    /// The memory subsystem under test.
    pub memory: MemoryConfig,
    /// Master transaction sizing.
    pub chunk: ChunkPolicy,
    /// Arrival pacing (paper: greedy).
    pub pacing: Pacing,
    /// Data-processing margin on the real-time budget (paper: 0.15).
    pub margin: f64,
    /// Interface power model (equation (1)).
    pub interface: InterfacePowerModel,
    /// Optional cap on the number of load operations simulated, with the
    /// access time extrapolated linearly from the simulated prefix. `None`
    /// simulates the whole frame. Intended for quick tests only.
    pub op_limit: Option<u64>,
    /// Which [`LoadModel`] drives the run: the paper's Table I chain by
    /// default, or one of the other named workloads (see
    /// `docs/WORKLOADS.md`). The base `use_case` still sets frame geometry
    /// and rates for every workload.
    pub workload: Workload,
}

// `workload` is serialized only when non-default so pre-workload
// experiments (and therefore sweep cache fingerprints of Table I runs)
// keep their exact byte representation; field order matches declaration
// order, the same shape the former derive produced.
impl Serialize for Experiment {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("use_case".to_string(), self.use_case.to_value());
        m.insert("memory".to_string(), self.memory.to_value());
        m.insert("chunk".to_string(), self.chunk.to_value());
        m.insert("pacing".to_string(), self.pacing.to_value());
        m.insert("margin".to_string(), self.margin.to_value());
        m.insert("interface".to_string(), self.interface.to_value());
        m.insert("op_limit".to_string(), self.op_limit.to_value());
        if !self.workload.is_default() {
            m.insert("workload".to_string(), self.workload.to_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for Experiment {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for Experiment"))?;
        let field = |name: &str| {
            obj.get(name)
                .ok_or_else(|| serde::Error::missing_field(name))
        };
        Ok(Experiment {
            use_case: Deserialize::from_value(field("use_case")?)?,
            memory: Deserialize::from_value(field("memory")?)?,
            chunk: Deserialize::from_value(field("chunk")?)?,
            pacing: Deserialize::from_value(field("pacing")?)?,
            margin: Deserialize::from_value(field("margin")?)?,
            interface: Deserialize::from_value(field("interface")?)?,
            op_limit: Deserialize::from_value(field("op_limit")?)?,
            workload: match obj.get("workload") {
                Some(v) => Deserialize::from_value(v)?,
                None => Workload::default(),
            },
        })
    }
}

/// What a [`Experiment::run_with`] call should do beyond the plain
/// single-frame simulation.
///
/// This is the one knob set for every run entry point: verification,
/// frame count, op limits, instrumentation and fault injection all hang
/// off it.
///
/// # Examples
///
/// Observing a run with a [`StatsRecorder`](mcm_obs::StatsRecorder):
///
/// ```
/// use std::sync::Arc;
/// use mcm_core::{Experiment, RunOptions};
/// use mcm_load::HdOperatingPoint;
/// use mcm_obs::StatsRecorder;
///
/// let mut exp = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 400);
/// exp.op_limit = Some(2_000);
///
/// let recorder = Arc::new(StatsRecorder::new());
/// let options = RunOptions::default().with_recorder(recorder.clone());
/// exp.run_with(&options).unwrap();
///
/// let report = recorder.report();
/// assert_eq!(report.channels.len(), 2);
/// assert!(report.channels[0].counters.requests > 0);
/// ```
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Run the `mcm-verify` conformance checks alongside the simulation
    /// (single-frame runs only).
    pub verify: bool,
    /// Number of consecutive frames: `1` is the paper's single-frame
    /// evaluation, `> 1` a steady-state session with refresh debt and bank
    /// state carrying across frame boundaries.
    pub frames: u32,
    /// Event budget: caps the number of simulated load operations,
    /// overriding [`Experiment::op_limit`] when set.
    pub op_limit: Option<u64>,
    /// Seed-keyed fault plan injected into the memory subsystem before the
    /// frame runs (single-frame runs only). `None` — the default — runs
    /// healthy. Part of the run's identity: two runs with the same plan are
    /// bit-identical, and sweep cache fingerprints include it.
    pub faults: Option<FaultPlan>,
    /// Instrumentation sink every simulated layer reports through; `None`
    /// (the default) skips all recording at the cost of one branch per
    /// event. Excluded from equality and serialization, so attaching a
    /// recorder never perturbs sweep cache fingerprints.
    pub recorder: Option<std::sync::Arc<dyn mcm_obs::Recorder>>,
    /// How the run executes: event-queue engine, per-channel parallelism
    /// and steady-state memoization. The default serializes to nothing, so
    /// pre-policy cache fingerprints and store documents stay warm; a
    /// non-default policy is part of the run's identity (memoization is an
    /// approximation, and callers may legitimately want engine-keyed
    /// results side by side).
    pub execution: crate::ExecutionPolicy,
}

// The recorder is an attachment, not part of the run's identity: equality,
// hashing-adjacent uses (sweep cache fingerprints), and serialization all
// see only the behavioural knobs. The fault plan, by contrast, changes
// what the run computes, so it IS part of the identity.
impl PartialEq for RunOptions {
    fn eq(&self, other: &Self) -> bool {
        self.verify == other.verify
            && self.frames == other.frames
            && self.op_limit == other.op_limit
            && self.faults == other.faults
            && self.execution == other.execution
    }
}

impl Eq for RunOptions {}

impl Serialize for RunOptions {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("verify".to_string(), self.verify.to_value());
        m.insert("frames".to_string(), self.frames.to_value());
        m.insert("op_limit".to_string(), self.op_limit.to_value());
        // Written only when set so healthy runs keep their pre-fault
        // serialization (and therefore their sweep cache fingerprints).
        if let Some(plan) = &self.faults {
            m.insert("faults".to_string(), plan.to_value());
        }
        // Same discipline for the execution policy: the default renders as
        // an absent key, keeping pre-policy serializations byte-identical.
        if self.execution != crate::ExecutionPolicy::default() {
            m.insert("execution".to_string(), self.execution.to_value());
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for RunOptions {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for RunOptions"))?;
        let field = |name: &str| {
            obj.get(name)
                .ok_or_else(|| serde::Error::missing_field(name))
        };
        Ok(RunOptions {
            verify: Deserialize::from_value(field("verify")?)?,
            frames: Deserialize::from_value(field("frames")?)?,
            op_limit: Deserialize::from_value(field("op_limit")?)?,
            faults: match obj.get("faults") {
                Some(v) => Some(Deserialize::from_value(v)?),
                None => None,
            },
            recorder: None,
            execution: match obj.get("execution") {
                Some(v) => Deserialize::from_value(v)?,
                None => crate::ExecutionPolicy::default(),
            },
        })
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            verify: false,
            frames: 1,
            op_limit: None,
            faults: None,
            recorder: None,
            execution: crate::ExecutionPolicy::default(),
        }
    }
}

impl RunOptions {
    /// Options for a verified single-frame run.
    pub fn verified() -> Self {
        RunOptions {
            verify: true,
            ..RunOptions::default()
        }
    }

    /// Options for a `frames`-frame steady-state session.
    pub fn steady(frames: u32) -> Self {
        RunOptions {
            frames,
            ..RunOptions::default()
        }
    }

    /// Enables or disables the `mcm-verify` conformance pass (builder
    /// style).
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Sets the frame count (builder style): `1` for the paper's
    /// single-frame evaluation, more for a steady-state session.
    pub fn with_frames(mut self, frames: u32) -> Self {
        self.frames = frames;
        self
    }

    /// Caps the number of simulated load operations (builder style),
    /// overriding [`Experiment::op_limit`].
    pub fn with_op_limit(mut self, op_limit: u64) -> Self {
        self.op_limit = Some(op_limit);
        self
    }

    /// Attaches `recorder` as the run's instrumentation sink (builder
    /// style). Pass an `Arc<`[`StatsRecorder`](mcm_obs::StatsRecorder)`>`
    /// and query it after the run.
    pub fn with_recorder(mut self, recorder: std::sync::Arc<dyn mcm_obs::Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Injects `plan` into the memory subsystem before the frame runs
    /// (builder style). Only single-frame runs accept a plan; the frame
    /// result then carries a [`DegradeSummary`] describing what degraded.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the [`ExecutionPolicy`](crate::ExecutionPolicy) — engine,
    /// per-channel parallelism, steady-state memoization — for this run
    /// (builder style).
    pub fn with_execution(mut self, execution: crate::ExecutionPolicy) -> Self {
        self.execution = execution;
        self
    }
}

/// What [`Experiment::run_with`] produced, matching the requested
/// [`RunOptions`].
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// A plain single-frame run.
    Frame(FrameResult),
    /// A verified single-frame run with its conformance report.
    Verified {
        /// The frame measurement.
        result: FrameResult,
        /// Conformance findings (lints + trace audit).
        report: Report,
    },
    /// A multi-frame steady-state session.
    Steady(crate::steady::SteadyStateResult),
}

impl RunOutcome {
    /// The single-frame result, if this was a single-frame run.
    pub fn frame(&self) -> Option<&FrameResult> {
        match self {
            RunOutcome::Frame(r) | RunOutcome::Verified { result: r, .. } => Some(r),
            RunOutcome::Steady(_) => None,
        }
    }

    /// Consumes the outcome into its single-frame result, if any.
    pub fn into_frame(self) -> Option<FrameResult> {
        match self {
            RunOutcome::Frame(r) | RunOutcome::Verified { result: r, .. } => Some(r),
            RunOutcome::Steady(_) => None,
        }
    }

    /// Consumes the outcome into its single-frame result, as a typed error
    /// for callers that requested a single frame and must not see a
    /// steady-state outcome.
    pub fn try_into_frame(self) -> Result<FrameResult, CoreError> {
        self.into_frame().ok_or_else(|| CoreError::BadParam {
            reason: "steady-state outcome where a single-frame result was required".into(),
        })
    }

    /// The conformance report, if this was a verified run.
    pub fn verify_report(&self) -> Option<&Report> {
        match self {
            RunOutcome::Verified { report, .. } => Some(report),
            _ => None,
        }
    }

    /// Consumes the outcome into its frame result and conformance report,
    /// if this was a verified run.
    pub fn into_verified(self) -> Option<(FrameResult, Report)> {
        match self {
            RunOutcome::Verified { result, report } => Some((result, report)),
            _ => None,
        }
    }

    /// The steady-state result, if this was a multi-frame session.
    pub fn steady(&self) -> Option<&crate::steady::SteadyStateResult> {
        match self {
            RunOutcome::Steady(s) => Some(s),
            _ => None,
        }
    }

    /// Consumes the outcome into its steady-state result, if any.
    pub fn into_steady(self) -> Option<crate::steady::SteadyStateResult> {
        match self {
            RunOutcome::Steady(s) => Some(s),
            _ => None,
        }
    }
}

impl Experiment {
    /// The paper's experiment at one Table I operating point: `channels` ×
    /// next-generation mobile DDR at `clock_mhz`, 64 bytes per channel per
    /// master transaction, 15 % margin.
    ///
    /// This is a thin wrapper over [`Experiment::builder`]; use the builder
    /// directly for anything beyond the paper's grid axes — it returns typed
    /// errors where this constructor panics on invalid channel counts.
    // The presets are pinned by tests; a panic here is a broken build,
    // not a runtime condition a caller could handle.
    #[allow(clippy::disallowed_methods)]
    pub fn paper(point: HdOperatingPoint, channels: u32, clock_mhz: u64) -> Self {
        Experiment::builder()
            .point(point)
            .channels(channels)
            .clock_mhz(clock_mhz)
            .build()
            .expect("paper-style configuration must be valid")
    }

    /// Starts a fluent [`crate::ExperimentBuilder`] with the paper's
    /// defaults.
    pub fn builder() -> crate::ExperimentBuilder {
        crate::ExperimentBuilder::default()
    }

    /// Validates the experiment parameters, returning a typed
    /// [`CoreError::BadParam`] for anything that would panic or misbehave
    /// downstream. [`crate::ExperimentBuilder::build`] and every run entry
    /// point call this.
    pub fn validate(&self) -> Result<(), CoreError> {
        let bad = |reason: String| Err(CoreError::BadParam { reason });
        if self.memory.channels == 0 || !self.memory.channels.is_power_of_two() {
            return bad(format!(
                "channels {} must be a non-zero power of two",
                self.memory.channels
            ));
        }
        if self.memory.clock_mhz == 0 {
            return bad("clock frequency must be non-zero MHz".into());
        }
        if self.memory.granule_bytes == 0 || !self.memory.granule_bytes.is_power_of_two() {
            return bad(format!(
                "granule {} bytes must be a non-zero power of two",
                self.memory.granule_bytes
            ));
        }
        if !(0.0..1.0).contains(&self.margin) {
            return bad(format!("margin {} must be in [0, 1)", self.margin));
        }
        if self.chunk.bytes(self.memory.channels) == 0 {
            return bad("chunk policy yields zero-byte master transactions".into());
        }
        if self.use_case.fps == 0 {
            return bad("use case fps must be non-zero".into());
        }
        Ok(())
    }

    /// The [`LoadModel`] the experiment's [`Workload`] selects, over the
    /// experiment's base use case.
    pub fn model(&self) -> Box<dyn LoadModel> {
        self.workload.model(&self.use_case)
    }

    /// The unified run entry point: executes the experiment the way
    /// `options` asks for and returns the matching [`RunOutcome`].
    ///
    /// Verified runs keep every DRAM command in memory for the trace audit,
    /// so bound full-frame workloads with [`RunOptions::op_limit`] (or
    /// [`Experiment::op_limit`]). Verify findings do not abort the run.
    pub fn run_with(&self, options: &RunOptions) -> Result<RunOutcome, CoreError> {
        self.run_with_model(self.model().as_ref(), options)
    }

    /// [`Experiment::run_with`] with an explicit workload model instead of
    /// the one [`Experiment::workload`] names — the hook for external
    /// [`LoadModel`] implementations (see `examples/custom_workload.rs`).
    /// The experiment's `use_case` still sizes the real-time budget, so a
    /// custom model should be built over the same use case.
    pub fn run_with_model(
        &self,
        model: &dyn LoadModel,
        options: &RunOptions,
    ) -> Result<RunOutcome, CoreError> {
        self.validate()?;
        model.validate()?;
        if options.frames == 0 {
            return Err(CoreError::BadParam {
                reason: "run needs at least one frame".into(),
            });
        }
        if options.verify && options.frames > 1 {
            return Err(CoreError::BadParam {
                reason: "verified steady-state runs are not supported; verify single frames".into(),
            });
        }
        if options.faults.is_some() && options.frames > 1 {
            return Err(CoreError::BadParam {
                reason: "fault injection is single-frame only; drop the plan or set frames to 1"
                    .into(),
            });
        }
        let exp = if options.op_limit.is_some() {
            let mut e = self.clone();
            e.op_limit = options.op_limit;
            std::borrow::Cow::Owned(e)
        } else {
            std::borrow::Cow::Borrowed(self)
        };
        if options.frames > 1 {
            return crate::steady::run_steady_state_with(
                &exp,
                model,
                options.frames,
                &options.execution,
                options.recorder.clone(),
            )
            .map(RunOutcome::Steady);
        }
        if options.verify {
            let mut findings = lint_all(&exp.use_case, &exp.memory, &exp.interface);
            let result = exp.run_inner(
                model,
                Some(&mut findings),
                options.recorder.clone(),
                options.faults.as_ref(),
                &options.execution,
            )?;
            return Ok(RunOutcome::Verified {
                result,
                report: findings,
            });
        }
        exp.run_inner(
            model,
            None,
            options.recorder.clone(),
            options.faults.as_ref(),
            &options.execution,
        )
        .map(RunOutcome::Frame)
    }

    fn run_inner(
        &self,
        model: &dyn LoadModel,
        mut verify: Option<&mut Report>,
        recorder: Option<std::sync::Arc<dyn mcm_obs::Recorder>>,
        faults: Option<&FaultPlan>,
        execution: &crate::ExecutionPolicy,
    ) -> Result<FrameResult, CoreError> {
        let mut memory = MemorySubsystem::new(&self.memory)?;
        if verify.is_some() {
            memory.enable_trace();
        }
        if let Some(rec) = &recorder {
            memory.set_recorder(rec.clone());
        }
        if let Some(plan) = faults {
            // After set_recorder, so the one-time fault events (channel
            // lost, refresh pressure, slow banks) are observable.
            memory.apply_faults(plan)?;
        }

        let fps = self.use_case.fps;
        let frame_budget = SimTime::from_ps(1_000_000_000_000u64 / fps as u64);
        let budget_cycles = memory.clock().cycles_at(frame_budget);

        // Bank-staggered placement: concurrently streamed buffers land in
        // different banks, as any locality-aware allocator arranges. Under
        // channel loss the subsystem reports its shrunken capacity, so the
        // frame set is laid out over the survivors.
        let geometry = self.memory.controller.cluster.geometry;
        let layout_opts = LayoutOptions::bank_staggered(
            memory.capacity_bytes(),
            geometry.page_bytes() as u64,
            memory.channels(),
            geometry.banks,
        );
        let chunk = self.chunk.bytes(memory.channels());
        let full_plan = model.traffic(&layout_opts, chunk, 0, &[])?;
        let full_bytes = full_plan.total_bytes();

        // Load shedding: when the degraded memory cannot carry the full
        // frame, drop Table I stages in priority order (viewfinder and
        // display before encoder reference traffic).
        let (shed_stages, shed_record) = match faults {
            Some(plan) => self.plan_shedding(&memory, plan, &full_plan, frame_budget),
            None => (Vec::new(), Vec::new()),
        };
        let traffic = if shed_stages.is_empty() {
            full_plan
        } else {
            model.traffic(&layout_opts, chunk, 0, &shed_stages)?
        };
        let planned_bytes = traffic.total_bytes();

        // Multi-tenant attribution: every op belongs to the tenant whose
        // address span contains it; accesses outside every span are strays
        // (an MCM204 violation).
        let spans: Vec<Region> = traffic.tenant_spans().to_vec();
        let mut tallies = vec![TenantSummary::default(); spans.len()];
        let mut strays: Vec<(u64, u32)> = Vec::new();
        let mut stray_count = 0u64;

        // Per-channel parallel execution defers submission into one batch;
        // a degraded subsystem couples channels (remaps, arrival floors),
        // so fault runs always take the serial path.
        let parallel_threads = if faults.is_none() {
            execution.parallel_threads()
        } else {
            None
        };
        let mut batch: Vec<MasterTransaction> = Vec::new();

        let mut simulated_bytes = 0u64;
        for (ops, op) in traffic.enumerate() {
            if let Some(limit) = self.op_limit {
                if ops as u64 >= limit {
                    break;
                }
            }
            if !spans.is_empty() {
                let tenant = spans
                    .iter()
                    .position(|s| op.addr >= s.start && op.addr + op.len as u64 <= s.end());
                match tenant {
                    Some(t) => {
                        let tally = &mut tallies[t];
                        tally.ops += 1;
                        if op.write {
                            tally.bytes_written += op.len as u64;
                        } else {
                            tally.bytes_read += op.len as u64;
                        }
                        if let Some(rec) = &recorder {
                            rec.record_tenant_op(t as u32, op.write, op.len as u64);
                        }
                    }
                    None => {
                        stray_count += 1;
                        if strays.len() < 16 {
                            strays.push((op.addr, op.len));
                        }
                    }
                }
            }
            let arrival = match self.pacing {
                Pacing::Greedy => 0,
                Pacing::Paced => {
                    // Arrival proportional to the share of the frame's bytes
                    // already issued: a constant-rate master.
                    (simulated_bytes as u128 * budget_cycles as u128 / planned_bytes.max(1) as u128)
                        as u64
                }
            };
            let txn = MasterTransaction {
                op: if op.write {
                    AccessOp::Write
                } else {
                    AccessOp::Read
                },
                addr: op.addr,
                len: op.len as u64,
                arrival,
            };
            if parallel_threads.is_some() {
                batch.push(txn);
            } else {
                memory.submit(txn)?;
            }
            simulated_bytes += op.len as u64;
        }
        if let Some(threads) = parallel_threads {
            memory.submit_batch_parallel(&batch, threads)?;
        }
        // Power is averaged over the frame period; if the frame overruns,
        // over the actual access time.
        let busy = memory.busy_until();
        let horizon_cycles = memory.clock().cycles_ceil(frame_budget).max(busy);
        let report = memory.finish(horizon_cycles)?;

        if let Some(findings) = verify.as_deref_mut() {
            let budget = self
                .memory
                .controller
                .refresh
                .enabled
                .then_some(self.memory.controller.refresh.max_postpone);
            for ch in 0..memory.channels() {
                let device = memory.controller(ch)?.device();
                if let Some(trace) = device.trace() {
                    let opts = TraceAuditOptions {
                        refresh_budget: budget,
                        channel: Some(ch),
                        ..TraceAuditOptions::default()
                    };
                    findings.merge(audit_trace(device.timing(), &geometry, trace, &opts));
                }
            }
            // Balance is judged over the channels that carry traffic: after
            // channel loss, only the survivors.
            let burst = geometry.burst_bytes() as u64;
            let channel_bytes =
                |c: &mcm_ctrl::ChannelReport| (c.device.reads + c.device.writes) * burst;
            let per_channel: Vec<u64> = match memory.fault_survivors() {
                Some(survivors) => survivors
                    .iter()
                    .map(|&ch| channel_bytes(&report.channels[ch as usize]))
                    .collect(),
                None => report.channels.iter().map(channel_bytes).collect(),
            };
            findings.merge(check_traffic_balance(&per_channel, 0.25));
            findings.merge(check_tenant_attribution(&spans, stray_count, &strays));
        }

        // Extrapolate when only a prefix was simulated.
        let scale = if simulated_bytes > 0 && simulated_bytes < planned_bytes {
            planned_bytes as f64 / simulated_bytes as f64
        } else {
            1.0
        };
        let access_time = SimTime::from_ps((report.access_time.as_ps() as f64 * scale) as u64);

        let verdict = if access_time > frame_budget {
            RealTimeVerdict::Fails
        } else if access_time.as_ps() as f64 > frame_budget.as_ps() as f64 * (1.0 - self.margin) {
            RealTimeVerdict::Marginal
        } else {
            RealTimeVerdict::Meets
        };

        let horizon = memory.clock().time_of_cycles(horizon_cycles);
        let core_mw = report.core_energy_pj * scale / horizon.as_ns_f64() / 1e3 * 1e3;
        let interface_mw = self
            .interface
            .total_power_mw(memory.clock().frequency(), memory.channels());
        let power = PowerSummary {
            core_mw,
            interface_mw,
        };
        if let Some(rec) = &recorder {
            power.observe(rec.as_ref());
            rec.record_span("frame", None, 0, report.access_time.as_ps());
        }

        let degrade = faults.map(|plan| {
            let stats = memory.degrade_stats().unwrap_or_default();
            let surviving_channels = memory
                .fault_survivors()
                .map_or(memory.channels(), |s| s.len() as u32);
            let shed_bytes: u64 = shed_record.iter().map(|s| s.bytes).sum();
            // The rate the degraded memory sustains: nominal while the
            // (possibly shed) frame still fits its budget, else the rate
            // the achieved access time corresponds to.
            let effective_fps = if access_time <= frame_budget {
                f64::from(fps)
            } else {
                (1e12 / access_time.as_ps() as f64).min(f64::from(fps))
            };
            DegradeSummary {
                lost_channels: plan.lost_channels(),
                surviving_channels,
                flaky_hits: stats.flaky_hits,
                retries: stats.retries,
                remaps: stats.remaps,
                shed: shed_record.clone(),
                shed_bytes,
                planned_bytes_full: full_bytes,
                planned_bytes_after_shed: planned_bytes,
                effective_fps,
                nominal_fps: fps,
            }
        });
        if let Some(findings) = verify {
            if let Some(summary) = &degrade {
                findings.merge(check_degradation(summary, memory.channels()));
            }
        }

        let names = model.tenant_names();
        for (i, tally) in tallies.iter_mut().enumerate() {
            tally.name = names
                .get(i)
                .cloned()
                .unwrap_or_else(|| format!("tenant{i}"));
        }

        Ok(FrameResult {
            access_time,
            frame_budget,
            verdict,
            power,
            planned_bytes,
            simulated_bytes,
            peak_bandwidth_bytes_per_s: memory.peak_bandwidth_bytes_per_s(),
            degrade,
            tenants: tallies,
            report,
        })
    }

    /// Decides which Table I stages to shed for a fault-degraded run.
    ///
    /// The degraded delivery estimate is the healthy peak scaled by the
    /// surviving-channel fraction and the mean availability of the
    /// survivors' flaky windows; the policy's `shed_target_pct` sets how
    /// much of that the frame plan may consume. Stages are shed in
    /// [`SHED_PRIORITY`] order (always a prefix of it — `MCM303`) until the
    /// plan fits or the shed list is exhausted.
    fn plan_shedding(
        &self,
        memory: &MemorySubsystem,
        plan: &FaultPlan,
        full_plan: &Traffic,
        frame_budget: SimTime,
    ) -> (Vec<Stage>, Vec<StageShed>) {
        let channels = memory.channels();
        let survivors = plan.survivors(channels);
        let availability = plan.mean_availability(&survivors);
        let degraded_peak = memory.peak_bandwidth_bytes_per_s() * survivors.len() as f64
            / f64::from(channels)
            * availability;
        let budget_bytes =
            degraded_peak * frame_budget.as_s_f64() * f64::from(plan.policy.shed_target_pct)
                / 100.0;
        let mut remaining = full_plan.total_bytes() as f64;
        if remaining <= budget_bytes {
            return (Vec::new(), Vec::new());
        }
        let stage_bytes = full_plan.stage_bytes();
        let mut stages = Vec::new();
        let mut record = Vec::new();
        for label in SHED_PRIORITY {
            if remaining <= budget_bytes {
                break;
            }
            // Stages the use case doesn't exercise shed zero bytes but stay
            // in the list, keeping the shed set a strict priority prefix.
            let Some(stage) = Stage::ALL.iter().copied().find(|s| s.label() == label) else {
                // SHED_PRIORITY labels are pinned to Table I stages by a
                // unit test; an unknown label sheds nothing.
                continue;
            };
            let bytes = stage_bytes
                .iter()
                .find(|(s, _)| *s == stage)
                .map_or(0, |(_, b)| *b);
            stages.push(stage);
            record.push(StageShed {
                stage: label.to_string(),
                bytes,
            });
            remaining -= bytes as f64;
        }
        (stages, record)
    }
}

/// Per-tenant share of one simulated frame, attributed by address span.
/// Only multi-tenant workloads populate these; see
/// [`LoadModel::tenant_spans`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantSummary {
    /// Tenant label (`tenant0:record`, `tenant1:playback`, …).
    pub name: String,
    /// Memory operations the tenant issued.
    pub ops: u64,
    /// Bytes the tenant read.
    pub bytes_read: u64,
    /// Bytes the tenant wrote.
    pub bytes_written: u64,
}

/// Everything measured about one simulated frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Time to perform all of the frame's memory accesses.
    pub access_time: SimTime,
    /// The real-time budget (1/fps).
    pub frame_budget: SimTime,
    /// Verdict against the budget with the experiment's margin.
    pub verdict: RealTimeVerdict,
    /// Average power over the frame period (core + interface).
    pub power: PowerSummary,
    /// Bytes the full frame moves.
    pub planned_bytes: u64,
    /// Bytes actually simulated (smaller only under an op limit).
    pub simulated_bytes: u64,
    /// Theoretical peak bandwidth of the configuration.
    pub peak_bandwidth_bytes_per_s: f64,
    /// What degraded under an injected [`FaultPlan`]: lost channels,
    /// retry/remap counts, shed stages and the effective frame rate.
    /// `None` for healthy runs.
    pub degrade: Option<DegradeSummary>,
    /// Per-tenant traffic attribution; empty unless the workload is
    /// multi-tenant.
    pub tenants: Vec<TenantSummary>,
    /// The raw subsystem report (per-channel stats, energies).
    pub report: SubsystemReport,
}

impl FrameResult {
    /// Achieved bandwidth while busy, bytes/s.
    pub fn achieved_bandwidth_bytes_per_s(&self) -> f64 {
        let t = self.access_time.as_s_f64();
        if t == 0.0 {
            return 0.0;
        }
        self.planned_bytes as f64 / t
    }

    /// Bus efficiency: achieved ÷ peak bandwidth.
    ///
    /// NaN-free by construction: zero-traffic runs (no planned bytes, zero
    /// access time) and degenerate zero/non-finite peak bandwidths all
    /// report `0.0` instead of dividing by zero.
    pub fn efficiency(&self) -> f64 {
        let peak = self.peak_bandwidth_bytes_per_s;
        if !peak.is_finite() || peak <= 0.0 {
            return 0.0;
        }
        self.achieved_bandwidth_bytes_per_s() / peak
    }

    /// Energy cost per transferred bit, picojoules — the figure of merit
    /// memory-interface papers compare on (the XDR interface of the
    /// comparison runs at ~195 pJ/bit; this subsystem at 400 MHz lands
    /// around 10-30 pJ/bit depending on utilization).
    ///
    /// A zero-traffic frame moves no bits, so its energy cost per bit is
    /// reported as `0.0` (documented convention; never NaN or infinity).
    pub fn energy_per_bit_pj(&self) -> f64 {
        if self.planned_bytes == 0 {
            return 0.0;
        }
        // Average power over the frame period × period = energy per frame.
        let energy_pj = self.power.total_mw() * self.frame_budget.as_ns_f64();
        energy_pj / (self.planned_bytes as f64 * 8.0)
    }

    /// The Fig. 5 convention: reported power, or `None` (suppressed bar)
    /// when the configuration misses real time with the margin.
    pub fn reported_power_mw(&self) -> Option<f64> {
        match self.verdict {
            RealTimeVerdict::Fails => None,
            _ => Some(self.power.total_mw()),
        }
    }
}

impl fmt::Display for FrameResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / budget {} [{}], {}, eff {:.0}%",
            self.access_time,
            self.frame_budget,
            self.verdict,
            self.power,
            self.efficiency() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(point: HdOperatingPoint, channels: u32, clock: u64) -> FrameResult {
        let e = Experiment::paper(point, channels, clock);
        e.run_with(&RunOptions::default().with_op_limit(40_000))
            .unwrap()
            .into_frame()
            .unwrap()
    }

    #[test]
    fn verified_run_is_clean_on_the_paper_config() {
        let mut e = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
        e.op_limit = Some(4_000);
        let (result, findings) = e
            .run_with(&RunOptions::verified())
            .unwrap()
            .into_verified()
            .unwrap();
        assert!(result.simulated_bytes > 0);
        assert!(findings.is_clean(), "{}", findings.render_human());
    }

    #[test]
    fn verified_run_reports_config_findings() {
        let mut e = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
        e.op_limit = Some(1_000);
        e.memory.controller.refresh.max_postpone = 64;
        let (_, findings) = e
            .run_with(&RunOptions::verified())
            .unwrap()
            .into_verified()
            .unwrap();
        assert!(
            findings.ids().contains(&"MCM105"),
            "{}",
            findings.render_human()
        );
    }

    #[test]
    fn verdict_thresholds() {
        assert!(RealTimeVerdict::Meets.is_real_time());
        assert!(RealTimeVerdict::Marginal.is_real_time());
        assert!(!RealTimeVerdict::Fails.is_real_time());
        assert_eq!(RealTimeVerdict::Marginal.to_string(), "MARGINAL");
    }

    #[test]
    fn one_channel_200mhz_fails_720p30() {
        let r = quick(HdOperatingPoint::Hd720p30, 1, 200);
        assert_eq!(r.verdict, RealTimeVerdict::Fails, "{r}");
        assert!(r.reported_power_mw().is_none());
    }

    #[test]
    fn four_channels_400mhz_meet_720p30() {
        let r = quick(HdOperatingPoint::Hd720p30, 4, 400);
        assert_eq!(r.verdict, RealTimeVerdict::Meets, "{r}");
        assert!(r.reported_power_mw().is_some());
    }

    #[test]
    fn access_time_halves_with_channel_doubling() {
        // Equalize the simulated byte count: the per-channel chunk policy
        // doubles the transaction size at two channels.
        let mut e1 = Experiment::paper(HdOperatingPoint::Hd720p30, 1, 400);
        e1.op_limit = Some(80_000);
        let mut e2 = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 400);
        e2.op_limit = Some(40_000);
        let frame = |e: &Experiment| {
            e.run_with(&RunOptions::default())
                .unwrap()
                .into_frame()
                .unwrap()
        };
        let t1 = frame(&e1).access_time;
        let t2 = frame(&e2).access_time;
        let ratio = t1.as_ps() as f64 / t2.as_ps() as f64;
        assert!((1.7..=2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn access_time_halves_with_clock_doubling() {
        let slow = quick(HdOperatingPoint::Hd720p30, 2, 200).access_time;
        let fast = quick(HdOperatingPoint::Hd720p30, 2, 400).access_time;
        let ratio = slow.as_ps() as f64 / fast.as_ps() as f64;
        assert!((1.7..=2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn efficiency_is_high_but_below_peak() {
        let r = quick(HdOperatingPoint::Hd720p30, 1, 400);
        let eff = r.efficiency();
        assert!((0.55..0.999).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn op_limit_extrapolates_close_to_full_run() {
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 400);
        e.op_limit = Some(60_000);
        let frame = |e: &Experiment| {
            e.run_with(&RunOptions::default())
                .unwrap()
                .into_frame()
                .unwrap()
        };
        let partial = frame(&e);
        assert!(partial.simulated_bytes < partial.planned_bytes);
        // The stage mix varies along the frame, so prefix extrapolation is
        // only approximate; a longer prefix must stay within ~2x.
        e.op_limit = Some(240_000);
        let fuller = frame(&e);
        let a = partial.access_time.as_ps() as f64;
        let b = fuller.access_time.as_ps() as f64;
        assert!((0.5..2.0).contains(&(a / b)), "{a} vs {b}");
    }

    #[test]
    fn bad_margin_rejected() {
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 1, 400);
        e.margin = 1.5;
        assert!(matches!(
            e.run_with(&RunOptions::default()),
            Err(CoreError::BadParam { .. })
        ));
    }

    #[test]
    fn power_includes_interface_share() {
        let r = quick(HdOperatingPoint::Hd720p30, 4, 400);
        assert!(r.power.interface_mw > 0.0);
        assert!(r.power.core_mw > r.power.interface_mw);
        // 4 channels at 400 MHz: 4 × 4.15 mW.
        assert!((r.power.interface_mw - 16.59).abs() < 0.01);
    }

    #[test]
    fn energy_per_bit_is_in_a_sane_band() {
        let r = quick(HdOperatingPoint::Hd720p30, 4, 400);
        let pj = r.energy_per_bit_pj();
        assert!((5.0..100.0).contains(&pj), "pj/bit = {pj}");
        // And far below the XDR interface's ~195 pJ/bit.
        let xdr_pj_per_bit = 5.0e3 / (25.6e9 * 8.0) * 1e12;
        assert!(pj < xdr_pj_per_bit);
    }

    #[test]
    fn display_formats() {
        let r = quick(HdOperatingPoint::Hd720p30, 4, 400);
        let s = r.to_string();
        assert!(s.contains("budget"));
        assert!(s.contains("eff"));
    }
}

#[cfg(test)]
mod pacing_tests {
    use super::*;

    fn run(pacing: Pacing) -> FrameResult {
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
        e.pacing = pacing;
        e.op_limit = Some(50_000);
        e.run_with(&RunOptions::default())
            .unwrap()
            .into_frame()
            .unwrap()
    }

    #[test]
    fn paced_master_bounds_request_latency() {
        let greedy = run(Pacing::Greedy);
        let paced = run(Pacing::Paced);
        let p99 = |r: &FrameResult| {
            r.report
                .channels
                .iter()
                .filter_map(|c| c.latency_p99)
                .max()
                .unwrap()
        };
        assert!(
            p99(&paced).as_ps() * 10 < p99(&greedy).as_ps(),
            "paced p99 {} should be far below greedy {}",
            p99(&paced),
            p99(&greedy)
        );
    }

    #[test]
    fn latency_summaries_are_populated() {
        let r = run(Pacing::Greedy);
        let ch = &r.report.channels[0];
        assert!(ch.latency_mean.is_some());
        assert!(ch.latency_max > mcm_sim::SimTime::ZERO);
        assert!(ch.latency_p99.unwrap() >= ch.latency_mean.unwrap());
    }

    #[test]
    fn default_pacing_is_greedy() {
        assert_eq!(Pacing::default(), Pacing::Greedy);
        let e = Experiment::paper(HdOperatingPoint::Hd720p30, 1, 400);
        assert_eq!(e.pacing, Pacing::Greedy);
    }
}

#[cfg(test)]
mod run_with_tests {
    use super::*;

    fn quick() -> Experiment {
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
        e.op_limit = Some(5_000);
        e
    }

    #[test]
    fn default_options_are_deterministic() {
        let e = quick();
        let frame = |e: &Experiment| {
            e.run_with(&RunOptions::default())
                .unwrap()
                .into_frame()
                .unwrap()
        };
        let a = frame(&e);
        let b = frame(&e);
        assert_eq!(a.access_time, b.access_time);
        assert_eq!(a.verdict, b.verdict);
        assert!(
            a.degrade.is_none(),
            "healthy run carries no degrade summary"
        );
    }

    #[test]
    fn verified_options_attach_a_clean_report() {
        let e = quick();
        let outcome = e.run_with(&RunOptions::verified()).unwrap();
        assert!(outcome.frame().is_some());
        let report = outcome.verify_report().expect("verified outcome");
        assert!(report.is_clean(), "{}", report.render_human());
        // The verified run measures the same frame as the plain one.
        let plain = e
            .run_with(&RunOptions::default())
            .unwrap()
            .into_frame()
            .unwrap();
        assert_eq!(plain.access_time, outcome.frame().unwrap().access_time);
    }

    #[test]
    fn steady_options_run_a_session() {
        let e = quick();
        let outcome = e.run_with(&RunOptions::steady(3)).unwrap();
        assert!(outcome.frame().is_none());
        let s = outcome.steady().expect("steady outcome");
        assert_eq!(s.frames.len(), 3);
    }

    #[test]
    fn op_limit_option_overrides_experiment() {
        let mut e = quick();
        e.op_limit = None;
        let opts = RunOptions {
            op_limit: Some(1_000),
            ..RunOptions::default()
        };
        let r = e.run_with(&opts).unwrap().into_frame().unwrap();
        assert!(r.simulated_bytes < r.planned_bytes);
    }

    #[test]
    fn contradictory_options_rejected() {
        let e = quick();
        let opts = RunOptions {
            verify: true,
            frames: 2,
            ..RunOptions::default()
        };
        assert!(matches!(e.run_with(&opts), Err(CoreError::BadParam { .. })));
        assert!(matches!(
            e.run_with(&RunOptions::steady(0)),
            Err(CoreError::BadParam { .. })
        ));
    }

    #[test]
    fn recorder_is_invisible_to_equality_and_serde() {
        let plain = RunOptions::default();
        let observed =
            RunOptions::default().with_recorder(std::sync::Arc::new(mcm_obs::NullRecorder));
        // The recorder is an attachment: same run identity, same JSON.
        assert_eq!(plain, observed);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&observed).unwrap()
        );
        let back: RunOptions = serde_json::from_str(&serde_json::to_string(&observed).unwrap())
            .expect("RunOptions round-trips");
        assert!(back.recorder.is_none());
        assert_eq!(back, observed);
    }

    #[test]
    fn attached_recorder_sees_the_run() {
        let e = quick();
        let rec = std::sync::Arc::new(mcm_obs::StatsRecorder::new());
        let outcome = e
            .run_with(&RunOptions::default().with_recorder(rec.clone()))
            .unwrap();
        let frame = outcome.frame().unwrap();
        let report = rec.report();
        assert_eq!(report.channels.len(), 4);
        let obs_bytes: u64 = report
            .channels
            .iter()
            .map(|c| c.counters.bytes_read + c.counters.bytes_written)
            .sum();
        assert_eq!(
            obs_bytes,
            frame.report.bytes_read + frame.report.bytes_written
        );
        // The power gauges and the frame span were published.
        assert!(report.gauges.iter().any(|g| g.name == "power.total_mw"));
        let span = report.spans.iter().find(|s| s.name == "frame").unwrap();
        assert_eq!(span.end_ps, frame.report.access_time.as_ps());
    }

    #[test]
    fn steady_run_observes_each_frame() {
        let e = quick();
        let rec = std::sync::Arc::new(mcm_obs::StatsRecorder::new());
        let outcome = e
            .run_with(&RunOptions::steady(3).with_recorder(rec.clone()))
            .unwrap();
        let steady = outcome.steady().unwrap();
        let report = rec.report();
        let frame_spans = report.spans.iter().filter(|s| s.name == "frame").count();
        assert_eq!(frame_spans, 3);
        assert!(report.gauges.iter().any(|g| g.name == "power.core_mw"));
        let obs_bytes: u64 = report
            .channels
            .iter()
            .map(|c| c.counters.bytes_read + c.counters.bytes_written)
            .sum();
        assert_eq!(obs_bytes, steady.bytes);
    }

    #[test]
    fn run_with_validates_hand_mutated_experiments() {
        let mut e = quick();
        e.memory.granule_bytes = 0;
        assert!(matches!(
            e.run_with(&RunOptions::default()),
            Err(CoreError::BadParam { .. })
        ));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use mcm_fault::{DegradePolicy, FaultSpec};

    fn base() -> Experiment {
        let mut e = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
        e.op_limit = Some(5_000);
        e
    }

    #[test]
    fn channel_loss_run_reports_degradation() {
        let e = base();
        let plan = FaultPlan::channel_loss(7, 3);
        let r = e
            .run_with(&RunOptions::default().with_faults(plan))
            .unwrap()
            .into_frame()
            .unwrap();
        let d = r.degrade.as_ref().expect("faulted run carries a summary");
        assert_eq!(d.lost_channels, vec![3]);
        assert_eq!(d.surviving_channels, 3);
        assert_eq!(d.nominal_fps, 30);
        assert!(d.effective_fps > 0.0 && d.effective_fps <= 30.0);
        assert_eq!(
            d.planned_bytes_after_shed + d.shed_bytes,
            d.planned_bytes_full
        );
        assert!(r.simulated_bytes > 0);
    }

    #[test]
    fn same_seed_degraded_runs_are_bit_identical() {
        let e = base();
        let plan = FaultPlan::seeded(0xfeed_beef, 4).unwrap();
        let opts = RunOptions::default().with_faults(plan);
        let run = || e.run_with(&opts).unwrap().into_frame().unwrap();
        let a = run();
        let b = run();
        assert_eq!(a.access_time, b.access_time);
        assert_eq!(a.report.bytes_read, b.report.bytes_read);
        assert_eq!(a.report.bytes_written, b.report.bytes_written);
        assert_eq!(a.degrade, b.degrade);
    }

    #[test]
    fn degraded_verified_run_passes_all_checks() {
        let mut e = base();
        e.op_limit = Some(4_000);
        let opts = RunOptions::verified().with_faults(FaultPlan::channel_loss(1, 0));
        let (result, findings) = e.run_with(&opts).unwrap().into_verified().unwrap();
        assert!(result.degrade.is_some());
        assert!(findings.is_clean(), "{}", findings.render_human());
    }

    #[test]
    fn heavy_loss_sheds_stages_in_priority_order() {
        // Two of four channels gone: 1080p60's plan no longer fits the
        // degraded delivery estimate and viewfinder traffic is shed first.
        let mut e = Experiment::paper(HdOperatingPoint::Hd1080p60, 4, 400);
        e.op_limit = Some(5_000);
        let plan = FaultPlan {
            seed: 11,
            faults: vec![
                FaultSpec::ChannelLoss { channel: 0 },
                FaultSpec::ChannelLoss { channel: 1 },
            ],
            policy: DegradePolicy::default(),
        };
        let r = e
            .run_with(&RunOptions::default().with_faults(plan))
            .unwrap()
            .into_frame()
            .unwrap();
        let d = r.degrade.as_ref().unwrap();
        assert!(!d.shed.is_empty(), "expected load shedding: {d}");
        assert_eq!(d.shed[0].stage, mcm_fault::SHED_PRIORITY[0]);
        for (entry, label) in d.shed.iter().zip(mcm_fault::SHED_PRIORITY) {
            assert_eq!(entry.stage, label, "shed set must be a priority prefix");
        }
        assert!(d.shed_bytes > 0);
        assert_eq!(
            d.planned_bytes_after_shed + d.shed_bytes,
            d.planned_bytes_full
        );
        assert_eq!(r.planned_bytes, d.planned_bytes_after_shed);
    }

    #[test]
    fn faults_are_single_frame_only() {
        let e = base();
        let opts = RunOptions::steady(2).with_faults(FaultPlan::channel_loss(1, 0));
        assert!(matches!(e.run_with(&opts), Err(CoreError::BadParam { .. })));
    }

    #[test]
    fn fault_plan_is_part_of_run_identity_and_serde() {
        let plain = RunOptions::default();
        let faulted = RunOptions::default().with_faults(FaultPlan::channel_loss(1, 0));
        assert_ne!(plain, faulted);
        // Healthy options serialize without a faults key, keeping pre-fault
        // cache fingerprints stable.
        assert!(!serde_json::to_string(&plain).unwrap().contains("faults"));
        let json = serde_json::to_string(&faulted).unwrap();
        assert!(json.contains("faults"), "{json}");
        let back: RunOptions = serde_json::from_str(&json).unwrap();
        assert_eq!(back, faulted);
        let back_plain: RunOptions =
            serde_json::from_str(&serde_json::to_string(&plain).unwrap()).unwrap();
        assert!(back_plain.faults.is_none());
    }
}

#[cfg(test)]
mod nan_audit_tests {
    use super::*;
    use mcm_channel::SubsystemReport;

    /// A synthetic zero-traffic result with a degenerate peak bandwidth —
    /// the divide-by-zero cases the derived metrics must tolerate.
    fn zero_traffic_result(peak: f64) -> FrameResult {
        FrameResult {
            access_time: SimTime::ZERO,
            frame_budget: SimTime::from_ps(33_333_333_333),
            verdict: RealTimeVerdict::Meets,
            power: PowerSummary::default(),
            planned_bytes: 0,
            simulated_bytes: 0,
            peak_bandwidth_bytes_per_s: peak,
            degrade: None,
            tenants: Vec::new(),
            report: SubsystemReport {
                channels: Vec::new(),
                busy_until: 0,
                access_time: SimTime::ZERO,
                core_energy_pj: 0.0,
                bytes_read: 0,
                bytes_written: 0,
            },
        }
    }

    #[test]
    fn zero_traffic_metrics_are_nan_free() {
        for peak in [0.0, f64::NAN, f64::INFINITY, 6.4e9] {
            let r = zero_traffic_result(peak);
            assert_eq!(r.achieved_bandwidth_bytes_per_s(), 0.0);
            assert_eq!(r.efficiency(), 0.0, "peak {peak}");
            assert_eq!(r.energy_per_bit_pj(), 0.0);
            assert!(r.to_string().contains("eff 0%"), "{r}");
        }
    }

    #[test]
    fn zero_op_limit_run_is_nan_free() {
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 400);
        e.op_limit = Some(0);
        let r = e
            .run_with(&RunOptions::default())
            .unwrap()
            .into_frame()
            .unwrap();
        assert_eq!(r.simulated_bytes, 0);
        assert!(r.efficiency().is_finite());
        assert!(r.energy_per_bit_pj().is_finite());
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn experiment_roundtrips_through_json() {
        let mut exp = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
        exp.chunk = ChunkPolicy::Fixed(256);
        exp.pacing = Pacing::Paced;
        exp.op_limit = Some(123);
        let json = serde_json::to_string_pretty(&exp).unwrap();
        assert!(json.contains("\"width\": 1920"), "{json}");
        let back: Experiment = serde_json::from_str(&json).unwrap();
        assert_eq!(back.chunk, exp.chunk);
        assert_eq!(back.pacing, exp.pacing);
        assert_eq!(back.op_limit, Some(123));
        assert_eq!(back.use_case, exp.use_case);
        assert_eq!(back.memory.channels, 4);
        assert_eq!(
            back.memory.controller.mapping,
            exp.memory.controller.mapping
        );
        // The deserialized experiment runs.
        let mut quick = back;
        quick.op_limit = Some(2_000);
        quick.run_with(&RunOptions::default()).unwrap();
    }

    #[test]
    fn default_workload_keeps_the_pre_workload_serialization() {
        // Table I experiments must serialize without a `workload` key so
        // sweep cache fingerprints computed before the workload field
        // existed stay valid.
        let exp = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
        assert!(exp.workload.is_default());
        let json = serde_json::to_string(&exp).unwrap();
        assert!(!json.contains("workload"), "{json}");
        let back: Experiment = serde_json::from_str(&json).unwrap();
        assert_eq!(back.workload, Workload::TableI);
    }

    #[test]
    fn non_default_workload_roundtrips_through_json() {
        let mut exp = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 400);
        exp.workload = Workload::parse("stochastic:42:80").unwrap();
        let json = serde_json::to_string(&exp).unwrap();
        assert!(json.contains("\"workload\""), "{json}");
        let back: Experiment = serde_json::from_str(&json).unwrap();
        assert_eq!(back.workload, exp.workload);
    }
}
