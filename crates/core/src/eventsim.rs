//! Event-driven execution of an experiment on the `mcm_sim` kernel.
//!
//! The direct-call path ([`Experiment::run_with`](crate::Experiment::run_with)) floods
//! the memory subsystem with the frame's operations and lets each channel
//! drain them — the paper's bandwidth-bound access-time measurement. This
//! module runs the *same* experiment as a discrete-event simulation, the way
//! the paper's SystemC ESL environment executed its models: a load-master
//! **component** issues master transactions with a bounded window of
//! outstanding transactions, channel **components** wrap the controllers,
//! and completions flow back as timestamped messages.
//!
//! Two uses:
//!
//! * **cross-validation** — with a wide window the event-driven access time
//!   converges to the direct-call result (asserted in the test suite);
//! * **memory-level-parallelism study** — with a narrow window the master
//!   becomes latency-bound and the multi-channel speedup collapses; the
//!   `ext_mlp` bench target sweeps this.

use mcm_channel::InterleaveMap;
use mcm_ctrl::{AccessOp, ChannelRequest, Controller, CtrlError};
use mcm_load::{LayoutOptions, LoadOp};
use mcm_sim::{Component, ComponentId, Ctx, QueueKind, SimTime, Simulation};

use crate::error::CoreError;
use crate::experiment::Experiment;

/// Messages exchanged between the load master and the channels.
#[derive(Debug)]
enum Msg {
    /// Master → channel: serve one channel-local request (tagged with the
    /// master transaction id).
    Request { txn: u64, req: ChannelRequest },
    /// Channel → master: one channel's slice of transaction `txn` finished
    /// at `done_cycle`.
    Slice { txn: u64, done_cycle: u64 },
}

/// A channel component: owns one controller, serves requests, reports
/// completions.
struct ChannelComp {
    ctrl: Controller,
    master: Option<ComponentId>,
    /// First controller failure, surfaced after the run instead of
    /// panicking inside the kernel (the request stream is legal by
    /// construction, but a rejected request must become a typed error).
    error: Option<CtrlError>,
}

impl Component<Msg> for ChannelComp {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let Msg::Request { txn, req } = msg else {
            return;
        };
        // The controller speaks cycles; the kernel speaks time.
        let res = match self.ctrl.access(req) {
            Ok(res) => res,
            Err(e) => {
                self.error.get_or_insert(e);
                ctx.request_stop();
                return;
            }
        };
        let done_time = self
            .ctrl
            .device()
            .timing()
            .clock
            .time_of_cycles(res.done_cycle);
        let Some(master) = self.master else {
            // Wiring failed upstream; stop the run rather than panic
            // inside the kernel.
            ctx.request_stop();
            return;
        };
        // Notify the master when the slice's data completes.
        let delay = done_time.saturating_sub(ctx.now());
        ctx.send_after(
            delay,
            master,
            Msg::Slice {
                txn,
                done_cycle: res.done_cycle,
            },
        );
    }

    fn name(&self) -> &str {
        "channel"
    }
}

/// The load master: issues master transactions with at most `window`
/// outstanding, in program order.
struct MasterComp {
    ops: std::vec::IntoIter<LoadOp>,
    interleave: InterleaveMap,
    channels: Vec<ComponentId>,
    clock: mcm_sim::ClockDomain,
    window: u32,
    next_txn: u64,
    /// Slices still in flight per transaction, indexed by `txn - txn_base`
    /// (transactions are issued with consecutive ids, so the live set is a
    /// dense sliding window — no hashing on the hot path). `inflight_live`
    /// counts entries that have not fully completed.
    inflight: std::collections::VecDeque<u32>,
    txn_base: u64,
    inflight_live: u32,
    /// Reused per-op fan-out buffer for [`InterleaveMap::split_range_into`].
    slice_buf: Vec<Option<(u64, u64)>>,
    last_done_cycle: u64,
}

impl MasterComp {
    fn issue_until_window_full(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // All transactions issued in this call share the kernel timestamp,
        // so the cycle conversion happens once, not per op.
        let arrival = self.clock.cycles_ceil(ctx.now());
        while self.inflight_live < self.window {
            let Some(op) = self.ops.next() else { return };
            let txn = self.next_txn;
            self.next_txn += 1;
            let mut slices = std::mem::take(&mut self.slice_buf);
            self.interleave
                .split_range_into(op.addr, op.len as u64, &mut slices);
            let mut n = 0;
            for (ch, slice) in slices.iter().enumerate() {
                let Some((local, len)) = *slice else { continue };
                ctx.send_now(
                    self.channels[ch],
                    Msg::Request {
                        txn,
                        req: ChannelRequest {
                            op: if op.write {
                                AccessOp::Write
                            } else {
                                AccessOp::Read
                            },
                            addr: local,
                            len: len as u32,
                            arrival,
                        },
                    },
                );
                n += 1;
            }
            self.slice_buf = slices;
            self.inflight.push_back(n);
            self.inflight_live += 1;
        }
    }

    fn retire_slice(&mut self, txn: u64) -> bool {
        let idx = (txn - self.txn_base) as usize;
        let remaining = &mut self.inflight[idx];
        debug_assert!(*remaining > 0, "completion for a retired transaction");
        *remaining -= 1;
        if *remaining > 0 {
            return false;
        }
        self.inflight_live -= 1;
        // Drop the completed prefix so the deque stays window-sized.
        while let Some(&0) = self.inflight.front() {
            self.inflight.pop_front();
            self.txn_base += 1;
        }
        true
    }
}

impl Component<Msg> for MasterComp {
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::Slice { txn, done_cycle } => {
                self.last_done_cycle = self.last_done_cycle.max(done_cycle);
                if self.retire_slice(txn) {
                    // A window slot opened: issue more work.
                    self.issue_until_window_full(ctx);
                }
            }
            Msg::Request { .. } => {
                // The initial kick: start filling the window.
                self.issue_until_window_full(ctx);
            }
        }
    }

    fn name(&self) -> &str {
        "load-master"
    }
}

/// Result of an event-driven run.
#[derive(Debug, Clone, Copy)]
pub struct EventDrivenResult {
    /// Time at which the last data beat of the frame completed.
    pub access_time: SimTime,
    /// Number of master transactions issued.
    pub transactions: u64,
    /// Kernel events fired.
    pub events: u64,
}

/// Runs `exp` for one frame on the discrete-event kernel with at most
/// `window` outstanding master transactions.
///
/// `window == u32::MAX` approximates the direct-call flood; `window == 1`
/// is a fully blocking master.
pub fn run_event_driven(exp: &Experiment, window: u32) -> Result<EventDrivenResult, CoreError> {
    run_event_driven_configured(exp, window, QueueKind::default(), None)
}

/// [`run_event_driven`] with an optional instrumentation sink: the kernel
/// reports every fired event ([`mcm_obs::Recorder::record_sim_event`]) and
/// each channel controller reports commands, row outcomes, and latencies.
pub fn run_event_driven_observed(
    exp: &Experiment,
    window: u32,
    recorder: Option<std::sync::Arc<dyn mcm_obs::Recorder>>,
) -> Result<EventDrivenResult, CoreError> {
    run_event_driven_configured(exp, window, QueueKind::default(), recorder)
}

/// [`run_event_driven_observed`] driven by an
/// [`ExecutionPolicy`](crate::ExecutionPolicy): the policy's `engine` picks
/// the kernel event queue. (Per-channel parallelism applies to the direct
/// frame path, not the event-driven kernel, whose single calendar of
/// inter-channel events is inherently serial; the policy's other knobs are
/// ignored here.)
pub fn run_event_driven_with(
    exp: &Experiment,
    window: u32,
    policy: &crate::ExecutionPolicy,
    recorder: Option<std::sync::Arc<dyn mcm_obs::Recorder>>,
) -> Result<EventDrivenResult, CoreError> {
    run_event_driven_configured(exp, window, policy.engine, recorder)
}

/// [`run_event_driven_observed`] with an explicit kernel event-queue
/// implementation — the cross-engine parity harness runs the same
/// experiment on [`QueueKind::Calendar`] and [`QueueKind::BinaryHeap`] and
/// asserts identical results; benchmarks use it to measure the queue swap.
pub fn run_event_driven_configured(
    exp: &Experiment,
    window: u32,
    queue: QueueKind,
    recorder: Option<std::sync::Arc<dyn mcm_obs::Recorder>>,
) -> Result<EventDrivenResult, CoreError> {
    if window == 0 {
        return Err(CoreError::BadParam {
            reason: "outstanding-transaction window must be non-zero".into(),
        });
    }
    let channels = exp.memory.channels;
    let clock_mhz = exp.memory.clock_mhz;
    let interleave =
        InterleaveMap::new(channels, exp.memory.granule_bytes).map_err(CoreError::Memory)?;
    let geometry = exp.memory.controller.cluster.geometry;
    let capacity = geometry.capacity_bytes() * channels as u64;
    let layout_opts = LayoutOptions::bank_staggered(
        capacity,
        geometry.page_bytes() as u64,
        channels,
        geometry.banks,
    );
    let traffic = exp
        .model()
        .traffic(&layout_opts, exp.chunk.bytes(channels), 0, &[])?;
    let mut ops: Vec<LoadOp> = traffic.collect();
    if let Some(limit) = exp.op_limit {
        ops.truncate(limit as usize);
    }
    let total_ops = ops.len() as u64;

    let mut sim: Simulation<Msg> = Simulation::with_queue(queue);
    if let Some(rec) = &recorder {
        sim.set_recorder(rec.clone());
    }
    let mut channel_ids = Vec::with_capacity(channels as usize);
    for ch in 0..channels {
        let mut ctrl = Controller::new(&exp.memory.controller).map_err(|e| {
            CoreError::Memory(mcm_channel::ChannelError::Ctrl {
                channel: 0,
                source: e,
            })
        })?;
        if let Some(rec) = &recorder {
            ctrl.set_obs(mcm_obs::ChannelObs::new(rec.clone(), ch));
        }
        channel_ids.push(sim.add_component(ChannelComp {
            ctrl,
            master: None,
            error: None,
        }));
    }
    let master = sim.add_component(MasterComp {
        ops: ops.into_iter(),
        interleave,
        channels: channel_ids.clone(),
        clock: mcm_sim::ClockDomain::new(mcm_sim::Frequency::from_mhz(clock_mhz)).map_err(|e| {
            CoreError::BadParam {
                reason: e.to_string(),
            }
        })?,
        window,
        next_txn: 0,
        inflight: std::collections::VecDeque::new(),
        txn_base: 0,
        inflight_live: 0,
        slice_buf: Vec::new(),
        last_done_cycle: 0,
    });
    for &ch in &channel_ids {
        sim.component_mut::<ChannelComp>(ch)
            .ok_or_else(|| CoreError::BadParam {
                reason: "event-sim channel component not registered".into(),
            })?
            .master = Some(master);
    }
    // Kick the master with a dummy request-shaped message.
    sim.schedule(
        SimTime::ZERO,
        master,
        Msg::Request {
            txn: u64::MAX,
            req: ChannelRequest {
                op: AccessOp::Read,
                addr: 0,
                len: 1,
                arrival: 0,
            },
        },
    );
    sim.run()?;
    for &ch in &channel_ids {
        if let Some(e) = sim
            .component_mut::<ChannelComp>(ch)
            .and_then(|c| c.error.take())
        {
            return Err(e.into());
        }
    }

    let master_ref =
        sim.component_mut::<MasterComp>(master)
            .ok_or_else(|| CoreError::BadParam {
                reason: "event-sim master component not registered".into(),
            })?;
    let last_cycle = master_ref.last_done_cycle;
    let clock =
        mcm_sim::ClockDomain::new(mcm_sim::Frequency::from_mhz(clock_mhz)).map_err(|e| {
            CoreError::BadParam {
                reason: format!("interface clock {clock_mhz} MHz: {e}"),
            }
        })?;
    Ok(EventDrivenResult {
        access_time: clock.time_of_cycles(last_cycle),
        transactions: total_ops,
        events: sim.events_fired(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use mcm_load::HdOperatingPoint;

    fn exp(channels: u32) -> Experiment {
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, channels, 400);
        e.op_limit = Some(20_000);
        e
    }

    #[test]
    fn wide_window_matches_direct_call() {
        let e = exp(2);
        let direct = e
            .run_with(&crate::RunOptions::default())
            .unwrap()
            .into_frame()
            .unwrap();
        // The direct path extrapolates op-limited runs to the full frame;
        // undo the scaling for an apples-to-apples comparison.
        let scale = direct.planned_bytes as f64 / direct.simulated_bytes as f64;
        let direct_raw = direct.access_time.as_ps() as f64 / scale;
        let event = run_event_driven(&e, u32::MAX).unwrap();
        let b = event.access_time.as_ps() as f64;
        assert!(
            (direct_raw / b - 1.0).abs() < 0.02,
            "direct (unscaled) {direct_raw} vs event-driven {b}"
        );
        assert_eq!(event.transactions, 20_000);
        assert!(event.events > 20_000);
    }

    #[test]
    fn narrow_window_is_latency_bound() {
        // Single-burst transactions make the round trip visible: a blocking
        // master pays ~CL+BL per 16 B where a pipelined one pays ~BL/2.
        let mut e = exp(4);
        e.chunk = crate::experiment::ChunkPolicy::Fixed(16);
        let wide = run_event_driven(&e, 64).unwrap();
        let narrow = run_event_driven(&e, 1).unwrap();
        assert!(
            narrow.access_time.as_ps() > 2 * wide.access_time.as_ps(),
            "narrow {} vs wide {}",
            narrow.access_time,
            wide.access_time
        );
    }

    #[test]
    fn window_sweep_is_monotone() {
        let mut e = exp(2);
        e.chunk = crate::experiment::ChunkPolicy::Fixed(64);
        let times: Vec<u64> = [1u32, 2, 4, 16]
            .iter()
            .map(|&w| run_event_driven(&e, w).unwrap().access_time.as_ps())
            .collect();
        for pair in times.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "more outstanding transactions must not slow the frame: {times:?}"
            );
        }
    }

    #[test]
    fn window_zero_is_rejected() {
        assert!(run_event_driven(&exp(1), 0).is_err());
    }

    #[test]
    fn observed_event_run_reports_kernel_and_channels() {
        let e = exp(2);
        let rec = std::sync::Arc::new(mcm_obs::StatsRecorder::new());
        let result = run_event_driven_observed(&e, 8, Some(rec.clone())).unwrap();
        let report = rec.report();
        // Every kernel event was recorded, and both channels retired work.
        assert_eq!(report.kernel.events, result.events);
        assert_eq!(report.channels.len(), 2);
        for ch in &report.channels {
            assert!(ch.counters.requests > 0);
            assert!(ch.counters.commands.reads + ch.counters.commands.writes > 0);
        }
        // Observation must not perturb the simulation itself.
        let bare = run_event_driven(&e, 8).unwrap();
        assert_eq!(bare.access_time, result.access_time);
        assert_eq!(bare.events, result.events);
    }

    #[test]
    fn event_driven_is_deterministic() {
        let e = exp(2);
        let a = run_event_driven(&e, 8).unwrap();
        let b = run_event_driven(&e, 8).unwrap();
        assert_eq!(a.access_time, b.access_time);
        assert_eq!(a.events, b.events);
    }
}
