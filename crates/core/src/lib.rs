//! # mcm-core — the experiment API
//!
//! Reproduces the evaluation of *"A case for multi-channel memories in
//! video recording"* (DATE 2009) on top of the `mcmem` substrates:
//!
//! * [`Experiment`] — one video-recording frame ([`mcm_load`]) against one
//!   multi-channel memory configuration ([`mcm_channel`]), reporting
//!   per-frame access time, the real-time verdict with the paper's 15 %
//!   data-processing margin, and average power (DRAM core + equation (1)
//!   interface power);
//! * [`figures`] — data builders and text renderers for Table I, Table II,
//!   Fig. 3, Fig. 4, Fig. 5 and the XDR comparison;
//! * [`analysis`] — the conclusions' derived claims (≈2× speedup per
//!   channel/clock doubling, minimum channels per H.264 level).
//!
//! # Examples
//!
//! ```
//! use mcm_core::{ChunkPolicy, Experiment, RunOptions};
//! use mcm_load::HdOperatingPoint;
//!
//! // 720p30 on the paper's 4-channel, 400 MHz memory (truncated run for
//! // the doctest; drop `op_limit` to simulate the whole frame).
//! let mut exp = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
//! exp.op_limit = Some(10_000);
//! let result = exp
//!     .run_with(&RunOptions::default())
//!     .unwrap()
//!     .into_frame()
//!     .unwrap();
//! assert!(result.access_time < result.frame_budget);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
// Model code must surface failures as typed errors, never panic
// (clippy.toml lists the banned methods). Tests keep their unwraps.
#![warn(clippy::disallowed_methods)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod analysis;
mod builder;
pub mod charts;
mod error;
pub mod eventsim;
mod execution;
mod experiment;
pub mod figures;
pub mod profile;
pub mod runner;
pub mod steady;
pub mod tracerun;

pub use builder::ExperimentBuilder;
pub use error::CoreError;
pub use execution::{ExecutionPolicy, Parallelism};
pub use experiment::{
    ChunkPolicy, Experiment, FrameResult, Pacing, RealTimeVerdict, RunOptions, RunOutcome,
    TenantSummary,
};
pub use runner::{BatchRunner, SerialRunner};
