//! Trace-driven execution: replay a recorded operation stream against any
//! memory configuration, independent of the video use case.

use mcm_channel::{MasterTransaction, MemoryConfig, MemorySubsystem};
use mcm_ctrl::AccessOp;
use mcm_load::LoadOp;
use mcm_power::{InterfacePowerModel, PowerSummary};
use mcm_sim::SimTime;

use crate::error::CoreError;

/// Result of a trace replay.
#[derive(Debug, Clone)]
pub struct TraceRunResult {
    /// Time to drain the whole trace.
    pub access_time: SimTime,
    /// Bytes moved.
    pub bytes: u64,
    /// Operations replayed.
    pub ops: u64,
    /// Average power over the busy period (core + interface).
    pub power: PowerSummary,
    /// Achieved bandwidth over the busy period, bytes/s.
    pub bandwidth_bytes_per_s: f64,
}

/// Replays `ops` (greedy arrivals) against a memory built from `config`.
pub fn run_trace(
    config: &MemoryConfig,
    ops: impl IntoIterator<Item = LoadOp>,
    interface: &InterfacePowerModel,
) -> Result<TraceRunResult, CoreError> {
    let mut memory = MemorySubsystem::new(config)?;
    let mut bytes = 0u64;
    let mut count = 0u64;
    for op in ops {
        memory.submit(MasterTransaction {
            op: if op.write {
                AccessOp::Write
            } else {
                AccessOp::Read
            },
            addr: op.addr,
            len: op.len as u64,
            arrival: 0,
        })?;
        bytes += op.len as u64;
        count += 1;
    }
    let report = memory.finish(0)?;
    let busy_ns = report.access_time.as_ns_f64();
    let core_mw = if busy_ns > 0.0 {
        report.core_energy_pj / busy_ns
    } else {
        0.0
    };
    let interface_mw = interface.total_power_mw(memory.clock().frequency(), memory.channels());
    Ok(TraceRunResult {
        access_time: report.access_time,
        bytes,
        ops: count,
        power: PowerSummary {
            core_mw,
            interface_mw,
        },
        bandwidth_bytes_per_s: report.achieved_bandwidth_bytes_per_s(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_matches_manual_submission() {
        let ops = vec![
            LoadOp {
                write: false,
                addr: 0,
                len: 4096,
            },
            LoadOp {
                write: true,
                addr: 8192,
                len: 4096,
            },
        ];
        let r = run_trace(
            &MemoryConfig::paper(2, 400),
            ops,
            &InterfacePowerModel::paper(),
        )
        .unwrap();
        assert_eq!(r.bytes, 8192);
        assert_eq!(r.ops, 2);
        assert!(r.access_time > SimTime::ZERO);
        assert!(r.power.core_mw > 0.0);
        assert!(r.bandwidth_bytes_per_s > 0.0);
    }

    #[test]
    fn out_of_range_trace_is_a_typed_error() {
        let ops = vec![LoadOp {
            write: false,
            addr: u64::MAX - 8,
            len: 64,
        }];
        let err = run_trace(
            &MemoryConfig::paper(1, 400),
            ops,
            &InterfacePowerModel::paper(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Memory(_)));
    }
}
