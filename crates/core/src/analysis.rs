//! Derived analyses: the claims the paper's conclusions draw from the
//! figures (speedup trends, minimum channel counts).

use mcm_load::HdOperatingPoint;

use crate::error::CoreError;
use crate::experiment::{Experiment, RealTimeVerdict};
use crate::figures::{Fig3Data, CHANNELS};

/// Average speedup from doubling the channel count, computed from a Fig. 3
/// grid (the paper: "close to 2x speedup can be achieved by … double the
/// number of exploited channels").
pub fn channel_doubling_speedup(d: &Fig3Data) -> Option<f64> {
    let mut ratios = Vec::new();
    for col in 0..d.clocks_mhz.len() {
        for row in 1..d.channels.len() {
            let slow = d.cells[row - 1][col].access_ms?;
            let fast = d.cells[row][col].access_ms?;
            if d.channels[row] == 2 * d.channels[row - 1] {
                ratios.push(slow / fast);
            }
        }
    }
    if ratios.is_empty() {
        None
    } else {
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

/// Average speedup from doubling the clock (200→400 and 266→533 pairs).
pub fn clock_doubling_speedup(d: &Fig3Data) -> Option<f64> {
    let mut ratios = Vec::new();
    let pairs = [(200u64, 400u64), (266, 533)];
    for (slow_clk, fast_clk) in pairs {
        let si = d.clocks_mhz.iter().position(|&c| c == slow_clk)?;
        let fi = d.clocks_mhz.iter().position(|&c| c == fast_clk)?;
        for row in 0..d.channels.len() {
            let slow = d.cells[row][si].access_ms?;
            let fast = d.cells[row][fi].access_ms?;
            ratios.push(slow / fast);
        }
    }
    if ratios.is_empty() {
        None
    } else {
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

/// The smallest evaluated channel count that meets real time (with margin)
/// for `point` at `clock_mhz`, or `None` if none does. This reproduces the
/// conclusions' channel requirements per H.264 level.
pub fn min_channels_meeting(
    point: HdOperatingPoint,
    clock_mhz: u64,
) -> Result<Option<u32>, CoreError> {
    for &ch in &CHANNELS {
        let exp = Experiment::paper(point, ch, clock_mhz);
        match exp
            .run_with(&crate::RunOptions::default())
            .and_then(|o| o.try_into_frame())
        {
            Ok(r) if r.verdict == RealTimeVerdict::Meets => return Ok(Some(ch)),
            Ok(_) => continue,
            Err(CoreError::Load(mcm_load::LoadError::LayoutOverflow { .. })) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// The smallest evaluated channel count that at least marginally satisfies
/// real time for `point` at `clock_mhz`.
pub fn min_channels_real_time(
    point: HdOperatingPoint,
    clock_mhz: u64,
) -> Result<Option<u32>, CoreError> {
    for &ch in &CHANNELS {
        let exp = Experiment::paper(point, ch, clock_mhz);
        match exp
            .run_with(&crate::RunOptions::default())
            .and_then(|o| o.try_into_frame())
        {
            Ok(r) if r.verdict.is_real_time() => return Ok(Some(ch)),
            Ok(_) => continue,
            Err(CoreError::Load(mcm_load::LoadError::LayoutOverflow { .. })) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Cell;

    fn cell(ms: f64) -> Cell {
        Cell::synthetic_for_tests(ms)
    }

    #[test]
    fn doubling_speedups_from_synthetic_grid() {
        // Perfect 2x grid.
        let d = Fig3Data {
            clocks_mhz: vec![200, 266, 333, 400, 466, 533],
            channels: vec![1, 2, 4, 8],
            cells: (0..4)
                .map(|r| {
                    (0..6)
                        .map(|c| {
                            cell(
                                40.0 / (1 << r) as f64 * 200.0
                                    / [200.0, 266.0, 333.0, 400.0, 466.0, 533.0][c],
                            )
                        })
                        .collect()
                })
                .collect(),
            realtime_ms: 33.3,
        };
        let ch = channel_doubling_speedup(&d).unwrap();
        assert!((ch - 2.0).abs() < 1e-9);
        let clk = clock_doubling_speedup(&d).unwrap();
        assert!((clk - 2.0).abs() < 0.01);
    }
}

/// The highest frame rate `format` can sustain on a given memory
/// configuration while meeting real time with the experiment margin —
/// the "future needs" headroom question the conclusions raise.
///
/// The traffic itself varies (weakly) with the frame rate through the
/// display-refresh share and the bitstream, so the estimate iterates:
/// simulate at a rate, derive the implied sustainable rate from the access
/// time, re-simulate, until it converges (a few rounds).
pub fn max_sustainable_fps(base: &Experiment) -> Result<Option<u32>, CoreError> {
    let mut fps = base.use_case.fps;
    let mut result = None;
    for _ in 0..5 {
        let mut exp = base.clone();
        exp.use_case.fps = fps;
        // The level caps the MB rate; lift the use case to the smallest
        // level that supports the trial rate so the experiment validates.
        match mcm_load::H264Level::minimum_for(exp.use_case.video, fps) {
            Ok(level) => {
                exp.use_case.level = level;
                exp.use_case.video_kbps = exp.use_case.video_kbps.min(level.limits().max_br_kbps);
            }
            Err(_) => return Ok(result),
        }
        let r = match exp
            .run_with(&crate::RunOptions::default())
            .and_then(|o| o.try_into_frame())
        {
            Ok(r) => r,
            Err(CoreError::Load(_)) => return Ok(result),
            Err(e) => return Err(e),
        };
        let frame_s = r.access_time.as_s_f64() / (1.0 - exp.margin);
        let sustainable = (1.0 / frame_s).floor() as u32;
        if sustainable == 0 {
            return Ok(result);
        }
        if sustainable >= fps {
            result = Some(sustainable.max(result.unwrap_or(0)));
        }
        if sustainable == fps {
            break;
        }
        fps = sustainable.max(1);
    }
    Ok(result)
}

#[cfg(test)]
mod headroom_tests {
    use super::*;

    #[test]
    fn headroom_scales_with_channels() {
        let fps_for = |ch: u32| {
            let mut base = Experiment::paper(HdOperatingPoint::Hd720p30, ch, 400);
            base.op_limit = Some(60_000 / ch as u64);
            max_sustainable_fps(&base).unwrap().unwrap()
        };
        let f1 = fps_for(1);
        let f2 = fps_for(2);
        assert!(f1 >= 25, "one channel sustains ~30 fps at 720p, got {f1}");
        let ratio = f2 as f64 / f1 as f64;
        assert!((1.5..=2.5).contains(&ratio), "doubling ratio {ratio}");
    }
}

/// First-order analytic prediction of the minimum channel count: the
/// Table I load divided by per-channel delivered bandwidth
/// (`bus_bytes × 2 × clock × efficiency`), rounded up — the back-of-envelope
/// a designer would do before simulating. Cross-checked against the
/// simulation in the test suite with the measured ≈0.74 efficiency.
pub fn predicted_min_channels(
    point: HdOperatingPoint,
    clock_mhz: u64,
    efficiency: f64,
    margin: f64,
) -> u32 {
    let load = mcm_load::UseCase::hd(point).table_row().bits_per_second() as f64 / 8.0;
    let per_channel = 4.0 * 2.0 * clock_mhz as f64 * 1e6 * efficiency * (1.0 - margin);
    (load / per_channel).ceil().max(1.0) as u32
}

#[cfg(test)]
mod prediction_tests {
    use super::*;

    #[test]
    fn analytic_prediction_matches_simulation_at_400mhz() {
        // The simulator's measured bus efficiency on this load is ~0.74.
        for (point, expect) in [
            (HdOperatingPoint::Hd720p30, 1u32),
            (HdOperatingPoint::Hd720p60, 2),
            (HdOperatingPoint::Hd1080p30, 3), // sim: 2 marginal / 4 safe
            (HdOperatingPoint::Hd1080p60, 4), // sim: 4 on the margin line
            (HdOperatingPoint::Uhd2160p30, 8), // sim: 8 on the margin line
        ] {
            let got = predicted_min_channels(point, 400, 0.74, 0.15);
            assert_eq!(got, expect, "{point}");
        }
        // Rounded up to the evaluated power-of-two set, the prediction gives
        // the same channel counts the conclusions name (1/2/4/4→8/8).
        assert_eq!(
            predicted_min_channels(HdOperatingPoint::Hd1080p30, 400, 0.74, 0.15)
                .next_power_of_two(),
            4
        );
    }
}
