//! Property tests for the controller's command scheduling.
//!
//! The central invariant: for *any* stream of requests — random addresses,
//! lengths, directions, arrival gaps, policies — every command the
//! controller commits must be legal under the independent timing oracle
//! (`mcm_dram::TraceValidator`), and the accounting must balance.

use mcm_ctrl::{
    AccessOp, ChannelRequest, Controller, ControllerConfig, PagePolicy, PowerDownPolicy,
    RefreshPolicy, WritePolicy,
};
use mcm_dram::{AddressMapping, TraceValidator};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ReqSpec {
    write: bool,
    addr_frac: f64,
    len: u32,
    gap: u64,
}

fn arb_request() -> impl Strategy<Value = ReqSpec> {
    (
        any::<bool>(),
        0.0f64..1.0,
        1u32..512,
        prop_oneof![
            4 => Just(0u64),           // back-to-back (the common case)
            2 => 1u64..64,             // short think time
            1 => 1_000u64..20_000,     // long idle: power-down + refresh
        ],
    )
        .prop_map(|(write, addr_frac, len, gap)| ReqSpec {
            write,
            addr_frac,
            len,
            gap,
        })
}

fn arb_config() -> impl Strategy<Value = ControllerConfig> {
    (
        prop_oneof![Just(200u64), Just(333), Just(400), Just(533)],
        any::<bool>(), // mapping
        any::<bool>(), // page policy
        prop_oneof![
            Just(PowerDownPolicy::AfterIdleCycles(1)),
            Just(PowerDownPolicy::AfterIdleCycles(64)),
            Just(PowerDownPolicy::PowerDownThenSelfRefresh {
                pd_after: 1,
                sr_after: 2_000
            }),
            Just(PowerDownPolicy::Never),
        ],
        any::<bool>(), // refresh enabled
        prop_oneof![
            Just(WritePolicy::Immediate),
            Just(WritePolicy::Batched(8)),
            Just(WritePolicy::Batched(64)),
        ],
    )
        .prop_map(|(clock, rbc, open, power_down, refresh, write_policy)| {
            let mut cfg = ControllerConfig::paper_default(clock);
            cfg.mapping = if rbc {
                AddressMapping::Rbc
            } else {
                AddressMapping::Brc
            };
            cfg.page_policy = if open {
                PagePolicy::Open
            } else {
                PagePolicy::Closed
            };
            cfg.power_down = power_down;
            cfg.refresh = RefreshPolicy {
                enabled: refresh,
                max_postpone: 8,
            };
            cfg.write_policy = write_policy;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_committed_command_is_legal(
        cfg in arb_config(),
        reqs in prop::collection::vec(arb_request(), 1..120),
    ) {
        let mut ctrl = Controller::new(&cfg).unwrap();
        ctrl.enable_trace();
        let capacity = ctrl.device().geometry().capacity_bytes();
        let mut arrival = 0u64;
        let mut requested_bytes = 0u64;
        for r in &reqs {
            arrival += r.gap;
            let addr = ((capacity - r.len as u64 - 1) as f64 * r.addr_frac) as u64;
            let res = ctrl.access(ChannelRequest {
                op: if r.write { AccessOp::Write } else { AccessOp::Read },
                addr,
                len: r.len,
                arrival,
            }).unwrap();
            prop_assert!(res.done_cycle >= arrival);
            requested_bytes += r.len as u64;
        }
        let end = ctrl.busy_until() + 50_000;
        let report = ctrl.finish(end).unwrap();

        // Independent legality oracle over the executed trace.
        let validator = TraceValidator::new(*ctrl.device().timing(), *ctrl.device().geometry());
        let trace = ctrl.device().trace().expect("trace enabled");
        let violations = validator.check(trace);
        prop_assert!(
            violations.is_empty(),
            "scheduler produced illegal commands: {:?}",
            &violations[..violations.len().min(3)]
        );

        // Accounting balances: bursts cover the requested bytes.
        let burst = ctrl.device().geometry().burst_bytes() as u64;
        let bursts = report.ctrl.read_bursts + report.ctrl.write_bursts;
        prop_assert!(bursts * burst >= requested_bytes);
        // Over-fetch is bounded by one burst per request end.
        prop_assert!(bursts * burst < requested_bytes + 2 * burst * reqs.len() as u64);

        // Energy is positive, finite and decomposes.
        prop_assert!(report.total_energy_pj.is_finite());
        prop_assert!(report.total_energy_pj > 0.0);
        let sum = report.background_energy_pj + report.event_energy_pj;
        prop_assert!((report.total_energy_pj - sum).abs() < 1e-6);
    }

    #[test]
    fn completion_cycles_are_monotone_for_fcfs(
        reqs in prop::collection::vec(arb_request(), 1..80),
    ) {
        let mut ctrl = Controller::new(&ControllerConfig::paper_default(400)).unwrap();
        let capacity = ctrl.device().geometry().capacity_bytes();
        let mut arrival = 0u64;
        let mut last_done = 0u64;
        for r in &reqs {
            arrival += r.gap;
            let addr = ((capacity - r.len as u64 - 1) as f64 * r.addr_frac) as u64;
            let res = ctrl.access(ChannelRequest {
                op: if r.write { AccessOp::Write } else { AccessOp::Read },
                addr,
                len: r.len,
                arrival,
            }).unwrap();
            // In-order service: a later request's data never completes
            // before an earlier one's.
            prop_assert!(res.done_cycle >= last_done);
            last_done = res.done_cycle;
        }
    }

    #[test]
    fn row_outcomes_partition_bursts(
        reqs in prop::collection::vec(arb_request(), 1..100),
    ) {
        let mut ctrl = Controller::new(&ControllerConfig::paper_default(400)).unwrap();
        let capacity = ctrl.device().geometry().capacity_bytes();
        let mut arrival = 0u64;
        for r in &reqs {
            arrival += r.gap;
            let addr = ((capacity - r.len as u64 - 1) as f64 * r.addr_frac) as u64;
            ctrl.access(ChannelRequest {
                op: if r.write { AccessOp::Write } else { AccessOp::Read },
                addr,
                len: r.len,
                arrival,
            }).unwrap();
        }
        let s = ctrl.stats();
        prop_assert_eq!(
            s.row_hits + s.row_misses + s.row_conflicts,
            s.read_bursts + s.write_bursts
        );
    }

    #[test]
    fn refresh_obligations_are_served(
        gap in 100_000u64..2_000_000,
    ) {
        // After a long idle period every matured refresh obligation must
        // have been issued (the controller catches up during idle).
        let mut ctrl = Controller::new(&ControllerConfig::paper_default(400)).unwrap();
        ctrl.access(ChannelRequest { op: AccessOp::Read, addr: 0, len: 16, arrival: 0 }).unwrap();
        ctrl.access(ChannelRequest { op: AccessOp::Read, addr: 64, len: 16, arrival: gap }).unwrap();
        let t_refi = ctrl.device().timing().t_refi;
        let due = gap / t_refi;
        let served = ctrl.device().stats().refreshes;
        prop_assert!(
            served + 1 >= due,
            "due {due}, served {served}"
        );
    }
}
