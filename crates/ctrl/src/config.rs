//! Controller policies and configuration.

use core::fmt;

use mcm_dram::{AddressMapping, ClusterConfig};
use serde::{Deserialize, Serialize};

/// Row-buffer management policy.
///
/// The paper uses **open page** for all reported results: the sequential
/// video-recording traffic has high row locality, so rows are left open
/// between column accesses. Closed page is provided for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Leave rows open after column accesses (paper's choice).
    #[default]
    Open,
    /// Precharge a row as soon as its burst completes.
    Closed,
}

impl fmt::Display for PagePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagePolicy::Open => write!(f, "open-page"),
            PagePolicy::Closed => write!(f, "closed-page"),
        }
    }
}

/// When the controller drops CKE to put the bank cluster into power-down.
///
/// The paper assumes maximum energy savings: "bank clusters go to power down
/// states after the first idle clock cycle" — that is
/// [`PowerDownPolicy::AfterIdleCycles`]`(1)`, available as
/// [`PowerDownPolicy::immediate`]. The other variants exist for the
/// power-management ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerDownPolicy {
    /// Enter power-down once the device has been idle for this many cycles.
    AfterIdleCycles(u64),
    /// Enter power-down after `pd_after` idle cycles and escalate to
    /// self-refresh after `sr_after` idle cycles (`sr_after >= pd_after`).
    /// Self-refresh is the deepest idle mode: the device refreshes itself
    /// at IDD6 and the controller's tREFI obligations are suspended —
    /// an extension beyond the paper's power-down-only scheme.
    PowerDownThenSelfRefresh {
        /// Idle cycles before CKE drops (power-down entry).
        pd_after: u64,
        /// Idle cycles before escalating to self-refresh.
        sr_after: u64,
    },
    /// Never power down (standby during idle).
    Never,
}

impl PowerDownPolicy {
    /// The paper's policy: power down after the first idle clock cycle.
    pub fn immediate() -> Self {
        PowerDownPolicy::AfterIdleCycles(1)
    }

    /// The power-down idle threshold in cycles, if any.
    pub fn threshold(&self) -> Option<u64> {
        match *self {
            PowerDownPolicy::AfterIdleCycles(n) => Some(n),
            PowerDownPolicy::PowerDownThenSelfRefresh { pd_after, .. } => Some(pd_after),
            PowerDownPolicy::Never => None,
        }
    }

    /// The self-refresh idle threshold in cycles, if any.
    pub fn self_refresh_threshold(&self) -> Option<u64> {
        match *self {
            PowerDownPolicy::PowerDownThenSelfRefresh { sr_after, .. } => Some(sr_after),
            _ => None,
        }
    }
}

impl Default for PowerDownPolicy {
    fn default() -> Self {
        Self::immediate()
    }
}

impl fmt::Display for PowerDownPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerDownPolicy::AfterIdleCycles(1) => write!(f, "power-down after first idle cycle"),
            PowerDownPolicy::AfterIdleCycles(n) => write!(f, "power-down after {n} idle cycles"),
            PowerDownPolicy::PowerDownThenSelfRefresh { pd_after, sr_after } => write!(
                f,
                "power-down after {pd_after}, self-refresh after {sr_after} idle cycles"
            ),
            PowerDownPolicy::Never => write!(f, "never power down"),
        }
    }
}

/// The channel's DRAM interconnect (the middle box of the paper's Fig. 2
/// channel: memory controller → *DRAM interconnect* → bank cluster).
///
/// Modeled as a fixed pipeline latency each way. Die stacking — the paper's
/// enabling technology — makes this a cycle; an off-chip (package + PCB)
/// channel costs several cycles each way and, with a latency-bound master,
/// eats the multi-channel speedup (see the `ext_stacking` bench target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InterconnectModel {
    /// Cycles from the controller issuing a request to the command reaching
    /// the device.
    pub request_ck: u64,
    /// Cycles from the last data beat to the data reaching the master.
    pub response_ck: u64,
}

impl InterconnectModel {
    /// A 3-D die-stacked channel: one cycle each way (paper's assumption).
    pub fn die_stacked() -> Self {
        InterconnectModel {
            request_ck: 1,
            response_ck: 1,
        }
    }

    /// A conventional off-chip channel (package balls + PCB trace +
    /// registered interface): several cycles each way at DDR2-range clocks.
    pub fn off_chip() -> Self {
        InterconnectModel {
            request_ck: 8,
            response_ck: 8,
        }
    }

    /// Round-trip latency in cycles.
    pub fn round_trip_ck(&self) -> u64 {
        self.request_ck + self.response_ck
    }
}

impl Default for InterconnectModel {
    fn default() -> Self {
        Self::die_stacked()
    }
}

impl fmt::Display for InterconnectModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interconnect {}+{} ck",
            self.request_ck, self.response_ck
        )
    }
}

/// How writes are scheduled relative to reads.
///
/// The paper's controller (and this crate's default) issues every access in
/// arrival order. Real controllers post writes into a write buffer and
/// drain them in batches, amortizing the expensive read↔write bus
/// turnarounds; reads that hit a buffered write flush it first
/// (read-own-write hazard). Available as an ablation of the paper's
/// in-order assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Issue writes immediately, in arrival order (the paper's model).
    #[default]
    Immediate,
    /// Post writes into a buffer of this many bursts; drain when full, on a
    /// read-own-write hazard, or at idle.
    Batched(u32),
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WritePolicy::Immediate => write!(f, "writes in order"),
            WritePolicy::Batched(n) => write!(f, "writes batched x{n}"),
        }
    }
}

/// Auto-refresh management.
///
/// One refresh obligation matures every tREFI; the controller may postpone
/// up to `max_postpone` obligations (as real DDR controllers may postpone up
/// to eight) before forcing a refresh in the middle of traffic. Idle periods
/// are used to catch up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RefreshPolicy {
    /// Whether refresh is modeled at all (disabled only in experiments that
    /// isolate other effects).
    pub enabled: bool,
    /// Maximum matured-but-unserved obligations before refresh preempts
    /// traffic.
    pub max_postpone: u32,
}

impl Default for RefreshPolicy {
    fn default() -> Self {
        RefreshPolicy {
            enabled: true,
            max_postpone: 8,
        }
    }
}

/// Full configuration of one channel's memory controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// The attached DRAM device (bank cluster).
    pub cluster: ClusterConfig,
    /// Address multiplexing type (paper: RBC).
    pub mapping: AddressMapping,
    /// Row-buffer policy (paper: open page).
    pub page_policy: PagePolicy,
    /// CKE management (paper: power down after first idle cycle).
    pub power_down: PowerDownPolicy,
    /// Refresh management.
    pub refresh: RefreshPolicy,
    /// The DRAM interconnect between controller and bank cluster.
    pub interconnect: InterconnectModel,
    /// Write scheduling (paper: in order).
    pub write_policy: WritePolicy,
}

impl ControllerConfig {
    /// The paper's configuration at a given interface clock:
    /// next-generation mobile DDR, RBC mapping, open page, immediate
    /// power-down, standard refresh.
    pub fn paper_default(clock_mhz: u64) -> Self {
        ControllerConfig {
            cluster: ClusterConfig::next_gen_mobile_ddr(clock_mhz),
            mapping: AddressMapping::Rbc,
            page_policy: PagePolicy::Open,
            power_down: PowerDownPolicy::immediate(),
            refresh: RefreshPolicy::default(),
            interconnect: InterconnectModel::die_stacked(),
            write_policy: WritePolicy::Immediate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ControllerConfig::paper_default(400);
        assert_eq!(c.mapping, AddressMapping::Rbc);
        assert_eq!(c.page_policy, PagePolicy::Open);
        assert_eq!(c.power_down, PowerDownPolicy::AfterIdleCycles(1));
        assert!(c.refresh.enabled);
        assert_eq!(c.interconnect, InterconnectModel::die_stacked());
    }

    #[test]
    fn interconnect_presets() {
        assert_eq!(InterconnectModel::die_stacked().round_trip_ck(), 2);
        assert_eq!(InterconnectModel::off_chip().round_trip_ck(), 16);
        assert_eq!(
            InterconnectModel::die_stacked().to_string(),
            "interconnect 1+1 ck"
        );
    }

    #[test]
    fn policy_displays() {
        assert_eq!(PagePolicy::Open.to_string(), "open-page");
        assert_eq!(
            PowerDownPolicy::immediate().to_string(),
            "power-down after first idle cycle"
        );
        assert_eq!(
            PowerDownPolicy::AfterIdleCycles(64).to_string(),
            "power-down after 64 idle cycles"
        );
        assert_eq!(PowerDownPolicy::Never.to_string(), "never power down");
    }

    #[test]
    fn thresholds() {
        assert_eq!(PowerDownPolicy::immediate().threshold(), Some(1));
        assert_eq!(PowerDownPolicy::Never.threshold(), None);
        let deep = PowerDownPolicy::PowerDownThenSelfRefresh {
            pd_after: 1,
            sr_after: 10_000,
        };
        assert_eq!(deep.threshold(), Some(1));
        assert_eq!(deep.self_refresh_threshold(), Some(10_000));
        assert_eq!(PowerDownPolicy::immediate().self_refresh_threshold(), None);
        assert!(deep.to_string().contains("self-refresh after 10000"));
    }
}
