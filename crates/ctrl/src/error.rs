//! Controller error type.

use core::fmt;

use mcm_dram::DramError;

/// Errors raised by the memory controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlError {
    /// The underlying device rejected a command or configuration.
    Dram(DramError),
    /// A request had zero length.
    EmptyRequest,
    /// Requests must arrive in non-decreasing time order on an FCFS channel.
    NonMonotonicArrival {
        /// The offending arrival cycle.
        arrival: u64,
        /// The previous request's arrival cycle.
        previous: u64,
    },
    /// An internal invariant of the controller/device contract was broken
    /// (a bug in one of them, not a caller error).
    Internal {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlError::Dram(e) => write!(f, "DRAM error: {e}"),
            CtrlError::EmptyRequest => write!(f, "zero-length memory request"),
            CtrlError::NonMonotonicArrival { arrival, previous } => write!(
                f,
                "request arrival {arrival} precedes previous arrival {previous}"
            ),
            CtrlError::Internal { reason } => {
                write!(f, "internal controller invariant broken: {reason}")
            }
        }
    }
}

impl std::error::Error for CtrlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtrlError::Dram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DramError> for CtrlError {
    fn from(e: DramError) -> Self {
        CtrlError::Dram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_dram_errors_with_source() {
        use std::error::Error;
        let e: CtrlError = DramError::InvalidGeometry { reason: "x".into() }.into();
        assert!(e.to_string().contains("DRAM error"));
        assert!(e.source().is_some());
        assert!(CtrlError::EmptyRequest.source().is_none());
    }
}
