//! # mcm-ctrl — per-channel memory controller
//!
//! Implements the paper's channel controller (Section III): address mapping
//! onto banks/rows/columns, precharge/activate/read/write command
//! generation, periodic refresh, and the aggressive power-down scheme
//! ("bank clusters go to power down states after the first idle clock
//! cycle"). Row-buffer policy, power-down policy and refresh policy are all
//! configurable to support the ablation studies.
//!
//! The controller is in-order (FCFS): the paper's memory master is a single
//! SMP cache-miss stream, so requests arrive — and are served — in program
//! order. Every command is committed at the earliest cycle the device
//! declares legal, which lets activates to other banks overlap in-flight
//! data transfers.
//!
//! # Examples
//!
//! ```
//! use mcm_ctrl::{AccessOp, ChannelRequest, Controller, ControllerConfig};
//!
//! let mut ctrl = Controller::new(&ControllerConfig::paper_default(400)).unwrap();
//! // Sweep 2 KiB sequentially: one activate, then 127 row hits.
//! let res = ctrl.access(ChannelRequest {
//!     op: AccessOp::Read, addr: 0, len: 2048, arrival: 0,
//! }).unwrap();
//! assert_eq!(res.bursts, 128);
//! assert_eq!(ctrl.stats().row_hits, 127);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Model code must surface failures as typed errors, never panic
// (clippy.toml lists the banned methods). Tests keep their unwraps.
#![warn(clippy::disallowed_methods)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

mod config;
mod controller;
mod error;
mod request;

pub use config::{
    ControllerConfig, InterconnectModel, PagePolicy, PowerDownPolicy, RefreshPolicy, WritePolicy,
};
pub use controller::{AccessResult, ChannelReport, Controller, CtrlStats};
pub use error::CtrlError;
pub use request::{AccessOp, ChannelRequest};
