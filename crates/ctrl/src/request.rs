//! Memory access requests as seen by one channel's controller.

use core::fmt;

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOp {
    /// Data flows from memory to the master.
    Read,
    /// Data flows from the master to memory.
    Write,
}

impl AccessOp {
    /// `true` for writes.
    pub fn is_write(self) -> bool {
        matches!(self, AccessOp::Write)
    }
}

impl fmt::Display for AccessOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessOp::Read => write!(f, "read"),
            AccessOp::Write => write!(f, "write"),
        }
    }
}

/// A channel-local access: `len` bytes at byte address `addr`, arriving at
/// the controller at interface-clock cycle `arrival`.
///
/// Addresses are local to the channel (the multi-channel subsystem performs
/// the Table II interleaving before requests reach a controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelRequest {
    /// Direction.
    pub op: AccessOp,
    /// Channel-local byte address of the first byte.
    pub addr: u64,
    /// Length in bytes (need not be burst-aligned; the controller fetches
    /// whole bursts covering the range).
    pub len: u32,
    /// Arrival cycle at the controller.
    pub arrival: u64,
}

impl fmt::Display for ChannelRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}B @ {:#x} (cycle {})",
            self.op, self.len, self.addr, self.arrival
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_properties() {
        assert!(AccessOp::Write.is_write());
        assert!(!AccessOp::Read.is_write());
        assert_eq!(AccessOp::Read.to_string(), "read");
    }

    #[test]
    fn request_display() {
        let r = ChannelRequest {
            op: AccessOp::Write,
            addr: 0x1000,
            len: 64,
            arrival: 7,
        };
        assert_eq!(r.to_string(), "write 64B @ 0x1000 (cycle 7)");
    }
}
