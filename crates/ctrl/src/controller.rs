//! The per-channel memory controller.
//!
//! The paper's controller "takes care of memory mappings onto banks, rows
//! and columns of the bank cluster" and "manage[s] all the DRAM operations:
//! precharges, activations, reads, writes, refreshes, and power downs".
//! This module implements exactly that: an in-order (FCFS) controller for a
//! single-master channel — the paper's load is the cache-miss stream of one
//! SMP, so requests arrive in program order and there is nothing to reorder.
//!
//! Scheduling is greedy-earliest: every DRAM command is committed at the
//! earliest cycle the device declares legal. Because commands for
//! consecutive bursts are interleaved in one stream, an activate for the
//! next bank naturally overlaps the tail of the previous bank's data
//! transfer — which is what makes the RBC address multiplexing faster than
//! BRC on sequential traffic (see `mcm_dram::AddressMapping`).

use mcm_dram::{AddressDecoder, BankCluster, ClusterStats, DramCommand, IssueOutcome};
use mcm_obs::{ChannelObs, FaultKind, RowOutcome};
use mcm_sim::stats::LatencyHistogram;

use crate::config::{
    ControllerConfig, InterconnectModel, PagePolicy, PowerDownPolicy, WritePolicy,
};
use crate::error::CtrlError;
use crate::request::{AccessOp, ChannelRequest};

/// Row-buffer outcome counts and other controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtrlStats {
    /// Bursts that hit an already-open row.
    pub row_hits: u64,
    /// Bursts that found the bank closed (activate only).
    pub row_misses: u64,
    /// Bursts that found a different row open (precharge + activate).
    pub row_conflicts: u64,
    /// Read bursts issued.
    pub read_bursts: u64,
    /// Write bursts issued.
    pub write_bursts: u64,
    /// Refreshes issued while traffic was waiting (postpone budget
    /// exhausted).
    pub refreshes_forced: u64,
    /// Refreshes absorbed by idle periods.
    pub refreshes_idle: u64,
    /// Power-down / self-refresh exits (wake-ups) performed.
    pub wakeups: u64,
    /// Self-refresh entries (deep-idle escalations).
    pub sr_entries: u64,
    /// Write-buffer drains (batched write policy only).
    pub write_flushes: u64,
    /// Drains forced by a read hitting a buffered write.
    pub hazard_flushes: u64,
    /// Requests deferred by a controller-stall fault window.
    pub stalls: u64,
}

/// Timing result of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle of the first command issued for the request.
    pub first_cmd_cycle: u64,
    /// Cycle at which the last data beat of the request completes.
    pub done_cycle: u64,
    /// Number of DRAM bursts the request was split into.
    pub bursts: u32,
}

/// End-of-run report for one channel.
#[derive(Debug, Clone)]
pub struct ChannelReport {
    /// Cycle at which the last data beat of the whole run completed.
    pub busy_until: u64,
    /// Wall-clock time of `busy_until` on the channel clock.
    pub busy_until_time: mcm_sim::SimTime,
    /// Total core energy over the run horizon, picojoules.
    pub total_energy_pj: f64,
    /// Background (state-residency) share of the energy, picojoules.
    pub background_energy_pj: f64,
    /// Per-event (activate/burst/refresh) share, picojoules.
    pub event_energy_pj: f64,
    /// Event energy split: (activate, read, write, refresh), picojoules.
    pub event_breakdown_pj: (f64, f64, f64, f64),
    /// Controller statistics.
    pub ctrl: CtrlStats,
    /// Device command statistics.
    pub device: ClusterStats,
    /// Mean request latency (arrival to last data beat), if any requests ran.
    pub latency_mean: Option<mcm_sim::SimTime>,
    /// Maximum request latency.
    pub latency_max: mcm_sim::SimTime,
    /// Approximate 99th-percentile request latency.
    pub latency_p99: Option<mcm_sim::SimTime>,
}

/// One channel's in-order memory controller plus its attached bank cluster.
///
/// # Examples
///
/// ```
/// use mcm_ctrl::{AccessOp, ChannelRequest, Controller, ControllerConfig};
///
/// let mut ctrl = Controller::new(&ControllerConfig::paper_default(400)).unwrap();
/// let res = ctrl
///     .access(ChannelRequest { op: AccessOp::Read, addr: 0, len: 64, arrival: 0 })
///     .unwrap();
/// assert_eq!(res.bursts, 4); // 64 bytes = 4 × 16-byte bursts
/// assert!(res.done_cycle > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Controller {
    device: BankCluster,
    decoder: AddressDecoder,
    page_policy: PagePolicy,
    power_down: PowerDownPolicy,
    interconnect: InterconnectModel,
    refresh_enabled: bool,
    refresh_max_postpone: u64,
    t_refi: u64,
    refreshes_issued: u64,
    /// Cached first cycle at which the refresh backlog exceeds the postpone
    /// budget — the per-burst preemption test is a compare, not a division.
    /// Recomputed whenever `refreshes_issued` or `sr_cycles_total` changes.
    next_forced_refresh: u64,
    /// Cycle at which the channel last became idle (all commands issued and
    /// data drained).
    busy_until: u64,
    /// Idle-period housekeeping (power-down entry, refresh catch-up) has
    /// been performed up to this cycle.
    idle_handled_to: u64,
    last_arrival: u64,
    /// Total cycles spent in self-refresh so far (refresh obligations are
    /// suspended while the device refreshes itself).
    sr_cycles_total: u64,
    sr_entered_at: u64,
    write_policy: WritePolicy,
    /// Posted write bursts awaiting drain (burst-aligned byte addresses).
    pending_writes: std::collections::VecDeque<u64>,
    stats: CtrlStats,
    latency: LatencyHistogram,
    obs: Option<ChannelObs>,
    /// Periodic controller-stall fault: `(period, stall, phase)` cycles.
    /// Requests arriving inside the first `stall` cycles of each period are
    /// deferred to the period's end. `None` (healthy) costs one branch.
    stall_window: Option<(u64, u64, u64)>,
}

impl Controller {
    /// Builds a controller and its device; validates the full configuration.
    pub fn new(config: &ControllerConfig) -> Result<Self, CtrlError> {
        let device = BankCluster::new(&config.cluster)?;
        let decoder = AddressDecoder::new(config.cluster.geometry, config.mapping)?;
        let t_refi = device.timing().t_refi;
        let next_forced_refresh = if config.refresh.enabled {
            (config.refresh.max_postpone as u64 + 1).saturating_mul(t_refi)
        } else {
            u64::MAX
        };
        Ok(Controller {
            device,
            decoder,
            page_policy: config.page_policy,
            power_down: config.power_down,
            interconnect: config.interconnect,
            refresh_enabled: config.refresh.enabled,
            refresh_max_postpone: config.refresh.max_postpone as u64,
            t_refi,
            refreshes_issued: 0,
            next_forced_refresh,
            busy_until: 0,
            idle_handled_to: 0,
            last_arrival: 0,
            sr_cycles_total: 0,
            sr_entered_at: 0,
            write_policy: config.write_policy,
            pending_writes: std::collections::VecDeque::new(),
            stats: CtrlStats::default(),
            latency: LatencyHistogram::new(),
            obs: None,
            stall_window: None,
        })
    }

    /// Applies refresh pressure: the effective refresh interval (tREFI) is
    /// divided by `divisor`, modelling the elevated refresh rate a
    /// retention or thermal problem forces. Cumulative across calls;
    /// `divisor` of zero or one leaves the controller unchanged.
    pub fn set_refresh_pressure(&mut self, divisor: u64) {
        if divisor > 1 {
            self.t_refi = (self.t_refi / divisor).max(1);
            self.recompute_forced_refresh();
        }
    }

    /// The effective refresh interval in cycles (tREFI after any applied
    /// refresh pressure).
    pub fn refresh_interval(&self) -> u64 {
        self.t_refi
    }

    /// Installs a periodic controller-stall fault: requests arriving within
    /// the first `stall` cycles of each `period`-cycle window (offset by
    /// `phase`) are deferred to the window's end. Models transient
    /// controller unavailability; requires `0 < stall < period`.
    pub fn set_stall_window(&mut self, period: u64, stall: u64, phase: u64) {
        debug_assert!(stall > 0 && stall < period);
        self.stall_window = Some((period, stall, phase));
    }

    /// Degrades one bank of the attached device (extra tRCD/tRP cycles) —
    /// the fault layer's slow/stuck-row model.
    pub fn set_bank_penalty(
        &mut self,
        bank: u32,
        extra_trcd: u64,
        extra_trp: u64,
    ) -> Result<(), CtrlError> {
        self.device.set_bank_penalty(bank, extra_trcd, extra_trp)?;
        Ok(())
    }

    /// Attaches an observability handle: row-buffer outcomes, request
    /// latencies and queue depths report through it, and the attached
    /// device reports every command and energy interval. Off by default.
    pub fn set_obs(&mut self, obs: ChannelObs) {
        self.device.set_obs(obs.clone());
        self.obs = Some(obs);
    }

    /// The attached device.
    pub fn device(&self) -> &BankCluster {
        &self.device
    }

    /// Starts recording the device's command trace (see
    /// `mcm_dram::validate` for the independent legality oracle).
    pub fn enable_trace(&mut self) {
        self.device.enable_trace();
    }

    /// The address decoder in use.
    pub fn decoder(&self) -> &AddressDecoder {
        &self.decoder
    }

    /// Controller statistics so far.
    pub fn stats(&self) -> CtrlStats {
        self.stats
    }

    /// Cycle at which all issued work completes (the channel's contribution
    /// to the frame access time).
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Per-request latency distribution (arrival to last data beat).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    fn issue(
        &mut self,
        cmd: DramCommand,
        not_before: u64,
    ) -> Result<(u64, IssueOutcome), CtrlError> {
        Ok(self.device.issue_at_earliest(cmd, not_before)?)
    }

    /// Wakes the device from self-refresh or power-down, if it sleeps.
    fn wake(&mut self, not_before: u64) -> Result<(), CtrlError> {
        if self.device.is_self_refreshing() {
            let (c, _) = self.issue(DramCommand::SelfRefreshExit, not_before)?;
            self.sr_cycles_total += c.saturating_sub(self.sr_entered_at);
            self.recompute_forced_refresh();
            self.stats.wakeups += 1;
        } else if self.device.is_powered_down() {
            let (_, _) = self.issue(DramCommand::PowerDownExit, not_before)?;
            self.stats.wakeups += 1;
        }
        Ok(())
    }

    /// Number of refresh obligations matured by `cycle` but not yet served.
    /// Time spent in self-refresh does not mature obligations — the device
    /// refreshes itself.
    fn refresh_backlog(&self, cycle: u64) -> u64 {
        if !self.refresh_enabled {
            return 0;
        }
        (cycle.saturating_sub(self.sr_cycles_total) / self.t_refi)
            .saturating_sub(self.refreshes_issued)
    }

    /// Refreshes the cached forced-refresh threshold: the first cycle at
    /// which [`Controller::refresh_backlog`] exceeds the postpone budget.
    fn recompute_forced_refresh(&mut self) {
        self.next_forced_refresh = if self.refresh_enabled {
            (self.refreshes_issued + self.refresh_max_postpone + 1)
                .saturating_mul(self.t_refi)
                .saturating_add(self.sr_cycles_total)
        } else {
            u64::MAX
        };
        debug_assert!(
            self.next_forced_refresh == u64::MAX
                || self.refresh_backlog(self.next_forced_refresh) > self.refresh_max_postpone
        );
    }

    /// Serves one refresh as early as possible at or after `not_before`,
    /// waking the device and closing rows as required.
    fn do_refresh(&mut self, not_before: u64, forced: bool) -> Result<u64, CtrlError> {
        let lower = not_before;
        self.wake(lower)?;
        if self.device.any_bank_open() {
            let (_, _) = self.issue(DramCommand::PrechargeAll, lower)?;
        }
        let (c, _) = self.issue(DramCommand::Refresh, lower)?;
        self.refreshes_issued += 1;
        self.recompute_forced_refresh();
        if forced {
            self.stats.refreshes_forced += 1;
        } else {
            self.stats.refreshes_idle += 1;
        }
        Ok(c + self.device.timing().t_rfc)
    }

    /// Performs idle-period housekeeping chronologically over
    /// `[self.busy_until, target)`: power-down entry per policy and refresh
    /// catch-up at due times. Safe to call with any monotone `target`.
    fn advance_idle_to(&mut self, target: u64) -> Result<(), CtrlError> {
        if target <= self.idle_handled_to {
            return Ok(());
        }
        // Traffic idleness starts at busy_until and is NOT reset by
        // housekeeping (refresh) activity: the self-refresh escalation
        // measures how long the *master* has been quiet.
        let idle_start = self.busy_until;
        let mut idle_since = self.busy_until.max(self.idle_handled_to);
        loop {
            let in_sr = self.device.is_self_refreshing();
            let pd_at = match self.power_down.threshold() {
                Some(th) if !self.device.is_powered_down() && !in_sr => {
                    idle_since.saturating_add(th)
                }
                _ => u64::MAX,
            };
            let sr_at = match self.power_down.self_refresh_threshold() {
                Some(th) if !in_sr => idle_start.saturating_add(th).max(idle_since),
                _ => u64::MAX,
            };
            let ref_at = if self.refresh_enabled && !in_sr {
                (self.refreshes_issued + 1)
                    .saturating_mul(self.t_refi)
                    .saturating_add(self.sr_cycles_total)
            } else {
                u64::MAX
            };
            let next = pd_at.min(ref_at).min(sr_at);
            if next >= target {
                break;
            }
            if sr_at <= pd_at && sr_at <= ref_at {
                // Escalate to self-refresh: bring CKE high if needed, close
                // all rows, then SRE. (The PDX here is a policy transition,
                // not a wake-up for traffic.)
                if self.device.is_powered_down() {
                    let (_, _) = self.issue(DramCommand::PowerDownExit, sr_at)?;
                }
                if self.device.any_bank_open() {
                    let (_, _) = self.issue(DramCommand::PrechargeAll, sr_at)?;
                }
                let (c, _) = self.issue(DramCommand::SelfRefreshEnter, sr_at)?;
                self.sr_entered_at = c;
                self.stats.sr_entries += 1;
            } else if ref_at <= pd_at {
                // Refresh comes due first (or simultaneously: refresh wins,
                // since entering power-down just before a due refresh would
                // immediately bounce back out).
                let done = self.do_refresh(ref_at, false)?;
                idle_since = done;
            } else {
                let (c, _) = self.issue(DramCommand::PowerDownEnter, pd_at)?;
                let _ = c;
            }
        }
        self.idle_handled_to = target;
        Ok(())
    }

    /// Issues one burst (row management + column command), returning the
    /// first command cycle and the data-end cycle.
    fn issue_burst(
        &mut self,
        write: bool,
        burst_addr: u64,
        not_before: u64,
    ) -> Result<(u64, u64), CtrlError> {
        let mut first_cmd = u64::MAX;
        // Refresh preemption when the postpone budget is exhausted.
        if self.busy_until.max(not_before) >= self.next_forced_refresh {
            let c = self.do_refresh(not_before, true)?;
            first_cmd = first_cmd.min(c.saturating_sub(self.device.timing().t_rfc));
        }
        let d = self.decoder.decode(burst_addr)?;
        let outcome = match self.device.open_row(d.bank)? {
            Some(row) if row == d.row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        };
        if let Some(obs) = &self.obs {
            obs.row_outcome(d.bank as u8, outcome);
        }
        match outcome {
            RowOutcome::Hit => {
                self.stats.row_hits += 1;
            }
            RowOutcome::Conflict => {
                self.stats.row_conflicts += 1;
                let (c, _) = self.issue(DramCommand::Precharge { bank: d.bank }, not_before)?;
                first_cmd = first_cmd.min(c);
                let (c, _) = self.issue(
                    DramCommand::Activate {
                        bank: d.bank,
                        row: d.row,
                    },
                    not_before,
                )?;
                first_cmd = first_cmd.min(c);
            }
            RowOutcome::Miss => {
                self.stats.row_misses += 1;
                let (c, _) = self.issue(
                    DramCommand::Activate {
                        bank: d.bank,
                        row: d.row,
                    },
                    not_before,
                )?;
                first_cmd = first_cmd.min(c);
            }
        }
        let cmd = if write {
            DramCommand::Write {
                bank: d.bank,
                col: d.col,
            }
        } else {
            DramCommand::Read {
                bank: d.bank,
                col: d.col,
            }
        };
        let (c, out) = self.issue(cmd, not_before)?;
        first_cmd = first_cmd.min(c);
        if write {
            self.stats.write_bursts += 1;
        } else {
            self.stats.read_bursts += 1;
        }
        if self.page_policy == PagePolicy::Closed {
            let (_, _) = self.issue(DramCommand::Precharge { bank: d.bank }, not_before)?;
        }
        let data_end = out.data_end_cycle.ok_or_else(|| CtrlError::Internal {
            reason: "column command returned no data-end cycle".into(),
        })?;
        Ok((first_cmd, data_end))
    }

    /// Drains the posted-write buffer.
    fn flush_writes(&mut self, not_before: u64) -> Result<(), CtrlError> {
        if self.pending_writes.is_empty() {
            return Ok(());
        }
        self.wake(not_before)?;
        self.stats.write_flushes += 1;
        let mut done = 0u64;
        while let Some(addr) = self.pending_writes.pop_front() {
            let (_, d) = self.issue_burst(true, addr, not_before)?;
            done = done.max(d);
        }
        self.busy_until = self.busy_until.max(done).max(self.device.data_busy_until());
        self.idle_handled_to = self.idle_handled_to.max(self.busy_until);
        Ok(())
    }

    /// Processes one request, committing every DRAM command it needs at the
    /// earliest legal cycle. Requests must arrive in non-decreasing
    /// `arrival` order (FCFS single-master channel).
    pub fn access(&mut self, req: ChannelRequest) -> Result<AccessResult, CtrlError> {
        if req.len == 0 {
            return Err(CtrlError::EmptyRequest);
        }
        if req.arrival < self.last_arrival {
            return Err(CtrlError::NonMonotonicArrival {
                arrival: req.arrival,
                previous: self.last_arrival,
            });
        }
        let prev_arrival = self.last_arrival;
        self.last_arrival = req.arrival;
        // Controller-stall fault: defer arrivals inside a stall window to
        // its end. The map is monotone (everything inside a window lands on
        // the same end cycle), so FCFS order survives.
        let req = match self.stall_window {
            Some((period, stall, phase)) => {
                let into = (req.arrival + phase) % period;
                if into < stall {
                    let deferred = req.arrival + (stall - into);
                    self.stats.stalls += 1;
                    if let Some(obs) = &self.obs {
                        let clock = self.device.timing().clock;
                        obs.fault(FaultKind::Stall, clock.time_of_cycles(req.arrival).as_ps());
                    }
                    ChannelRequest {
                        arrival: deferred,
                        ..req
                    }
                } else {
                    req
                }
            }
            None => req,
        };
        // The request crosses the DRAM interconnect before the controller
        // can act on it.
        let req = ChannelRequest {
            arrival: req.arrival + self.interconnect.request_ck,
            ..req
        };

        // Pending posted writes drain when the master goes quiet (a write
        // buffer cannot hold data across an idle period that would power
        // the device down).
        const WRITE_DRAIN_IDLE_CK: u64 = 32;
        if !self.pending_writes.is_empty()
            && req.arrival > self.busy_until.max(prev_arrival) + WRITE_DRAIN_IDLE_CK
        {
            self.flush_writes(self.busy_until)?;
        }

        // Idle housekeeping between the previous activity and this arrival.
        self.advance_idle_to(req.arrival)?;

        let burst_bytes = self.device.geometry().burst_bytes() as u64;
        let first_burst = req.addr / burst_bytes;
        let last_burst = (req.addr + req.len as u64 - 1) / burst_bytes;

        // Posted writes: accept into the buffer, drain when full.
        if req.op == AccessOp::Write {
            if let WritePolicy::Batched(depth) = self.write_policy {
                for burst in first_burst..=last_burst {
                    self.pending_writes.push_back(burst * burst_bytes);
                }
                if self.pending_writes.len() as u32 >= depth {
                    self.wake(req.arrival)?;
                    self.flush_writes(req.arrival)?;
                }
                // A posted write completes (from the master's view) as soon
                // as the buffer accepts it.
                let done_at_master = req.arrival + self.interconnect.response_ck;
                let clock = self.device.timing().clock;
                let latency =
                    clock.time_of_cycles(done_at_master) - clock.time_of_cycles(req.arrival);
                self.latency.record(latency);
                if let Some(obs) = &self.obs {
                    obs.latency(latency.as_ps());
                    obs.queue_depth(self.pending_writes.len() as u64);
                }
                return Ok(AccessResult {
                    first_cmd_cycle: req.arrival,
                    done_cycle: done_at_master,
                    bursts: (last_burst - first_burst + 1) as u32,
                });
            }
        }

        // Read-own-write hazard: a read overlapping a buffered write drains
        // the buffer first.
        if req.op == AccessOp::Read
            && self
                .pending_writes
                .iter()
                .any(|&w| w / burst_bytes >= first_burst && w / burst_bytes <= last_burst)
        {
            self.stats.hazard_flushes += 1;
            self.wake(req.arrival)?;
            self.flush_writes(req.arrival)?;
        }

        // Wake the device if the idle policy put it to sleep.
        self.wake(req.arrival)?;

        let mut first_cmd = u64::MAX;
        let mut done = 0u64;
        let mut bursts = 0u32;
        let write = req.op == AccessOp::Write;
        let geometry = *self.device.geometry();
        let bursts_per_page = geometry.page_bytes() as u64 / burst_bytes;
        let burst_words = (burst_bytes / geometry.word_bytes() as u64) as u32;
        let mut burst = first_burst;
        while burst <= last_burst {
            // Row-hit fast path: under the open-page policy, every burst
            // after the first within a page is a guaranteed hit on the row
            // the head burst opened, so the whole page-run is admitted in
            // one pass. Bursts stay on the one-at-a-time path while a
            // forced refresh is pending (the budget test can re-trigger
            // between bursts) or when per-burst observability is attached.
            let fast = self.page_policy == PagePolicy::Open
                && self.obs.is_none()
                && self.busy_until.max(req.arrival) < self.next_forced_refresh;
            if !fast {
                let (f, d) = self.issue_burst(write, burst * burst_bytes, req.arrival)?;
                first_cmd = first_cmd.min(f);
                done = done.max(d);
                bursts += 1;
                burst += 1;
                continue;
            }
            let d = self.decoder.decode(burst * burst_bytes)?;
            match self.device.open_row(d.bank)? {
                Some(row) if row == d.row => {
                    self.stats.row_hits += 1;
                }
                Some(_) => {
                    self.stats.row_conflicts += 1;
                    let (c, _) =
                        self.issue(DramCommand::Precharge { bank: d.bank }, req.arrival)?;
                    first_cmd = first_cmd.min(c);
                    let (c, _) = self.issue(
                        DramCommand::Activate {
                            bank: d.bank,
                            row: d.row,
                        },
                        req.arrival,
                    )?;
                    first_cmd = first_cmd.min(c);
                }
                None => {
                    self.stats.row_misses += 1;
                    let (c, _) = self.issue(
                        DramCommand::Activate {
                            bank: d.bank,
                            row: d.row,
                        },
                        req.arrival,
                    )?;
                    first_cmd = first_cmd.min(c);
                }
            }
            let run = (last_burst - burst + 1).min(bursts_per_page - burst % bursts_per_page);
            let (c, data_end) = self.device.issue_column_run(
                write,
                d.bank,
                d.col,
                burst_words,
                run as u32,
                req.arrival,
            )?;
            first_cmd = first_cmd.min(c);
            done = done.max(data_end);
            // The head burst's outcome was counted above; the rest are hits.
            self.stats.row_hits += run - 1;
            if write {
                self.stats.write_bursts += run;
            } else {
                self.stats.read_bursts += run;
            }
            bursts += run as u32;
            burst += run;
        }
        self.busy_until = self.busy_until.max(done).max(self.device.data_busy_until());
        self.idle_handled_to = self.idle_handled_to.max(self.busy_until);
        // Data crosses the interconnect back to the master.
        let done_at_master = done + self.interconnect.response_ck;
        let clock = self.device.timing().clock;
        let latency = clock.time_of_cycles(done_at_master) - clock.time_of_cycles(req.arrival);
        self.latency.record(latency);
        if let Some(obs) = &self.obs {
            obs.latency(latency.as_ps());
            obs.queue_depth(self.pending_writes.len() as u64);
        }
        Ok(AccessResult {
            first_cmd_cycle: first_cmd,
            done_cycle: done_at_master,
            bursts,
        })
    }

    /// Closes the run at `end_cycle` (≥ the last completion): performs idle
    /// housekeeping up to it and reports time, energy and statistics over
    /// the full horizon.
    pub fn finish(&mut self, end_cycle: u64) -> Result<ChannelReport, CtrlError> {
        self.flush_writes(self.busy_until)?;
        let end = end_cycle.max(self.busy_until);
        self.advance_idle_to(end)?;
        let total = self.device.total_energy_pj(end);
        let bg = self.device.background_energy_pj(end);
        Ok(ChannelReport {
            busy_until: self.busy_until,
            busy_until_time: self.device.time_of_cycle(self.busy_until),
            total_energy_pj: total,
            background_energy_pj: bg,
            event_energy_pj: self.device.event_energy_pj(),
            event_breakdown_pj: self.device.event_breakdown_pj(),
            ctrl: self.stats,
            device: self.device.stats(),
            latency_mean: self.latency.mean(),
            latency_max: self.latency.max(),
            latency_p99: self.latency.quantile(0.99),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RefreshPolicy;
    use mcm_dram::AddressMapping;

    fn ctrl_with(f: impl FnOnce(&mut ControllerConfig)) -> Controller {
        let mut cfg = ControllerConfig::paper_default(400);
        f(&mut cfg);
        Controller::new(&cfg).unwrap()
    }

    fn ctrl() -> Controller {
        ctrl_with(|_| {})
    }

    #[test]
    fn single_burst_read_timing() {
        let mut c = ctrl();
        let t = *c.device().timing();
        let r = c
            .access(ChannelRequest {
                op: AccessOp::Read,
                addr: 0,
                len: 16,
                arrival: 0,
            })
            .unwrap();
        // Request crosses the 1-cycle interconnect, then ACT, RD at +tRCD,
        // data at +CL+BL/2, and one more cycle back to the master.
        assert_eq!(r.first_cmd_cycle, 1);
        assert_eq!(r.done_cycle, 1 + t.t_rcd + t.cl + t.bl_ck + 1);
        assert_eq!(r.bursts, 1);
        assert_eq!(c.stats().row_misses, 1);
    }

    #[test]
    fn sequential_reads_hit_the_open_row() {
        let mut c = ctrl();
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 0,
            len: 256,
            arrival: 0,
        })
        .unwrap();
        let s = c.stats();
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 15);
        assert_eq!(s.read_bursts, 16);
    }

    #[test]
    fn unaligned_request_fetches_covering_bursts() {
        let mut c = ctrl();
        let r = c
            .access(ChannelRequest {
                op: AccessOp::Read,
                addr: 8,
                len: 16, // spans bursts [0,16) and [16,32)
                arrival: 0,
            })
            .unwrap();
        assert_eq!(r.bursts, 2);
    }

    #[test]
    fn empty_request_is_rejected() {
        let mut c = ctrl();
        let err = c
            .access(ChannelRequest {
                op: AccessOp::Read,
                addr: 0,
                len: 0,
                arrival: 0,
            })
            .unwrap_err();
        assert!(matches!(err, CtrlError::EmptyRequest));
    }

    #[test]
    fn arrivals_must_be_monotone() {
        let mut c = ctrl();
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 0,
            len: 16,
            arrival: 100,
        })
        .unwrap();
        let err = c
            .access(ChannelRequest {
                op: AccessOp::Read,
                addr: 16,
                len: 16,
                arrival: 50,
            })
            .unwrap_err();
        assert!(matches!(err, CtrlError::NonMonotonicArrival { .. }));
    }

    #[test]
    fn stall_window_defers_requests_monotonically() {
        let mut c = ctrl();
        // Window: cycles [0, 100) of every 1000 are stalled.
        c.set_stall_window(1000, 100, 0);
        let stalled = c
            .access(ChannelRequest {
                op: AccessOp::Read,
                addr: 0,
                len: 16,
                arrival: 40,
            })
            .unwrap();
        assert_eq!(c.stats().stalls, 1);
        // A healthy controller serves the same request earlier.
        let mut h = ctrl();
        let healthy = h
            .access(ChannelRequest {
                op: AccessOp::Read,
                addr: 0,
                len: 16,
                arrival: 40,
            })
            .unwrap();
        assert_eq!(stalled.done_cycle, healthy.done_cycle + 60);
        // Arrivals outside the window pass through untouched.
        let clear = c
            .access(ChannelRequest {
                op: AccessOp::Read,
                addr: 64,
                len: 16,
                arrival: 500,
            })
            .unwrap();
        assert!(clear.first_cmd_cycle >= 500);
        assert_eq!(c.stats().stalls, 1);
    }

    #[test]
    fn refresh_pressure_divides_the_interval() {
        let mut c = ctrl();
        let base = c.refresh_interval();
        c.set_refresh_pressure(2);
        assert_eq!(c.refresh_interval(), base / 2);
        // A divisor of one (or zero) is a no-op.
        c.set_refresh_pressure(1);
        c.set_refresh_pressure(0);
        assert_eq!(c.refresh_interval(), base / 2);
        // The pressured controller refreshes more over the same idle span.
        let mut h = ctrl();
        for ctl in [&mut c, &mut h] {
            ctl.access(ChannelRequest {
                op: AccessOp::Read,
                addr: 0,
                len: 16,
                arrival: 0,
            })
            .unwrap();
            ctl.access(ChannelRequest {
                op: AccessOp::Read,
                addr: 16,
                len: 16,
                arrival: 20 * base,
            })
            .unwrap();
        }
        let pressured = c.stats().refreshes_idle + c.stats().refreshes_forced;
        let healthy = h.stats().refreshes_idle + h.stats().refreshes_forced;
        assert!(
            pressured > healthy,
            "pressured {pressured} <= healthy {healthy}"
        );
    }

    #[test]
    fn bank_penalty_reaches_the_device() {
        let mut c = ctrl();
        c.set_bank_penalty(0, 4, 2).unwrap();
        assert!(c.set_bank_penalty(1_000, 1, 1).is_err());
        // The degraded controller finishes the same cold read later.
        let mut h = ctrl();
        let slow = c
            .access(ChannelRequest {
                op: AccessOp::Read,
                addr: 0,
                len: 16,
                arrival: 0,
            })
            .unwrap();
        let fast = h
            .access(ChannelRequest {
                op: AccessOp::Read,
                addr: 0,
                len: 16,
                arrival: 0,
            })
            .unwrap();
        assert_eq!(slow.done_cycle, fast.done_cycle + 4);
    }

    #[test]
    fn row_conflict_precharges_and_reactivates() {
        let mut c = ctrl();
        let page = c.device().geometry().page_bytes() as u64;
        let banks = c.device().geometry().banks as u64;
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 0,
            len: 16,
            arrival: 0,
        })
        .unwrap();
        // Same bank (RBC: bank advances per page, wraps after `banks`
        // pages), different row.
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: page * banks,
            len: 16,
            arrival: 1,
        })
        .unwrap();
        let s = c.stats();
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_conflicts, 1);
    }

    #[test]
    fn closed_page_policy_never_conflicts() {
        let mut c = ctrl_with(|cfg| cfg.page_policy = PagePolicy::Closed);
        let page = c.device().geometry().page_bytes() as u64;
        let banks = c.device().geometry().banks as u64;
        for i in 0..4 {
            c.access(ChannelRequest {
                op: AccessOp::Read,
                addr: i * page * banks,
                len: 16,
                arrival: i,
            })
            .unwrap();
        }
        let s = c.stats();
        assert_eq!(s.row_conflicts, 0);
        assert_eq!(s.row_misses, 4);
        assert_eq!(s.row_hits, 0);
    }

    #[test]
    fn open_page_beats_closed_page_on_sequential_traffic() {
        let run = |policy: PagePolicy| {
            let mut c = ctrl_with(|cfg| cfg.page_policy = policy);
            let mut done = 0;
            let r = c
                .access(ChannelRequest {
                    op: AccessOp::Read,
                    addr: 0,
                    len: 4096,
                    arrival: 0,
                })
                .unwrap();
            done = done.max(r.done_cycle);
            done
        };
        assert!(run(PagePolicy::Open) < run(PagePolicy::Closed));
    }

    #[test]
    fn idle_gap_triggers_power_down_and_wakeup() {
        let mut c = ctrl();
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 0,
            len: 16,
            arrival: 0,
        })
        .unwrap();
        let resume = c.busy_until() + 500;
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 16,
            len: 16,
            arrival: resume,
        })
        .unwrap();
        assert_eq!(c.stats().wakeups, 1);
        assert_eq!(c.device().stats().power_downs, 1);
    }

    #[test]
    fn never_policy_stays_awake() {
        let mut c = ctrl_with(|cfg| cfg.power_down = PowerDownPolicy::Never);
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 0,
            len: 16,
            arrival: 0,
        })
        .unwrap();
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 16,
            len: 16,
            arrival: 5_000,
        })
        .unwrap();
        assert_eq!(c.stats().wakeups, 0);
        assert_eq!(c.device().stats().power_downs, 0);
    }

    #[test]
    fn refresshes_catch_up_during_idle() {
        let mut c = ctrl();
        let t_refi = c.device().timing().t_refi;
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 0,
            len: 16,
            arrival: 0,
        })
        .unwrap();
        // Jump forward ten refresh periods.
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 16,
            len: 16,
            arrival: t_refi * 10,
        })
        .unwrap();
        let s = c.stats();
        assert!(
            s.refreshes_idle >= 9,
            "idle refreshes = {}",
            s.refreshes_idle
        );
        assert_eq!(s.refreshes_forced, 0);
    }

    #[test]
    fn sustained_traffic_forces_refreshes() {
        let mut c = ctrl();
        let t_refi = c.device().timing().t_refi;
        // Enough back-to-back traffic to span > (max_postpone+1) tREFI.
        // Each 16B burst takes ~2 cycles; 10 * tREFI cycles of traffic needs
        // about 5 * tREFI bursts.
        let bursts = t_refi * 5;
        let mut addr = 0u64;
        for _ in 0..bursts / 64 {
            c.access(ChannelRequest {
                op: AccessOp::Read,
                addr,
                len: 16 * 64,
                arrival: 0,
            })
            .unwrap();
            addr += 16 * 64;
        }
        assert!(c.stats().refreshes_forced > 0);
    }

    #[test]
    fn refresh_disabled_never_refreshes() {
        let mut c = ctrl_with(|cfg| {
            cfg.refresh = RefreshPolicy {
                enabled: false,
                max_postpone: 8,
            }
        });
        let t_refi = c.device().timing().t_refi;
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 0,
            len: 16,
            arrival: t_refi * 20,
        })
        .unwrap();
        assert_eq!(c.device().stats().refreshes, 0);
    }

    #[test]
    fn brc_is_slower_than_rbc_on_sequential_sweeps() {
        let sweep = |mapping: AddressMapping| {
            let mut c = ctrl_with(|cfg| cfg.mapping = mapping);
            // Sweep 64 KiB = 32 pages: RBC rotates banks, BRC stays in one.
            let r = c
                .access(ChannelRequest {
                    op: AccessOp::Read,
                    addr: 0,
                    len: 65_536,
                    arrival: 0,
                })
                .unwrap();
            r.done_cycle
        };
        let rbc = sweep(AddressMapping::Rbc);
        let brc = sweep(AddressMapping::Brc);
        assert!(rbc < brc, "RBC {rbc} should beat BRC {brc}");
    }

    #[test]
    fn finish_reports_energy_and_time() {
        let mut c = ctrl();
        c.access(ChannelRequest {
            op: AccessOp::Write,
            addr: 0,
            len: 1024,
            arrival: 0,
        })
        .unwrap();
        let report = c.finish(100_000).unwrap();
        assert!(report.total_energy_pj > 0.0);
        assert!(report.background_energy_pj > 0.0);
        assert!(report.event_energy_pj > 0.0);
        assert!(
            (report.total_energy_pj - report.background_energy_pj - report.event_energy_pj).abs()
                < 1e-6
        );
        assert_eq!(report.ctrl.write_bursts, 64);
        assert!(report.busy_until > 0);
    }

    #[test]
    fn power_down_during_long_tail_reduces_energy() {
        let horizon = 2_000_000; // 5 ms at 400 MHz
        let run = |policy: PowerDownPolicy| {
            let mut c = ctrl_with(|cfg| cfg.power_down = policy);
            c.access(ChannelRequest {
                op: AccessOp::Read,
                addr: 0,
                len: 4096,
                arrival: 0,
            })
            .unwrap();
            c.finish(horizon).unwrap().total_energy_pj
        };
        let with_pd = run(PowerDownPolicy::immediate());
        let without = run(PowerDownPolicy::Never);
        assert!(
            with_pd < without * 0.5,
            "power-down should cut idle energy: {with_pd} vs {without}"
        );
    }
}

#[cfg(test)]
mod self_refresh_tests {
    use super::*;
    use mcm_dram::TraceValidator;

    fn deep_ctrl() -> Controller {
        let mut cfg = ControllerConfig::paper_default(400);
        cfg.power_down = PowerDownPolicy::PowerDownThenSelfRefresh {
            pd_after: 1,
            sr_after: 10_000,
        };
        Controller::new(&cfg).unwrap()
    }

    fn touch(ctrl: &mut Controller, addr: u64, arrival: u64) {
        ctrl.access(ChannelRequest {
            op: AccessOp::Read,
            addr,
            len: 16,
            arrival,
        })
        .unwrap();
    }

    #[test]
    fn long_idle_escalates_to_self_refresh() {
        let mut c = deep_ctrl();
        c.enable_trace();
        touch(&mut c, 0, 0);
        // A gap far beyond the SR threshold.
        touch(&mut c, 64, 2_000_000);
        let s = c.stats();
        assert_eq!(s.sr_entries, 1);
        assert!(s.wakeups >= 1);
        assert_eq!(c.device().stats().self_refreshes, 1);
        // And the whole command trace is legal under the oracle.
        let validator = TraceValidator::new(*c.device().timing(), *c.device().geometry());
        let trace = c.device().trace().unwrap();
        assert!(validator.check(trace).is_empty());
    }

    #[test]
    fn short_idle_stays_in_power_down() {
        let mut c = deep_ctrl();
        touch(&mut c, 0, 0);
        touch(&mut c, 64, 5_000); // below the 10k SR threshold
        assert_eq!(c.stats().sr_entries, 0);
        // One PD at idle onset plus a re-entry after the mid-gap refresh.
        assert_eq!(c.device().stats().power_downs, 2);
    }

    #[test]
    fn self_refresh_suspends_refresh_obligations() {
        let plain = {
            let mut c = Controller::new(&ControllerConfig::paper_default(400)).unwrap();
            touch(&mut c, 0, 0);
            touch(&mut c, 64, 4_000_000); // ~1280 tREFI periods
            c.device().stats().refreshes
        };
        let deep = {
            let mut c = deep_ctrl();
            touch(&mut c, 0, 0);
            touch(&mut c, 64, 4_000_000);
            c.device().stats().refreshes
        };
        // In self-refresh the controller issues almost no REF commands; the
        // plain policy must catch up on every matured obligation.
        assert!(plain > 1_000, "plain issued {plain}");
        assert!(deep < 20, "deep issued {deep}");
    }

    #[test]
    fn self_refresh_saves_energy_on_long_idle() {
        let horizon = 40_000_000; // 100 ms at 400 MHz
        let energy = |policy: PowerDownPolicy| {
            let mut cfg = ControllerConfig::paper_default(400);
            cfg.power_down = policy;
            let mut c = Controller::new(&cfg).unwrap();
            touch(&mut c, 0, 0);
            c.finish(horizon).unwrap().total_energy_pj
        };
        let pd = energy(PowerDownPolicy::immediate());
        let sr = energy(PowerDownPolicy::PowerDownThenSelfRefresh {
            pd_after: 1,
            sr_after: 1_000,
        });
        assert!(
            sr < pd * 0.9,
            "self-refresh should beat power-down + refresh bursts: {sr} vs {pd}"
        );
    }

    #[test]
    fn wake_from_self_refresh_pays_txsr() {
        let mut c = deep_ctrl();
        touch(&mut c, 0, 0);
        let t_xsr = c.device().timing().t_xsr;
        let arrival = 2_000_000;
        let r = c
            .access(ChannelRequest {
                op: AccessOp::Read,
                addr: 64,
                len: 16,
                arrival,
            })
            .unwrap();
        // SRX at arrival (or shortly after), then tXSR before the ACT.
        assert!(
            r.first_cmd_cycle >= arrival + t_xsr,
            "first cmd {} vs arrival {} + tXSR {}",
            r.first_cmd_cycle,
            arrival,
            t_xsr
        );
    }
}

#[cfg(test)]
mod write_batching_tests {
    use super::*;
    use crate::config::WritePolicy;
    use mcm_dram::TraceValidator;

    fn batched(depth: u32) -> Controller {
        let mut cfg = ControllerConfig::paper_default(400);
        cfg.write_policy = WritePolicy::Batched(depth);
        Controller::new(&cfg).unwrap()
    }

    #[test]
    fn posted_writes_complete_immediately_and_drain_in_batches() {
        let mut c = batched(8);
        c.enable_trace();
        for i in 0..7u64 {
            let r = c
                .access(ChannelRequest {
                    op: AccessOp::Write,
                    addr: i * 16,
                    len: 16,
                    arrival: i,
                })
                .unwrap();
            // Posted ack: arrival + interconnect response.
            assert_eq!(r.done_cycle, i + 1 + 1);
        }
        assert_eq!(c.device().stats().writes, 0, "nothing drained yet");
        // The eighth write fills the buffer and triggers the drain.
        c.access(ChannelRequest {
            op: AccessOp::Write,
            addr: 7 * 16,
            len: 16,
            arrival: 7,
        })
        .unwrap();
        assert_eq!(c.device().stats().writes, 8);
        assert_eq!(c.stats().write_flushes, 1);
        // And the executed trace is legal.
        let v = TraceValidator::new(*c.device().timing(), *c.device().geometry());
        assert!(v.check(c.device().trace().unwrap()).is_empty());
    }

    #[test]
    fn read_own_write_hazard_flushes_first() {
        let mut c = batched(32);
        c.access(ChannelRequest {
            op: AccessOp::Write,
            addr: 256,
            len: 16,
            arrival: 0,
        })
        .unwrap();
        assert_eq!(c.device().stats().writes, 0);
        // Read of an unrelated address: no flush needed.
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 4096,
            len: 16,
            arrival: 1,
        })
        .unwrap();
        assert_eq!(c.stats().hazard_flushes, 0);
        // Read of the buffered address: the write must drain first.
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 256,
            len: 16,
            arrival: 2,
        })
        .unwrap();
        assert_eq!(c.stats().hazard_flushes, 1);
        assert_eq!(c.device().stats().writes, 1);
    }

    #[test]
    fn idle_gap_drains_the_buffer_before_power_down() {
        let mut c = batched(32);
        c.access(ChannelRequest {
            op: AccessOp::Write,
            addr: 0,
            len: 64,
            arrival: 0,
        })
        .unwrap();
        // A later arrival forces the idle path: the buffer must drain and
        // only then may the device power down.
        c.access(ChannelRequest {
            op: AccessOp::Read,
            addr: 1 << 20,
            len: 16,
            arrival: 50_000,
        })
        .unwrap();
        assert_eq!(c.device().stats().writes, 4);
        assert!(c.device().stats().power_downs >= 1);
    }

    #[test]
    fn batching_beats_in_order_on_alternating_traffic() {
        let run = |policy: WritePolicy| {
            let mut cfg = ControllerConfig::paper_default(400);
            cfg.write_policy = policy;
            let mut c = Controller::new(&cfg).unwrap();
            // Alternating read/write bursts to different buffers — the
            // preprocess-stage pattern that is turnaround-bound in order.
            let mut last = 0;
            for i in 0..2_000u64 {
                let (op, addr) = if i % 2 == 0 {
                    (AccessOp::Read, i / 2 * 16)
                } else {
                    (AccessOp::Write, (1 << 22) + i / 2 * 16)
                };
                let r = c
                    .access(ChannelRequest {
                        op,
                        addr,
                        len: 16,
                        arrival: 0,
                    })
                    .unwrap();
                last = last.max(r.done_cycle);
            }
            // Drain anything still posted.
            c.finish(0).unwrap();
            c.busy_until()
        };
        let in_order = run(WritePolicy::Immediate);
        let batched = run(WritePolicy::Batched(32));
        assert!(
            (batched as f64) < in_order as f64 * 0.75,
            "batched {batched} should clearly beat in-order {in_order}"
        );
    }
}
