//! # mcm-cli — command-line interface to the `mcmem` simulator
//!
//! The `mcm` binary exposes the reproduction harness and ad-hoc experiment
//! runs without writing Rust:
//!
//! ```console
//! $ mcm repro                       # every paper table and figure
//! $ mcm fig3                        # one table/figure at a time
//! $ mcm run --format 1080p30 --channels 4 --clock 400
//! $ mcm run --format 720p60 --channels 2 --clock 333 --mapping brc --json
//! $ mcm headroom --format 2160p30 --channels 8 --clock 400
//! ```
//!
//! Argument parsing is hand-rolled (the workspace is dependency-minimal);
//! [`parse_args`] turns an argument list into a [`Command`], and
//! [`execute`] runs it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod args;
mod commands;

pub use args::{parse_args, CliError, Command, OutputFormat, RunOptions, ServeArgs};
pub use commands::execute;
