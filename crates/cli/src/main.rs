//! The `mcm` binary: see `mcm help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match mcm_cli::parse_args(args.iter().map(String::as_str)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("mcm: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mcm_cli::execute(&cmd) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mcm: {e}");
            ExitCode::FAILURE
        }
    }
}
