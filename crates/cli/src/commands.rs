//! Command execution for the `mcm` binary.

use mcm_core::{analysis, figures, CoreError, Experiment};
use mcm_load::UseCase;
use mcm_sweep::ParallelRunner;

use crate::args::{
    CliError, Command, ExecutorArg, FaultArgs, OutputFormat, ReportArgs, RunOptions, ServeArgs,
    SweepArgs, USAGE,
};

fn build_experiment(o: &RunOptions) -> Experiment {
    let mut exp = Experiment::paper(o.point, o.channels, o.clock_mhz);
    if o.viewfinder {
        exp.use_case = UseCase::viewfinder(o.point);
    }
    exp.memory.controller.mapping = o.mapping;
    exp.memory.controller.page_policy = o.page;
    exp.memory.controller.power_down = o.power_down;
    exp.memory.granule_bytes = o.granule;
    exp.chunk = o.chunk;
    exp.pacing = o.pacing;
    exp.workload = o.workload;
    if let Some(n) = o.op_limit {
        exp.op_limit = Some(n);
    }
    exp
}

/// Loads and validates the `--faults <plan.json>` file, when given.
fn load_fault_plan(o: &RunOptions) -> Result<Option<mcm_fault::FaultPlan>, CliError> {
    let Some(path) = &o.faults else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read fault plan '{path}': {e}")))?;
    let plan: mcm_fault::FaultPlan = serde_json::from_str(&text)
        .map_err(|e| CliError(format!("bad fault plan '{path}': {e}")))?;
    plan.validate(o.channels).map_err(|e| {
        CliError(format!(
            "fault plan '{path}' does not fit {} channel(s): {e}",
            o.channels
        ))
    })?;
    Ok(Some(plan))
}

/// Commands that run the healthy single-frame engine reject `--faults`
/// loudly instead of silently ignoring the plan.
fn reject_faults(o: &RunOptions, what: &str) -> Result<(), CliError> {
    if o.faults.is_some() {
        return Err(CliError(format!(
            "--faults is not supported by 'mcm {what}' (use 'mcm run' or 'mcm check')"
        )));
    }
    Ok(())
}

/// Cap on simulated operations when a trace-keeping verified run has no
/// explicit op limit: full frames are millions of commands and the trace
/// must stay in memory for the audit.
const VERIFY_OP_LIMIT: u64 = 50_000;

fn run_one(o: &RunOptions) -> Result<String, CliError> {
    let sim_err = |e: CoreError| CliError(format!("simulation failed: {e}"));
    let mut exp = build_experiment(o);
    let faults = load_fault_plan(o)?;
    // Refuse statically-broken healthy configs before burning simulation
    // time: the analyzer's error findings are sound for healthy runs, but
    // a fault plan's degradation policy may shed load and rescue the point.
    if faults.is_none() {
        let verdict = mcm_analyze::verdict(&exp);
        if let Some(reason) = verdict.reason() {
            return Err(CliError(format!(
                "statically infeasible, refusing to simulate: {reason}\n\
                 (see 'mcm lint' for the full analysis)"
            )));
        }
    }
    let run = mcm_core::RunOptions {
        verify: o.verify,
        faults,
        execution: o.execution,
        ..mcm_core::RunOptions::default()
    };
    let (r, findings) = if o.verify {
        // Keep the command traces bounded; the access time is extrapolated
        // from the simulated prefix either way.
        if exp.op_limit.is_none() {
            exp.op_limit = Some(VERIFY_OP_LIMIT);
        }
        let (r, findings) = exp
            .run_with(&run)
            .map_err(sim_err)?
            .into_verified()
            .expect("verified outcome");
        (r, Some(findings))
    } else {
        let r = exp
            .run_with(&run)
            .map_err(sim_err)?
            .into_frame()
            .expect("single-frame outcome");
        (r, None)
    };
    if o.output == OutputFormat::Json {
        let p99 = r
            .report
            .channels
            .iter()
            .filter_map(|c| c.latency_p99)
            .max()
            .map(|t| t.as_ns_f64());
        let mut j = serde_json::json!({
            "format": o.point.to_string(),
            "channels": o.channels,
            "clock_mhz": o.clock_mhz,
            "access_time_ms": r.access_time.as_ms_f64(),
            "frame_budget_ms": r.frame_budget.as_ms_f64(),
            "verdict": r.verdict.to_string(),
            "core_power_mw": r.power.core_mw,
            "interface_power_mw": r.power.interface_mw,
            "total_power_mw": r.power.total_mw(),
            "efficiency": r.efficiency(),
            "peak_bandwidth_gbps": r.peak_bandwidth_bytes_per_s / 1e9,
            "achieved_bandwidth_gbps": r.achieved_bandwidth_bytes_per_s() / 1e9,
            "latency_p99_ns": p99,
            "bytes_per_frame": r.planned_bytes,
        });
        if !o.workload.is_default() {
            if let serde_json::Value::Object(m) = &mut j {
                m.insert(
                    "workload".to_string(),
                    serde_json::Value::String(o.workload.name()),
                );
            }
        }
        if let Some(findings) = &findings {
            if let serde_json::Value::Object(m) = &mut j {
                m.insert("verify".to_string(), findings.to_json());
            }
        }
        if let Some(d) = &r.degrade {
            if let serde_json::Value::Object(m) = &mut j {
                m.insert(
                    "degrade".to_string(),
                    serde_json::to_value(d).expect("degrade summary serializes"),
                );
            }
        }
        Ok(j.to_string())
    } else {
        let mut out = String::new();
        out += &format!(
            "{} on {} ch x 32-bit mobile DDR @ {} MHz ({}, {}, {})\n",
            o.point, o.channels, o.clock_mhz, o.mapping, o.page, o.power_down
        );
        if o.workload.is_default() {
            let row = UseCase::hd(o.point).table_row();
            out += &format!(
                "  load:        {:.2} GB/s ({:.0} Mb/frame)\n",
                row.gbytes_per_second(),
                row.bits_per_frame() as f64 / 1e6
            );
        } else {
            // Non-default workloads report the model's own sustained
            // demand instead of the pinned Table I figure.
            let model = exp.model();
            out += &format!(
                "  workload:    {} ({:.2} GB/s sustained)\n",
                model.name(),
                model.bits_per_second() as f64 / 8e9
            );
        }
        out += &format!(
            "  access time: {:.2} ms of {:.2} ms budget [{}]\n",
            r.access_time.as_ms_f64(),
            r.frame_budget.as_ms_f64(),
            r.verdict
        );
        out += &format!(
            "  bandwidth:   {:.1} / {:.1} GB/s ({:.0}% efficiency)\n",
            r.achieved_bandwidth_bytes_per_s() / 1e9,
            r.peak_bandwidth_bytes_per_s / 1e9,
            r.efficiency() * 100.0
        );
        out += &format!("  power:       {}\n", r.power);
        if let Some(d) = &r.degrade {
            out += &format!(
                "  degraded:    lost channel(s) {:?}, {} of {} surviving\n",
                d.lost_channels, d.surviving_channels, o.channels
            );
            out += &format!(
                "  effective:   {:.1} of {} fps{}\n",
                d.effective_fps,
                d.nominal_fps,
                if d.holds_frame_rate() {
                    ""
                } else {
                    " (below real time)"
                }
            );
            if d.shed_bytes > 0 {
                let stages: Vec<&str> = d.shed.iter().map(|s| s.stage.as_str()).collect();
                out += &format!(
                    "  shed:        {:.1} MB over {} stage(s): {}\n",
                    d.shed_bytes as f64 / 1e6,
                    d.shed.len(),
                    stages.join(", ")
                );
            }
            if d.flaky_hits + d.retries + d.remaps > 0 {
                out += &format!(
                    "  recovery:    {} flaky hit(s), {} retried, {} remapped\n",
                    d.flaky_hits, d.retries, d.remaps
                );
            }
        }
        if let Some(findings) = &findings {
            out += "verify:\n";
            for line in findings.render_human().lines() {
                out += &format!("  {line}\n");
            }
        }
        Ok(out)
    }
}

fn run_headroom(o: &RunOptions) -> Result<String, CoreError> {
    let exp = build_experiment(o);
    let fps = analysis::max_sustainable_fps(&exp)?;
    Ok(match fps {
        Some(f) => format!(
            "{} x {} ch @ {} MHz sustains up to {f} fps (real time with 15% margin)\n",
            o.point.format(),
            o.channels,
            o.clock_mhz
        ),
        None => format!(
            "{} x {} ch @ {} MHz cannot sustain real-time recording\n",
            o.point.format(),
            o.channels,
            o.clock_mhz
        ),
    })
}

/// Executes a parsed command, returning the text to print.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    let sim_err = |e: CoreError| CliError(format!("simulation failed: {e}"));
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Table1 => Ok(figures::render_table1(&figures::table1_data())),
        Command::Table2 => Ok([2u32, 4, 8]
            .iter()
            .map(|&c| figures::render_table2(c))
            .collect::<Vec<_>>()
            .join("\n")),
        Command::Fig3 => {
            let d = figures::fig3_data_with(&ParallelRunner::new()).map_err(sim_err)?;
            Ok(figures::render_fig3(&d))
        }
        Command::Fig4 => {
            let d = figures::format_grid_data_with(&ParallelRunner::new()).map_err(sim_err)?;
            Ok(figures::render_fig4(&d))
        }
        Command::Fig5 => {
            let d = figures::format_grid_data_with(&ParallelRunner::new()).map_err(sim_err)?;
            Ok(figures::render_fig5(&d))
        }
        Command::Xdr => {
            let d = figures::xdr_data_with(&ParallelRunner::new()).map_err(sim_err)?;
            Ok(figures::render_xdr(&d))
        }
        Command::Repro => {
            let runner = ParallelRunner::new();
            let mut out = String::new();
            out += &figures::render_table1(&figures::table1_data());
            out += "\n";
            out += &figures::render_table2(4);
            out += "\n";
            let f3 = figures::fig3_data_with(&runner).map_err(sim_err)?;
            out += &figures::render_fig3(&f3);
            let grid = figures::format_grid_data_with(&runner).map_err(sim_err)?;
            out += "\n";
            out += &figures::render_fig4(&grid);
            out += "\n";
            out += &figures::render_fig5(&grid);
            out += "\n";
            let xdr = figures::xdr_data_with(&runner).map_err(sim_err)?;
            out += &figures::render_xdr(&xdr);
            Ok(out)
        }
        Command::Run(o) => run_one(o),
        Command::Headroom(o) => {
            reject_faults(o, "headroom")?;
            run_headroom(o).map_err(sim_err)
        }
        Command::Steady { options, frames } => {
            reject_faults(options, "steady")?;
            run_steady(options, *frames).map_err(sim_err)
        }
        Command::Profile(o) => {
            reject_faults(o, "profile")?;
            let exp = build_experiment(o);
            let p = mcm_core::profile::run_profiled(&exp).map_err(sim_err)?;
            Ok(p.render())
        }
        Command::Timeline { options, cycles } => {
            reject_faults(options, "timeline")?;
            timeline(options, *cycles)
        }
        Command::Datasheet { device, clock_mhz } => {
            let cfg = match device.as_str() {
                "mobile" => mcm_dram::ClusterConfig::next_gen_mobile_ddr(*clock_mhz),
                "ddr2" => mcm_dram::ClusterConfig::standard_ddr2(*clock_mhz),
                "future" => mcm_dram::ClusterConfig::future_lpddr2(*clock_mhz),
                "large" => mcm_dram::ClusterConfig::large_capacity_mobile_ddr(*clock_mhz),
                other => {
                    return Err(CliError(format!(
                        "unknown device '{other}' (expected mobile, ddr2, future or large)"
                    )))
                }
            };
            mcm_dram::datasheet::render_datasheet(&cfg)
                .map_err(|e| CliError(format!("datasheet: {e}")))
        }
        Command::ConfigDump(o) => {
            reject_faults(o, "config-dump")?;
            let exp = build_experiment(o);
            serde_json::to_string_pretty(&exp)
                .map(|mut s| {
                    s.push('\n');
                    s
                })
                .map_err(|e| CliError(format!("serialization failed: {e}")))
        }
        Command::ConfigRun { path } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read '{path}': {e}")))?;
            let exp: Experiment = serde_json::from_str(&text)
                .map_err(|e| CliError(format!("bad experiment config: {e}")))?;
            let r = exp
                .run_with(&mcm_core::RunOptions::default())
                .map_err(sim_err)?
                .into_frame()
                .expect("single-frame outcome");
            Ok(format!(
                "access time {:.2} ms of {:.2} ms [{}], {}\n",
                r.access_time.as_ms_f64(),
                r.frame_budget.as_ms_f64(),
                r.verdict,
                r.power
            ))
        }
        Command::TraceDump { options, out } => {
            reject_faults(options, "trace-dump")?;
            trace_dump(options, out)
        }
        Command::TraceRun { options, input } => {
            reject_faults(options, "trace-run")?;
            trace_run(options, input)
        }
        Command::Check(o) => run_check(o),
        Command::Lint(o) => run_lint(o),
        Command::Sweep(a) => run_sweep_cmd(a),
        Command::Report(a) => {
            reject_faults(&a.options, "report")?;
            run_report(a)
        }
        Command::Bench(a) => run_bench_cmd(a),
        Command::Fault(a) => run_fault(a),
        Command::Serve(a) => run_serve(a),
    }
}

/// `mcm serve`: bind the HTTP/JSON service and handle requests until a
/// `POST /shutdown` arrives. The bound address is printed up front (and
/// flushed) so scripts using an ephemeral port can discover it.
fn run_serve(a: &ServeArgs) -> Result<String, CliError> {
    use std::io::Write;

    let config = mcm_serve::ServeConfig {
        addr: a.addr.clone(),
        store_dir: std::path::PathBuf::from(&a.store),
        max_jobs: a.jobs,
        threads: a.threads,
    };
    let server = mcm_serve::Server::bind(config).map_err(|e| CliError(format!("serve: {e}")))?;
    println!("mcm serve listening on http://{}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| CliError(format!("serve: {e}")))?;
    Ok("mcm serve: shut down cleanly\n".to_string())
}

/// `mcm fault`: build a deterministic fault plan — the seeded mixed
/// scenario, or an explicit channel-loss list with `--lose` — validate it
/// against the channel count, then describe it, print it as JSON or write
/// it to a file for `mcm run --faults <plan.json>`.
fn run_fault(a: &FaultArgs) -> Result<String, CliError> {
    use mcm_fault::{DegradePolicy, FaultPlan, FaultSpec};

    let plan = if a.lose.is_empty() {
        FaultPlan::seeded(a.seed, a.channels)
            .map_err(|e| CliError(format!("cannot build plan: {e}")))?
    } else {
        FaultPlan {
            seed: a.seed,
            faults: a
                .lose
                .iter()
                .map(|&channel| FaultSpec::ChannelLoss { channel })
                .collect(),
            policy: DegradePolicy::default(),
        }
    };
    plan.validate(a.channels).map_err(|e| {
        CliError(format!(
            "plan is invalid for {} channel(s): {e}",
            a.channels
        ))
    })?;
    let json = serde_json::to_string_pretty(&plan)
        .map(|mut s| {
            s.push('\n');
            s
        })
        .map_err(|e| CliError(format!("plan serialization failed: {e}")))?;
    if let Some(path) = &a.out {
        std::fs::write(path, &json).map_err(|e| CliError(format!("cannot write '{path}': {e}")))?;
        return Ok(format!(
            "wrote fault plan (seed {:#x}, {} fault(s)) to {path}\n",
            plan.seed,
            plan.faults.len()
        ));
    }
    Ok(if a.output == OutputFormat::Json {
        json
    } else {
        plan.describe()
    })
}

/// `mcm report`: run one experiment with a [`mcm_obs::StatsRecorder`]
/// attached and print what it saw — per-channel command counters, latency
/// and queue-depth percentiles, bandwidth/energy timelines, kernel stats
/// and spans — as text, JSON, CSV or Chrome `trace_event` JSON.
fn run_report(a: &ReportArgs) -> Result<String, CliError> {
    use mcm_obs::{ObsConfig, StatsRecorder};

    let exp = build_experiment(&a.options);
    let config = ObsConfig {
        timeline_bucket_ps: a.timeline_bucket_us * 1_000_000,
        ..ObsConfig::default()
    };
    let rec = std::sync::Arc::new(StatsRecorder::with_config(config));
    let run = mcm_core::RunOptions {
        op_limit: a.op_limit,
        ..mcm_core::RunOptions::default()
    }
    .with_recorder(rec.clone());
    exp.run_with(&run)
        .map_err(|e| CliError(format!("simulation failed: {e}")))?;

    let report = rec.report();
    Ok(match a.output {
        OutputFormat::Json => report.to_json() + "\n",
        OutputFormat::Csv => report.to_csv(),
        OutputFormat::Trace => report.to_chrome_trace() + "\n",
        OutputFormat::Text => {
            let o = &a.options;
            let mut out = format!(
                "observed {} on {} ch x 32-bit mobile DDR @ {} MHz ({}, {}, {})\n\n",
                o.point, o.channels, o.clock_mhz, o.mapping, o.page, o.power_down
            );
            out += &report.render_text();
            if a.histogram {
                for ch in &report.channels {
                    out += &render_latency_buckets(ch.channel, &rec.latency_buckets(ch.channel));
                }
            }
            out
        }
    })
}

/// The raw latency distribution behind the percentile summary: one row per
/// non-empty log bucket with a `#` bar scaled to the fullest bucket.
fn render_latency_buckets(channel: u32, buckets: &[(u64, u64, u64)]) -> String {
    if buckets.is_empty() {
        return String::new();
    }
    let peak = buckets.iter().map(|&(_, _, n)| n).max().unwrap_or(1);
    let mut out = format!("\nlatency histogram, channel {channel} (ns):\n");
    for &(lo, hi, n) in buckets {
        let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
        out += &format!(
            "  [{:>9.1}, {:>9.1}]  {:>8}  {bar}\n",
            lo as f64 / 1e3,
            hi as f64 / 1e3,
            n
        );
    }
    out
}

/// `mcm sweep`: expand the requested grid, execute it on the parallel
/// engine (optionally against a content-hash result cache) and render a
/// table, JSON or CSV.
fn run_bench_cmd(a: &crate::args::BenchArgs) -> Result<String, CliError> {
    use mcm_bench::perf;

    let mut cfg = if a.quick {
        perf::BenchConfig::quick()
    } else {
        perf::BenchConfig::full()
    };
    if let Some(repeats) = a.repeats {
        cfg = cfg.with_repeats(repeats);
    }
    cfg = cfg.with_execution(a.execution);
    let report = perf::run_bench(&cfg).map_err(|e| CliError(format!("bench failed: {e}")))?;
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| CliError(format!("bench report serialization failed: {e}")))?;
    std::fs::write(&a.out, json + "\n")
        .map_err(|e| CliError(format!("cannot write '{}': {e}", a.out)))?;
    let mut out = perf::render_text(&report);
    out += &format!("\nreport written to {}\n", a.out);
    if let Some(path) = &a.baseline {
        let baseline_json = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("cannot read baseline '{path}': {e}")))?;
        let baseline: perf::BenchReport = serde_json::from_str(&baseline_json)
            .map_err(|e| CliError(format!("baseline '{path}' is not a bench report: {e}")))?;
        perf::check_regression(&report, &baseline, perf::REGRESSION_TOLERANCE)
            .map_err(|e| CliError(format!("throughput regression vs '{path}': {e}")))?;
        out += &format!(
            "no headline regression beyond {:.0}% vs {path}\n",
            perf::REGRESSION_TOLERANCE * 100.0
        );
    }
    Ok(out)
}

fn run_sweep_cmd(a: &SweepArgs) -> Result<String, CliError> {
    if !a.merge.is_empty() {
        return run_sweep_merge(a);
    }
    let spec = mcm_sweep::SweepSpec {
        points: a.points.clone(),
        channels: a.channels.clone(),
        clocks_mhz: a.clocks.clone(),
        workloads: a.workloads.clone(),
        op_limit: a.op_limit,
        ..mcm_sweep::SweepSpec::default()
    };
    let mut options = mcm_sweep::SweepOptions {
        threads: a.threads,
        cache_dir: a.cache.as_ref().map(std::path::PathBuf::from),
        progress: a.progress,
        prelint: a.prelint,
        ..mcm_sweep::SweepOptions::default()
    }
    .with_execution(a.execution);
    // `--checkpoint` creates-or-extends, `--resume` insists the log is
    // already there; both bind the log to the *full* spec, so a sharded
    // run shares one log with its siblings.
    let log = match (&a.checkpoint, &a.resume) {
        (Some(path), None) => Some((path, false)),
        (None, Some(path)) => Some((path, true)),
        _ => None,
    };
    if let Some((path, must_exist)) = log {
        let log = mcm_sweep::CheckpointLog::attach(path, &spec, &a.execution, must_exist)
            .map_err(|e| CliError(e.to_string()))?;
        options = options.with_checkpoint(log);
    }
    let executor = sweep_executor(a)?;
    if let Some((index, of)) = a.shard {
        if a.output != OutputFormat::Json {
            return Err(CliError(
                "--shard writes a JSON shard document: add --json (merge with --merge)".into(),
            ));
        }
        let shard = mcm_sweep::run_sweep_shard_on(&*executor, &spec, index, of, &options)
            .map_err(|e| CliError(e.to_string()))?;
        return Ok(shard.to_json() + "\n");
    }
    let result = mcm_sweep::run_sweep_on(&*executor, &spec, &options)
        .map_err(|e| CliError(e.to_string()))?;
    match a.output {
        OutputFormat::Json => Ok(result.to_json() + "\n"),
        OutputFormat::Csv => Ok(result.to_csv()),
        // The parser refuses --trace for sweep; Text is the fallback.
        OutputFormat::Text | OutputFormat::Trace => {
            let mut out = format!(
                "{:<28} {:>4} {:>6} {:>10} {:>10} {:>9} {:>10}\n",
                "point", "ch", "MHz", "access ms", "budget ms", "verdict", "power mW"
            );
            for p in &result.points {
                let coord = format!("{:<28} {:>4} {:>6}", p.label, p.channels, p.clock_mhz);
                match &p.outcome {
                    Ok(r) if r.feasible => {
                        out += &format!(
                            "{coord} {:>10.2} {:>10.2} {:>9} {:>10.1}\n",
                            r.access_ms.unwrap_or(0.0),
                            r.budget_ms.unwrap_or(0.0),
                            r.verdict.as_deref().unwrap_or("-"),
                            r.total_mw().unwrap_or(0.0),
                        );
                    }
                    Ok(r) => {
                        out += &format!(
                            "{coord} {:>10} {:>10} {:>9} {:>10}   ({})\n",
                            "-",
                            "-",
                            "infeas",
                            "-",
                            r.infeasible_reason.as_deref().unwrap_or("does not fit"),
                        );
                    }
                    Err(e) => {
                        out += &format!("{coord}   FAILED: {e}\n");
                    }
                }
            }
            out += &format!("\n{}\n", result.stats);
            Ok(out)
        }
    }
}

/// `mcm sweep --merge <files...>`: recombine shard result files into the
/// output the unsharded run would have produced, byte for byte.
fn run_sweep_merge(a: &SweepArgs) -> Result<String, CliError> {
    if a.shard.is_some() {
        return Err(CliError(
            "--merge and --shard are exclusive: merge recombines finished shard files".into(),
        ));
    }
    let docs = a
        .merge
        .iter()
        .map(|path| {
            std::fs::read_to_string(path)
                .map(|text| (path.clone(), text))
                .map_err(|e| CliError(format!("cannot read shard file '{path}': {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let merged = mcm_sweep::merge_shards(&docs).map_err(|e| CliError(e.to_string()))?;
    match a.output {
        OutputFormat::Json => Ok(merged.to_json() + "\n"),
        OutputFormat::Csv => Ok(merged.to_csv()),
        OutputFormat::Text | OutputFormat::Trace => Err(CliError(
            "mcm sweep --merge writes machine output: add --json or --csv".into(),
        )),
    }
}

/// The executor `--executor` selects: the in-process rayon pool, or a
/// [`ServeExecutor`](mcm_serve::ServeExecutor) over remote workers.
fn sweep_executor(a: &SweepArgs) -> Result<Box<dyn mcm_sweep::Executor>, CliError> {
    match &a.executor {
        ExecutorArg::Local => Ok(Box::new(mcm_sweep::RayonExecutor::default())),
        ExecutorArg::Serve(addrs) => Ok(Box::new(
            mcm_serve::ServeExecutor::connect(addrs).map_err(|e| CliError(e.to_string()))?,
        )),
    }
}

/// `mcm check`: config lints, cross-channel invariants and a bounded
/// simulated trace audit. Error findings make the command itself fail,
/// so scripts get a non-zero exit; the full report is in the error text.
fn run_check(o: &RunOptions) -> Result<String, CliError> {
    let mut findings = check_findings(o)?;
    findings.sort_by_severity();
    let out = if o.output == OutputFormat::Json {
        let mut j = serde_json::json!({
            "format": o.point.to_string(),
            "channels": o.channels,
            "clock_mhz": o.clock_mhz,
            "rules_checked": mcm_verify::rule_catalogue().len(),
        });
        if let serde_json::Value::Object(m) = &mut j {
            m.insert("check".to_string(), findings.to_json());
        }
        let mut s = j.to_string();
        s.push('\n');
        s
    } else {
        let mut s = format!(
            "mcm check: {} on {} ch @ {} MHz ({}, {}, {}; {} rules)\n",
            o.point,
            o.channels,
            o.clock_mhz,
            o.mapping,
            o.page,
            o.power_down,
            mcm_verify::rule_catalogue().len()
        );
        s += &findings.render_human();
        s
    };
    if findings.has_errors() {
        Err(CliError(out))
    } else {
        Ok(out)
    }
}

/// `mcm lint`: the purely static passes — configuration-structure lints
/// (`MCM1xx`) plus the feasibility analysis (`MCM4xx`) — with no
/// simulation at all. Error findings make the command fail so scripts get
/// a non-zero exit; every finding carries its machine-readable witness in
/// the JSON output.
fn run_lint(o: &RunOptions) -> Result<String, CliError> {
    reject_faults(o, "lint")?;
    let exp = build_experiment(o);
    let mut findings = mcm_verify::lint_all(&exp.use_case, &exp.memory, &exp.interface);
    findings.merge(mcm_analyze::analyze_experiment(&exp));
    findings.sort_by_severity();
    let rules_checked = mcm_verify::config::CONFIG_RULES.len() + mcm_analyze::ANALYZE_RULES.len();
    let out = if o.output == OutputFormat::Json {
        let mut j = serde_json::json!({
            "format": o.point.to_string(),
            "channels": o.channels,
            "clock_mhz": o.clock_mhz,
            "rules_checked": rules_checked,
        });
        if let serde_json::Value::Object(m) = &mut j {
            m.insert("lint".to_string(), findings.to_json());
        }
        let mut s = j.to_string();
        s.push('\n');
        s
    } else {
        let mut s = format!(
            "mcm lint: {} on {} ch @ {} MHz ({}, {}, {}; {} rules)\n",
            o.point, o.channels, o.clock_mhz, o.mapping, o.page, o.power_down, rules_checked
        );
        s += &findings.render_human();
        s
    };
    if findings.has_errors() {
        Err(CliError(out))
    } else {
        Ok(out)
    }
}

/// The report behind `mcm check`, in pass order: configuration lints,
/// cross-channel invariants, then (when the config is viable) a bounded
/// simulation with the trace audit, traffic-balance checks and — under
/// `--faults` — the MCM3xx degraded-mode rules.
fn check_findings(o: &RunOptions) -> Result<mcm_verify::Report, CliError> {
    use mcm_dram::AddressMapping;
    use mcm_verify::{check_address_roundtrip, check_interleave, Diagnostic, Severity};

    let plan = load_fault_plan(o)?;
    let mut exp = build_experiment(o);
    exp.op_limit = Some(exp.op_limit.unwrap_or(VERIFY_OP_LIMIT).min(VERIFY_OP_LIMIT));
    let geometry = exp.memory.controller.cluster.geometry;

    let mut findings = mcm_verify::Report::new();
    match mcm_channel::InterleaveMap::new(o.channels, exp.memory.granule_bytes) {
        Ok(map) => findings.merge(check_interleave(&map, 64)),
        Err(e) => findings.push(Diagnostic::new(
            "MCM201",
            Severity::Error,
            format!("interleave construction failed: {e}"),
        )),
    }
    findings.merge(check_address_roundtrip(
        &geometry,
        &[AddressMapping::Rbc, AddressMapping::Brc],
        64,
    ));

    let lints = mcm_verify::lint_all(&exp.use_case, &exp.memory, &exp.interface);
    let analysis = mcm_analyze::analyze_experiment(&exp);
    if lints.has_errors() || analysis.has_errors() {
        // The simulation would only fail or mislead; report what the
        // lints and the static analysis found and say why no trace was
        // audited.
        findings.merge(lints);
        findings.merge(analysis);
        findings.push(Diagnostic::new(
            "MCM101",
            Severity::Note,
            "trace audit skipped: the configuration errors above must be fixed first",
        ));
    } else {
        // Static warnings (near-roofline demand, tight footprints) are
        // findings too; the audit below cannot rediscover them.
        findings.merge(analysis);
        // run_verified repeats the lints, so any warnings they produced
        // are still reported exactly once.
        let run = mcm_core::RunOptions {
            verify: true,
            faults: plan,
            ..mcm_core::RunOptions::default()
        };
        let verified = exp
            .run_with(&run)
            .map(|o| o.into_verified().expect("verified outcome"));
        match verified {
            Ok((_, sim_findings)) => findings.merge(sim_findings),
            Err(e) => findings.push(Diagnostic::new(
                "MCM101",
                Severity::Error,
                format!("verification run failed on a lint-clean configuration: {e}"),
            )),
        }
    }
    Ok(findings)
}

fn timeline(o: &RunOptions, cycles: u64) -> Result<String, CliError> {
    use mcm_ctrl::{ChannelRequest, Controller};
    use mcm_load::LayoutOptions;
    let exp = build_experiment(o);
    let geometry = exp.memory.controller.cluster.geometry;
    let mut ctrl = Controller::new(&exp.memory.controller)
        .map_err(|e| CliError(format!("controller: {e}")))?;
    ctrl.enable_trace();
    // Feed channel 0's share of the frame until the window is covered.
    // Traffic comes from the selected workload model, so `--workload`
    // shapes the schedule exactly as it shapes the engine's.
    let options = LayoutOptions::bank_staggered(
        geometry.capacity_bytes() * o.channels as u64,
        geometry.page_bytes() as u64,
        o.channels,
        geometry.banks,
    );
    let interleave = mcm_channel::InterleaveMap::new(o.channels, exp.memory.granule_bytes)
        .map_err(|e| CliError(format!("interleave: {e}")))?;
    let traffic = exp
        .model()
        .traffic(&options, exp.chunk.bytes(o.channels), 0, &[])
        .map_err(|e| CliError(format!("traffic: {e}")))?;
    for op in traffic {
        if ctrl.busy_until() > cycles + 64 {
            break;
        }
        for (ch, slice) in interleave
            .split_range(op.addr, op.len as u64)
            .into_iter()
            .enumerate()
        {
            let Some((local, len)) = slice else { continue };
            if ch != 0 {
                continue;
            }
            ctrl.access(ChannelRequest {
                op: if op.write {
                    mcm_ctrl::AccessOp::Write
                } else {
                    mcm_ctrl::AccessOp::Read
                },
                addr: local,
                len: len as u32,
                arrival: 0,
            })
            .map_err(|e| CliError(format!("access: {e}")))?;
        }
    }
    let trace = ctrl.device().trace().expect("trace enabled");
    let mut out = format!(
        "channel 0 command schedule, cycles 0..{cycles} ({} on {} ch @ {} MHz)\n\n",
        o.point, o.channels, o.clock_mhz
    );
    out += &mcm_dram::timeline::render_timeline(trace, geometry.banks, 0, cycles, 200);
    out += "\nA activate, r read, w write, P precharge, F refresh, D/U power-down\nenter/exit, S/X self-refresh enter/exit, '-' row open.\n";
    Ok(out)
}

fn trace_dump(o: &RunOptions, out: &str) -> Result<String, CliError> {
    use mcm_load::LayoutOptions;
    let exp = build_experiment(o);
    let geometry = exp.memory.controller.cluster.geometry;
    let capacity = geometry.capacity_bytes() * o.channels as u64;
    let options = LayoutOptions::bank_staggered(
        capacity,
        geometry.page_bytes() as u64,
        o.channels,
        geometry.banks,
    );
    let traffic = exp
        .model()
        .traffic(&options, exp.chunk.bytes(o.channels), 0, &[])
        .map_err(|e| CliError(format!("traffic failed: {e}")))?;
    let io_err = |e: std::io::Error| CliError(format!("cannot write '{out}': {e}"));
    let n = if out == "-" {
        let stdout = std::io::stdout();
        mcm_load::write_trace(traffic, &mut stdout.lock()).map_err(io_err)?
    } else {
        let file = std::fs::File::create(out).map_err(io_err)?;
        let mut w = std::io::BufWriter::new(file);
        mcm_load::write_trace(traffic, &mut w).map_err(io_err)?
    };
    Ok(format!("wrote {n} operations to {out}\n"))
}

fn trace_run(o: &RunOptions, input: &str) -> Result<String, CliError> {
    let exp = build_experiment(o);
    let file =
        std::fs::File::open(input).map_err(|e| CliError(format!("cannot read '{input}': {e}")))?;
    let ops = mcm_load::read_trace(std::io::BufReader::new(file))
        .map_err(|e| CliError(format!("bad trace: {e}")))?;
    let r = mcm_core::tracerun::run_trace(&exp.memory, ops, &exp.interface)
        .map_err(|e| CliError(format!("replay failed: {e}")))?;
    Ok(format!(
        "replayed {} ops ({:.1} MB) on {} ch @ {} MHz:\n  drain time {:.3} ms, {:.2} GB/s, {}\n",
        r.ops,
        r.bytes as f64 / 1e6,
        o.channels,
        o.clock_mhz,
        r.access_time.as_ms_f64(),
        r.bandwidth_bytes_per_s / 1e9,
        r.power
    ))
}

fn run_steady(o: &RunOptions, frames: u32) -> Result<String, CoreError> {
    let exp = build_experiment(o);
    let r = exp
        .run_with(&mcm_core::RunOptions::steady(frames).with_execution(o.execution))?
        .into_steady()
        .expect("steady outcome");
    let mut out = format!(
        "{} x {} ch @ {} MHz, {frames} consecutive frames\n",
        o.point, o.channels, o.clock_mhz
    );
    if let Some(steady) = r.steady_access_time() {
        out += &format!("  steady access time: {steady}\n");
    }
    let worst = r.frames.iter().map(|f| f.access_time).max().unwrap();
    out += &format!("  worst frame:        {worst}\n");
    out += &format!("  all real-time:      {}\n", r.all_real_time());
    out += &format!("  sustained power:    {}\n", r.power);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn help_contains_all_commands() {
        let out = execute(&Command::Help).unwrap();
        for c in ["repro", "fig3", "run", "headroom", "--power-down"] {
            assert!(out.contains(c), "usage text missing {c}");
        }
    }

    #[test]
    fn bench_command_writes_the_report_and_gates() {
        let dir = std::env::temp_dir().join(format!("mcm_cli_bench_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("BENCH_sim.json");
        let out_str = out_path.to_str().unwrap();
        // Gating against the report being written compares the run with
        // itself: the full baseline path executes and must pass.
        let cmd = parse_args([
            "bench",
            "--quick",
            "--repeats",
            "1",
            "--out",
            out_str,
            "--baseline",
            out_str,
        ])
        .unwrap();
        let text = execute(&cmd).unwrap();
        assert!(text.contains("headline"), "{text}");
        assert!(text.contains("no headline regression"), "{text}");
        let report: mcm_bench::perf::BenchReport =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(report.mode, "quick");
        assert_eq!(report.repeats, 1);
        assert!(report.headline.direct_events_per_sec > 0.0);
        assert!(report.scenarios.iter().any(|m| m.kind == "sweep"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_commands_render_without_simulation() {
        let out = execute(&Command::Table1).unwrap();
        assert!(out.contains("Video encoder"));
        let out = execute(&Command::Table2).unwrap();
        assert!(out.contains("BC0"));
    }

    #[test]
    fn run_command_produces_text_and_json() {
        // Small/fast configuration.
        let cmd = parse_args([
            "run",
            "--format",
            "720p30",
            "--channels",
            "8",
            "--clock",
            "533",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("access time"));

        let cmd = parse_args([
            "run",
            "--format",
            "720p30",
            "--channels",
            "8",
            "--clock",
            "533",
            "--json",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["channels"], 8);
        assert!(v["access_time_ms"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn infeasible_run_is_refused_statically() {
        // 2160p30 on one channel cannot even hold its frame buffers; the
        // analyzer refuses the run with a witnessed MCM4xx diagnostic
        // instead of letting the engine discover the overflow.
        let cmd = parse_args(["run", "--format", "2160p30", "--channels", "1"]).unwrap();
        let err = execute(&cmd).unwrap_err().to_string();
        assert!(err.contains("statically infeasible"), "{err}");
        assert!(err.contains("MCM4"), "{err}");
        assert!(err.contains("mcm lint"), "{err}");
    }

    #[test]
    fn faulted_runs_bypass_the_static_refusal() {
        // A fault plan brings a degradation policy that may shed load, so
        // the static verdict must not block the simulation. 2160p30 on 4
        // channels is above the roofline; with a channel loss the degraded
        // engine still produces a (shed, slower) result.
        let dir = std::env::temp_dir().join(format!("mcm-cli-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let plan_path = dir.join("plan.json");
        let plan = mcm_fault::FaultPlan::channel_loss(5, 0);
        std::fs::write(&plan_path, serde_json::to_string(&plan).unwrap()).unwrap();
        let plan_str = plan_path.to_str().unwrap();
        let cmd = parse_args([
            "run",
            "--format",
            "2160p30",
            "--channels",
            "4",
            "--faults",
            plan_str,
            "--op-limit",
            "2000",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("degraded"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[cfg(test)]
mod check_cli_tests {
    use super::*;
    use crate::args::parse_args;

    fn options(args: &[&str]) -> RunOptions {
        let mut full = vec!["check"];
        full.extend_from_slice(args);
        let Command::Check(o) = parse_args(full).unwrap() else {
            panic!("expected check");
        };
        o
    }

    #[test]
    fn default_config_checks_clean() {
        let cmd = parse_args(["check"]).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("check clean: 0 findings"), "{out}");
    }

    #[test]
    fn json_output_is_parseable_and_clean() {
        let cmd = parse_args(["check", "--json"]).unwrap();
        let out = execute(&cmd).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["check"]["summary"]["clean"], true, "{out}");
        assert!(v["rules_checked"].as_u64().unwrap() >= 23);
    }

    #[test]
    fn infeasible_config_fails_with_mcm102() {
        let cmd = parse_args([
            "check",
            "--format",
            "2160p30",
            "--channels",
            "1",
            "--clock",
            "200",
        ])
        .unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.to_string().contains("MCM102"), "{err}");
        assert!(err.to_string().contains("trace audit skipped"), "{err}");
    }

    #[test]
    fn policy_findings_reach_the_report() {
        let findings = check_findings(&options(&["--power-down", "sr:0"])).unwrap();
        // sr_after 0 < pd_after 1: the escalation can never fire.
        assert!(
            findings.ids().contains(&"MCM105"),
            "{}",
            findings.render_human()
        );
        assert!(findings.has_errors());
    }

    #[test]
    fn verified_run_flag_reports_clean() {
        let cmd = parse_args([
            "run",
            "--format",
            "720p30",
            "--channels",
            "8",
            "--clock",
            "533",
            "--verify",
            "--json",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["verify"]["summary"]["clean"], true, "{out}");
    }
}

#[cfg(test)]
mod sweep_cli_tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn sweep_text_table_and_stats() {
        let cmd = parse_args([
            "sweep",
            "--formats",
            "720p30",
            "--channels",
            "1,4",
            "--op-limit",
            "2000",
            "--threads",
            "2",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("1280x720@30/1ch/400MHz"), "{out}");
        assert!(out.contains("2 points: 2 simulated"), "{out}");
    }

    #[test]
    fn sweep_json_is_parseable_and_csv_has_rows() {
        let cmd = parse_args([
            "sweep",
            "--formats",
            "720p30",
            "--channels",
            "2",
            "--op-limit",
            "2000",
            "--json",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v[0]["channels"], 2);
        assert!(v[0]["record"]["access_ms"].as_f64().unwrap() > 0.0);

        let cmd = parse_args([
            "sweep",
            "--formats",
            "720p30",
            "--channels",
            "2",
            "--op-limit",
            "2000",
            "--csv",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert_eq!(out.lines().count(), 2);
        assert!(out.lines().next().unwrap().starts_with("label,"));
    }

    #[test]
    fn sweep_cache_flag_round_trips() {
        let dir = std::env::temp_dir().join("mcm_cli_sweep_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let args = [
            "sweep",
            "--formats",
            "720p30",
            "--channels",
            "1,2",
            "--op-limit",
            "2000",
            "--cache",
        ];
        let run = || {
            let mut full: Vec<&str> = args.to_vec();
            let d = dir.to_str().unwrap();
            full.push(d);
            execute(&parse_args(full).unwrap()).unwrap()
        };
        let cold = run();
        assert!(cold.contains("2 simulated, 0 cached"), "{cold}");
        let warm = run();
        assert!(warm.contains("0 simulated, 2 cached"), "{warm}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_shards_merge_and_checkpoints_resume_byte_identically() {
        let dir = std::env::temp_dir().join(format!("mcm_cli_shard_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let grid = [
            "--formats",
            "720p30,1080p30",
            "--channels",
            "1,2",
            "--op-limit",
            "2000",
        ];
        let sweep = |extra: &[&str]| {
            let mut full: Vec<&str> = vec!["sweep"];
            full.extend_from_slice(&grid);
            full.extend_from_slice(extra);
            execute(&parse_args(full).unwrap())
        };

        let whole = sweep(&["--json"]).unwrap();

        // Two shards merge back to the exact bytes of the whole run,
        // regardless of the order the files are given in.
        let s0 = sweep(&["--json", "--shard", "0/2"]).unwrap();
        let s1 = sweep(&["--json", "--shard", "1/2"]).unwrap();
        let p0 = dir.join("s0.json");
        let p1 = dir.join("s1.json");
        std::fs::write(&p0, &s0).unwrap();
        std::fs::write(&p1, &s1).unwrap();
        let merged = execute(
            &parse_args([
                "sweep",
                "--merge",
                p1.to_str().unwrap(),
                p0.to_str().unwrap(),
                "--json",
            ])
            .unwrap(),
        )
        .unwrap();
        assert_eq!(merged, whole, "merge must reproduce the unsharded run");

        // A checkpointed run resumes byte-identically under the same
        // flags; a lone shard file refuses to merge.
        let log = dir.join("log.jsonl");
        let log_s = log.to_str().unwrap();
        let first = sweep(&["--json", "--checkpoint", log_s]).unwrap();
        assert_eq!(first, whole);
        let resumed = sweep(&["--json", "--resume", log_s]).unwrap();
        assert_eq!(resumed, whole);
        let lone =
            execute(&parse_args(["sweep", "--merge", p0.to_str().unwrap(), "--json"]).unwrap())
                .unwrap_err();
        assert!(
            lone.to_string().contains("expected 2 shard file(s)"),
            "{lone}"
        );

        // Shard documents are JSON-only; text output has no shard form.
        let refusal = sweep(&["--shard", "0/2"]).unwrap_err();
        assert!(refusal.to_string().contains("--json"), "{refusal}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_workloads_axis_expands_and_labels_points() {
        let cmd = parse_args([
            "sweep",
            "--formats",
            "720p30",
            "--channels",
            "2",
            "--workloads",
            "h264-record,stochastic:7",
            "--op-limit",
            "2000",
            "--json",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        let labels: Vec<&str> = v
            .as_array()
            .unwrap()
            .iter()
            .map(|p| p["label"].as_str().unwrap())
            .collect();
        assert_eq!(labels.len(), 2, "{out}");
        assert!(
            labels.iter().any(|l| l.ends_with("/stochastic:7")),
            "{labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.ends_with("/h264-record")),
            "{labels:?}"
        );
    }
}

#[cfg(test)]
mod workload_cli_tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn run_with_a_workload_reports_the_model_demand() {
        let cmd = parse_args(["run", "--workload", "hevc-record", "--op-limit", "4000"]).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("workload:    hevc-record"), "{out}");
        assert!(!out.contains("  load:"), "{out}");
    }

    #[test]
    fn run_json_carries_the_workload_name_only_when_selected() {
        let run = |extra: &[&str]| {
            let mut args = vec!["run", "--op-limit", "4000", "--json"];
            args.extend_from_slice(extra);
            execute(&parse_args(args).unwrap()).unwrap()
        };
        let v: serde_json::Value = serde_json::from_str(&run(&[])).unwrap();
        assert!(v.get("workload").is_none(), "default run stays pinned");
        let out = run(&["--workload", "stochastic:9:75"]);
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["workload"], serde_json::json!("stochastic:9:75"), "{out}");
    }

    #[test]
    fn infeasible_workloads_are_refused_statically() {
        // Eight tenants on the paper's 4-channel point are far beyond the
        // roofline; the run must be refused before simulating, exactly as
        // an infeasible format/channel combination would be.
        let cmd = parse_args(["run", "--workload", "multi-tenant:8"]).unwrap();
        let err = execute(&cmd).unwrap_err().to_string();
        assert!(err.contains("statically infeasible"), "{err}");
        assert!(err.contains("MCM4"), "{err}");
    }

    #[test]
    fn check_and_lint_price_in_the_workload() {
        let cmd = parse_args(["lint", "--workload", "multi-tenant:8", "--json"]).unwrap();
        let err = execute(&cmd).unwrap_err().to_string();
        let v: serde_json::Value = serde_json::from_str(&err).expect("lint --json emits JSON");
        let ids: Vec<&str> = v["lint"]["findings"]
            .as_array()
            .unwrap()
            .iter()
            .map(|f| f["id"].as_str().unwrap())
            .collect();
        assert!(ids.contains(&"MCM405"), "{ids:?}");

        let cmd = parse_args(["check", "--workload", "hevc-record", "--op-limit", "4000"]).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("check clean: 0 findings"), "{out}");
    }

    #[test]
    fn trace_dump_follows_the_workload_model() {
        let run = |workload: Option<&str>| {
            let dir = std::env::temp_dir().join(format!(
                "mcm_cli_wl_trace_{}_{}",
                std::process::id(),
                workload.unwrap_or("default").replace(':', "_")
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("trace.txt");
            let path_s = path.to_str().unwrap().to_string();
            let mut args = vec!["trace-dump", "--format", "720p30", "--out", &path_s];
            if let Some(w) = workload {
                args.push("--workload");
                args.push(w);
            }
            let out = execute(&parse_args(args).unwrap()).unwrap();
            assert!(out.contains("wrote"), "{out}");
            let text = std::fs::read_to_string(&path).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            text
        };
        let table_i = run(None);
        let multi = run(Some("multi-tenant:2"));
        // Two tenants write disjoint copies of the frame pipeline, so the
        // multi-tenant trace is strictly longer than the single-tenant one.
        assert!(multi.lines().count() > table_i.lines().count());
    }
}

#[cfg(test)]
mod report_cli_tests {
    use super::*;
    use crate::args::parse_args;

    const FAST: &[&str] = &[
        "report",
        "--format",
        "720p30",
        "--channels",
        "2",
        "--op-limit",
        "2000",
    ];

    fn run(extra: &[&str]) -> String {
        let mut args: Vec<&str> = FAST.to_vec();
        args.extend_from_slice(extra);
        execute(&parse_args(args).unwrap()).unwrap()
    }

    #[test]
    fn text_report_shows_counters_and_percentiles() {
        let out = run(&[]);
        assert!(out.contains("observed 1280x720@30"), "{out}");
        assert!(out.contains("on 2 ch"), "{out}");
        assert!(out.contains("channel 0"), "{out}");
        assert!(out.contains("channel 1"), "{out}");
        assert!(out.contains("p99"), "{out}");
        // The direct-call path never touches the event kernel.
        assert!(!out.contains("kernel:"), "{out}");
        assert!(out.contains("gauge power.total_mw"), "{out}");
    }

    #[test]
    fn histogram_flag_adds_bucket_rows() {
        let plain = run(&[]);
        assert!(!plain.contains("latency histogram"), "{plain}");
        let out = run(&["--histogram"]);
        assert!(out.contains("latency histogram, channel 0 (ns):"), "{out}");
        assert!(out.contains('#'), "{out}");
    }

    #[test]
    fn json_report_is_parseable_with_channels() {
        let out = run(&["--json"]);
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        let channels = v["channels"].as_array().unwrap();
        assert_eq!(channels.len(), 2);
        // The 2000-op prefix is all capture writes, so reads may be zero.
        assert!(channels[0]["counters"]["bytes_written"].as_u64().unwrap() > 0);
        assert!(channels[0]["counters"]["requests"].as_u64().unwrap() > 0);
    }

    #[test]
    fn csv_report_has_one_row_per_channel() {
        let out = run(&["--csv"]);
        let mut lines = out.lines();
        assert!(lines.next().unwrap().starts_with("channel,"));
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn trace_report_is_chrome_trace_json() {
        let out = run(&["--trace"]);
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        let events = v["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());
        assert!(events.iter().any(|e| e["ph"] == "X"));
    }

    #[test]
    fn timeline_bucket_flag_coarsens_the_timeline() {
        let fine = run(&["--json"]);
        let coarse = run(&["--timeline-bucket", "1000", "--json"]);
        let bucket = |s: &str| {
            serde_json::from_str::<serde_json::Value>(s).unwrap()["timeline_bucket_ps"]
                .as_u64()
                .unwrap()
        };
        assert_eq!(bucket(&fine), 1_000_000);
        assert_eq!(bucket(&coarse), 1_000_000_000);
    }
}

#[cfg(test)]
mod steady_and_viewfinder_tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn steady_command_runs() {
        let cmd = parse_args([
            "steady",
            "--format",
            "720p30",
            "--channels",
            "8",
            "--clock",
            "533",
            "--frames",
            "3",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("3 consecutive frames"));
        assert!(out.contains("steady access time"));
    }

    #[test]
    fn viewfinder_flag_cuts_the_load() {
        let json = |extra: &[&str]| {
            let mut args = vec![
                "run",
                "--format",
                "720p30",
                "--channels",
                "8",
                "--clock",
                "533",
                "--json",
            ];
            args.extend_from_slice(extra);
            let out = execute(&parse_args(args).unwrap()).unwrap();
            serde_json::from_str::<serde_json::Value>(&out).unwrap()
        };
        let rec = json(&[]);
        let vf = json(&["--viewfinder"]);
        let rec_bytes = rec["bytes_per_frame"].as_u64().unwrap();
        let vf_bytes = vf["bytes_per_frame"].as_u64().unwrap();
        assert!(
            vf_bytes * 2 < rec_bytes,
            "viewfinder {vf_bytes} vs recording {rec_bytes}"
        );
    }
}

#[cfg(test)]
mod trace_cli_tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn dump_then_replay_roundtrips() {
        let dir = std::env::temp_dir().join("mcm_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame.trace");
        let path_s = path.to_str().unwrap();

        let cmd = parse_args([
            "trace-dump",
            "--format",
            "720p30",
            "--channels",
            "2",
            "--chunk",
            "fixed:4096",
            "--out",
            path_s,
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("wrote"));

        let cmd = parse_args([
            "trace-run",
            "--channels",
            "2",
            "--clock",
            "533",
            "--in",
            path_s,
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("replayed"), "{out}");
        assert!(out.contains("GB/s"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_trace_paths_error_cleanly() {
        let err = parse_args(["trace-dump", "--format", "720p30"]).unwrap_err();
        assert!(err.to_string().contains("--out"));
        let cmd = parse_args(["trace-run", "--in", "/nonexistent/file"]).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }
}

#[cfg(test)]
mod snapshot_tests {
    //! Golden-stdout shape checks on the fixed 1080p30 x 4 ch default
    //! config: every user-visible line and JSON key is pinned, so an
    //! accidental output-format change fails here instead of breaking
    //! scripts downstream.
    use super::*;
    use crate::args::parse_args;

    /// The fixed config: 1080p30 x 4 ch @ 400 MHz is the parser default;
    /// the op cap keeps each simulation fast.
    const CFG: &[&str] = &["--op-limit", "4000"];

    fn run(cmd: &str, extra: &[&str]) -> String {
        let mut args = vec![cmd];
        args.extend_from_slice(CFG);
        args.extend_from_slice(extra);
        execute(&parse_args(args).unwrap()).unwrap()
    }

    #[test]
    fn run_text_lines_are_pinned() {
        let out = run("run", &[]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "1920x1088@30 (L4) on 4 ch x 32-bit mobile DDR @ 400 MHz \
             (RBC, open-page, power-down after first idle cycle)",
            "{out}"
        );
        let labels: Vec<&str> = lines[1..]
            .iter()
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert_eq!(labels, ["load:", "access", "bandwidth:", "power:"], "{out}");
    }

    #[test]
    fn run_json_keys_are_pinned() {
        let out = run("run", &["--json"]);
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        let serde_json::Value::Object(m) = &v else {
            panic!("expected object: {out}");
        };
        let mut keys: Vec<&str> = m.keys().map(String::as_str).collect();
        keys.sort_unstable();
        assert_eq!(
            keys,
            [
                "access_time_ms",
                "achieved_bandwidth_gbps",
                "bytes_per_frame",
                "channels",
                "clock_mhz",
                "core_power_mw",
                "efficiency",
                "format",
                "frame_budget_ms",
                "interface_power_mw",
                "latency_p99_ns",
                "peak_bandwidth_gbps",
                "total_power_mw",
                "verdict",
            ],
            "{out}"
        );
        assert_eq!(v["format"], serde_json::json!("1920x1088@30 (L4)"), "{out}");
    }

    #[test]
    fn check_text_header_is_pinned() {
        let out = run("check", &[]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            format!(
                "mcm check: 1920x1088@30 (L4) on 4 ch @ 400 MHz \
                 (RBC, open-page, power-down after first idle cycle; {} rules)",
                mcm_verify::rule_catalogue().len()
            ),
            "{out}"
        );
        assert_eq!(lines[1], "check clean: 0 findings", "{out}");
    }

    #[test]
    fn lint_text_lines_are_pinned() {
        let out = run("lint", &[]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "mcm lint: 1920x1088@30 (L4) on 4 ch @ 400 MHz \
             (RBC, open-page, power-down after first idle cycle; 11 rules)",
            "{out}"
        );
        assert_eq!(lines[1], "check clean: 0 findings", "{out}");
    }

    #[test]
    fn lint_json_keys_are_pinned() {
        let out = run("lint", &["--json"]);
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        let serde_json::Value::Object(m) = &v else {
            panic!("expected object: {out}");
        };
        let mut keys: Vec<&str> = m.keys().map(String::as_str).collect();
        keys.sort_unstable();
        assert_eq!(
            keys,
            ["channels", "clock_mhz", "format", "lint", "rules_checked"],
            "{out}"
        );
        assert_eq!(v["rules_checked"], serde_json::json!(11), "{out}");
        assert_eq!(
            v["lint"]["summary"]["clean"],
            serde_json::json!(true),
            "{out}"
        );
    }

    #[test]
    fn lint_rejects_infeasible_config_with_a_witness() {
        let cmd = parse_args(["lint", "--format", "2160p30", "--channels", "1", "--json"]).unwrap();
        let err = execute(&cmd).unwrap_err().to_string();
        let v: serde_json::Value = serde_json::from_str(&err).expect("lint --json emits JSON");
        let findings = v["lint"]["findings"].as_array().unwrap();
        let ids: Vec<&str> = findings.iter().map(|f| f["id"].as_str().unwrap()).collect();
        assert!(ids.contains(&"MCM405") && ids.contains(&"MCM406"), "{err}");
        // Every analyzer finding carries a machine-readable witness: the
        // violated inequality plus the concrete numbers behind it.
        for f in findings
            .iter()
            .filter(|f| f["id"].as_str().unwrap().starts_with("MCM4"))
        {
            let ctx = f["context"].as_str().expect("MCM4xx context present");
            let w: serde_json::Value = serde_json::from_str(ctx).expect("witness is JSON");
            assert!(w["inequality"].as_str().is_some(), "{err}");
            assert!(w["values"].as_object().is_some(), "{err}");
        }
    }

    #[test]
    fn report_json_keys_are_pinned() {
        let out = run("report", &["--json"]);
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        let serde_json::Value::Object(m) = &v else {
            panic!("expected object: {out}");
        };
        let mut keys: Vec<&str> = m.keys().map(String::as_str).collect();
        keys.sort_unstable();
        assert_eq!(
            keys,
            [
                "channels",
                "dropped_spans",
                "gauges",
                "kernel",
                "spans",
                "tenants",
                "timeline_bucket_ps",
            ],
            "{out}"
        );
        assert_eq!(v["channels"].as_array().unwrap().len(), 4, "{out}");
    }

    #[test]
    fn fault_description_is_pinned() {
        let cmd = parse_args(["fault", "--seed", "7", "--channels", "4"]).unwrap();
        let out = execute(&cmd).unwrap();
        let first = out.lines().next().unwrap();
        assert_eq!(
            first,
            "fault plan (seed 0x7): 5 fault(s), policy retries=3 backoff=64ck shed-target=70%",
            "{out}"
        );
        // Same seed, same description, run to run.
        assert_eq!(out, execute(&cmd).unwrap());
    }
}

#[cfg(test)]
mod fault_cli_tests {
    use super::*;
    use crate::args::parse_args;

    /// Writes a channel-loss plan via `mcm fault --out` and returns its path.
    fn plan_file(dir: &std::path::Path, lose: &str) -> String {
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join(format!("plan_{}.json", lose.replace(',', "_")));
        let path_s = path.to_str().unwrap().to_string();
        let cmd = parse_args(["fault", "--seed", "7", "--lose", lose, "--out", &path_s]).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("wrote fault plan"), "{out}");
        path_s
    }

    #[test]
    fn fault_describe_and_json_round_trip() {
        let cmd = parse_args(["fault", "--seed", "9", "--channels", "4"]).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("fault plan (seed 0x9)"), "{out}");

        let cmd = parse_args(["fault", "--seed", "9", "--channels", "4", "--json"]).unwrap();
        let json = execute(&cmd).unwrap();
        let plan: mcm_fault::FaultPlan = serde_json::from_str(&json).expect("valid plan JSON");
        assert_eq!(plan, mcm_fault::FaultPlan::seeded(9, 4).unwrap());
    }

    #[test]
    fn fault_rejects_plans_that_lose_everything() {
        let cmd = parse_args(["fault", "--channels", "2", "--lose", "0,1"]).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.to_string().contains("invalid"), "{err}");
    }

    #[test]
    fn run_with_faults_reports_degradation_and_is_deterministic() {
        let dir = std::env::temp_dir().join("mcm_cli_fault_run_test");
        let plan = plan_file(&dir, "1");
        // The fixed 1080p30 x 4ch default config, capped for test speed.
        let args = ["run", "--faults", plan.as_str(), "--op-limit", "4000"];

        let cmd = parse_args(args).unwrap();
        let text = execute(&cmd).unwrap();
        assert!(
            text.contains("degraded:    lost channel(s) [1], 3 of 4 surviving"),
            "{text}"
        );
        assert!(text.contains("effective:"), "{text}");

        let mut json_args = args.to_vec();
        json_args.push("--json");
        let cmd = parse_args(json_args.clone()).unwrap();
        let out1 = execute(&cmd).unwrap();
        let out2 = execute(&parse_args(json_args).unwrap()).unwrap();
        assert_eq!(out1, out2, "same plan, same output");
        let v: serde_json::Value = serde_json::from_str(&out1).expect("valid JSON");
        assert_eq!(v["degrade"]["lost_channels"][0].as_u64(), Some(1), "{out1}");
        assert_eq!(v["degrade"]["surviving_channels"].as_u64(), Some(3));
        assert_eq!(v["degrade"]["nominal_fps"].as_u64(), Some(30));
        assert!(v["degrade"]["effective_fps"].as_f64().unwrap() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_with_faults_runs_the_degrade_rules_clean() {
        let dir = std::env::temp_dir().join("mcm_cli_fault_check_test");
        let plan = plan_file(&dir, "0");
        let cmd = parse_args(["check", "--faults", plan.as_str(), "--op-limit", "4000"]).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("check clean: 0 findings"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_plans_are_rejected_where_unsupported() {
        let dir = std::env::temp_dir().join("mcm_cli_fault_reject_test");
        let plan = plan_file(&dir, "1");
        for sub in ["steady", "headroom", "profile", "report", "config-dump"] {
            let cmd = parse_args([sub, "--faults", plan.as_str()]).unwrap();
            let err = execute(&cmd).unwrap_err();
            assert!(
                err.to_string().contains("--faults is not supported"),
                "{sub}: {err}"
            );
        }
        let cmd = parse_args(["run", "--faults", "/nonexistent/plan.json"]).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.to_string().contains("cannot read fault plan"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod config_cli_tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn config_dump_then_run_roundtrips() {
        let cmd = parse_args([
            "config-dump",
            "--format",
            "720p30",
            "--channels",
            "8",
            "--clock",
            "533",
        ])
        .unwrap();
        let json = execute(&cmd).unwrap();
        assert!(json.contains("\"width\": 1280"), "{json}");

        let dir = std::env::temp_dir().join("mcm_cli_config_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exp.json");
        // Truncate the run so the test stays fast.
        let mut exp: Experiment = serde_json::from_str(&json).unwrap();
        exp.op_limit = Some(2_000);
        std::fs::write(&path, serde_json::to_string(&exp).unwrap()).unwrap();

        let cmd = parse_args(["config-run", path.to_str().unwrap()]).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("access time"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_config_file_errors_cleanly() {
        let err = execute(&Command::ConfigRun {
            path: "/nonexistent.json".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("cannot read"));
        let dir = std::env::temp_dir();
        let path = dir.join("mcm_bad_config.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = execute(&Command::ConfigRun {
            path: path.to_str().unwrap().into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("bad experiment config"));
        std::fs::remove_file(&path).ok();
    }
}
