//! Command execution for the `mcm` binary.

use mcm_core::{analysis, figures, CoreError, Experiment};
use mcm_load::UseCase;

use crate::args::{CliError, Command, RunOptions, USAGE};

fn build_experiment(o: &RunOptions) -> Experiment {
    let mut exp = Experiment::paper(o.point, o.channels, o.clock_mhz);
    if o.viewfinder {
        exp.use_case = UseCase::viewfinder(o.point);
    }
    exp.memory.controller.mapping = o.mapping;
    exp.memory.controller.page_policy = o.page;
    exp.memory.controller.power_down = o.power_down;
    exp.memory.granule_bytes = o.granule;
    exp.chunk = o.chunk;
    exp.pacing = o.pacing;
    exp
}

fn run_one(o: &RunOptions) -> Result<String, CoreError> {
    let exp = build_experiment(o);
    let r = exp.run()?;
    if o.json {
        let p99 = r
            .report
            .channels
            .iter()
            .filter_map(|c| c.latency_p99)
            .max()
            .map(|t| t.as_ns_f64());
        Ok(serde_json::json!({
            "format": o.point.to_string(),
            "channels": o.channels,
            "clock_mhz": o.clock_mhz,
            "access_time_ms": r.access_time.as_ms_f64(),
            "frame_budget_ms": r.frame_budget.as_ms_f64(),
            "verdict": r.verdict.to_string(),
            "core_power_mw": r.power.core_mw,
            "interface_power_mw": r.power.interface_mw,
            "total_power_mw": r.power.total_mw(),
            "efficiency": r.efficiency(),
            "peak_bandwidth_gbps": r.peak_bandwidth_bytes_per_s / 1e9,
            "achieved_bandwidth_gbps": r.achieved_bandwidth_bytes_per_s() / 1e9,
            "latency_p99_ns": p99,
            "bytes_per_frame": r.planned_bytes,
        })
        .to_string())
    } else {
        let row = UseCase::hd(o.point).table_row();
        let mut out = String::new();
        out += &format!(
            "{} on {} ch x 32-bit mobile DDR @ {} MHz ({}, {}, {})\n",
            o.point, o.channels, o.clock_mhz, o.mapping, o.page, o.power_down
        );
        out += &format!(
            "  load:        {:.2} GB/s ({:.0} Mb/frame)\n",
            row.gbytes_per_second(),
            row.bits_per_frame() as f64 / 1e6
        );
        out += &format!(
            "  access time: {:.2} ms of {:.2} ms budget [{}]\n",
            r.access_time.as_ms_f64(),
            r.frame_budget.as_ms_f64(),
            r.verdict
        );
        out += &format!(
            "  bandwidth:   {:.1} / {:.1} GB/s ({:.0}% efficiency)\n",
            r.achieved_bandwidth_bytes_per_s() / 1e9,
            r.peak_bandwidth_bytes_per_s / 1e9,
            r.efficiency() * 100.0
        );
        out += &format!("  power:       {}\n", r.power);
        Ok(out)
    }
}

fn run_headroom(o: &RunOptions) -> Result<String, CoreError> {
    let exp = build_experiment(o);
    let fps = analysis::max_sustainable_fps(&exp)?;
    Ok(match fps {
        Some(f) => format!(
            "{} x {} ch @ {} MHz sustains up to {f} fps (real time with 15% margin)\n",
            o.point.format(),
            o.channels,
            o.clock_mhz
        ),
        None => format!(
            "{} x {} ch @ {} MHz cannot sustain real-time recording\n",
            o.point.format(),
            o.channels,
            o.clock_mhz
        ),
    })
}

/// Executes a parsed command, returning the text to print.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    let sim_err = |e: CoreError| CliError(format!("simulation failed: {e}"));
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Table1 => Ok(figures::render_table1(&figures::table1_data())),
        Command::Table2 => Ok([2u32, 4, 8]
            .iter()
            .map(|&c| figures::render_table2(c))
            .collect::<Vec<_>>()
            .join("\n")),
        Command::Fig3 => {
            let d = figures::fig3_data().map_err(sim_err)?;
            Ok(figures::render_fig3(&d))
        }
        Command::Fig4 => {
            let d = figures::format_grid_data().map_err(sim_err)?;
            Ok(figures::render_fig4(&d))
        }
        Command::Fig5 => {
            let d = figures::format_grid_data().map_err(sim_err)?;
            Ok(figures::render_fig5(&d))
        }
        Command::Xdr => {
            let d = figures::xdr_data().map_err(sim_err)?;
            Ok(figures::render_xdr(&d))
        }
        Command::Repro => {
            let mut out = String::new();
            out += &figures::render_table1(&figures::table1_data());
            out += "\n";
            out += &figures::render_table2(4);
            out += "\n";
            let f3 = figures::fig3_data().map_err(sim_err)?;
            out += &figures::render_fig3(&f3);
            let grid = figures::format_grid_data().map_err(sim_err)?;
            out += "\n";
            out += &figures::render_fig4(&grid);
            out += "\n";
            out += &figures::render_fig5(&grid);
            out += "\n";
            let xdr = figures::xdr_data().map_err(sim_err)?;
            out += &figures::render_xdr(&xdr);
            Ok(out)
        }
        Command::Run(o) => run_one(o).map_err(sim_err),
        Command::Headroom(o) => run_headroom(o).map_err(sim_err),
        Command::Steady { options, frames } => run_steady(options, *frames).map_err(sim_err),
        Command::Profile(o) => {
            let exp = build_experiment(o);
            let p = mcm_core::profile::run_profiled(&exp).map_err(sim_err)?;
            Ok(p.render())
        }
        Command::Timeline { options, cycles } => timeline(options, *cycles),
        Command::Datasheet { device, clock_mhz } => {
            let cfg = match device.as_str() {
                "mobile" => mcm_dram::ClusterConfig::next_gen_mobile_ddr(*clock_mhz),
                "ddr2" => mcm_dram::ClusterConfig::standard_ddr2(*clock_mhz),
                "future" => mcm_dram::ClusterConfig::future_lpddr2(*clock_mhz),
                other => {
                    return Err(CliError(format!(
                        "unknown device '{other}' (expected mobile, ddr2 or future)"
                    )))
                }
            };
            mcm_dram::datasheet::render_datasheet(&cfg)
                .map_err(|e| CliError(format!("datasheet: {e}")))
        }
        Command::ConfigDump(o) => {
            let exp = build_experiment(o);
            serde_json::to_string_pretty(&exp)
                .map(|mut s| {
                    s.push('\n');
                    s
                })
                .map_err(|e| CliError(format!("serialization failed: {e}")))
        }
        Command::ConfigRun { path } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read '{path}': {e}")))?;
            let exp: Experiment = serde_json::from_str(&text)
                .map_err(|e| CliError(format!("bad experiment config: {e}")))?;
            let r = exp.run().map_err(sim_err)?;
            Ok(format!(
                "access time {:.2} ms of {:.2} ms [{}], {}\n",
                r.access_time.as_ms_f64(),
                r.frame_budget.as_ms_f64(),
                r.verdict,
                r.power
            ))
        }
        Command::TraceDump { options, out } => trace_dump(options, out),
        Command::TraceRun { options, input } => trace_run(options, input),
    }
}

fn timeline(o: &RunOptions, cycles: u64) -> Result<String, CliError> {
    use mcm_ctrl::{ChannelRequest, Controller};
    use mcm_load::{FrameLayout, FrameTraffic, LayoutOptions};
    let exp = build_experiment(o);
    let geometry = exp.memory.controller.cluster.geometry;
    let mut ctrl = Controller::new(&exp.memory.controller)
        .map_err(|e| CliError(format!("controller: {e}")))?;
    ctrl.enable_trace();
    // Feed channel 0's share of the frame until the window is covered.
    let layout = FrameLayout::with_options(
        &exp.use_case,
        &LayoutOptions::bank_staggered(
            geometry.capacity_bytes() * o.channels as u64,
            geometry.page_bytes() as u64,
            o.channels,
            geometry.banks,
        ),
    )
    .map_err(|e| CliError(format!("layout: {e}")))?;
    let interleave = mcm_channel::InterleaveMap::new(o.channels, exp.memory.granule_bytes)
        .map_err(|e| CliError(format!("interleave: {e}")))?;
    let traffic = FrameTraffic::new(&exp.use_case, &layout, exp.chunk.bytes(o.channels))
        .map_err(|e| CliError(format!("traffic: {e}")))?;
    for op in traffic {
        if ctrl.busy_until() > cycles + 64 {
            break;
        }
        for (ch, slice) in interleave.split_range(op.addr, op.len as u64).into_iter().enumerate() {
            let Some((local, len)) = slice else { continue };
            if ch != 0 {
                continue;
            }
            ctrl.access(ChannelRequest {
                op: if op.write {
                    mcm_ctrl::AccessOp::Write
                } else {
                    mcm_ctrl::AccessOp::Read
                },
                addr: local,
                len: len as u32,
                arrival: 0,
            })
            .map_err(|e| CliError(format!("access: {e}")))?;
        }
    }
    let trace = ctrl.device().trace().expect("trace enabled");
    let mut out = format!(
        "channel 0 command schedule, cycles 0..{cycles} ({} on {} ch @ {} MHz)\n\n",
        o.point, o.channels, o.clock_mhz
    );
    out += &mcm_dram::timeline::render_timeline(trace, geometry.banks, 0, cycles, 200);
    out += "\nA activate, r read, w write, P precharge, F refresh, D/U power-down\nenter/exit, S/X self-refresh enter/exit, '-' row open.\n";
    Ok(out)
}

fn trace_dump(o: &RunOptions, out: &str) -> Result<String, CliError> {
    use mcm_load::{FrameLayout, FrameTraffic, LayoutOptions};
    let exp = build_experiment(o);
    let geometry = exp.memory.controller.cluster.geometry;
    let capacity = geometry.capacity_bytes() * o.channels as u64;
    let layout = FrameLayout::with_options(
        &exp.use_case,
        &LayoutOptions::bank_staggered(
            capacity,
            geometry.page_bytes() as u64,
            o.channels,
            geometry.banks,
        ),
    )
    .map_err(|e| CliError(format!("layout failed: {e}")))?;
    let traffic = FrameTraffic::new(&exp.use_case, &layout, exp.chunk.bytes(o.channels))
        .map_err(|e| CliError(format!("traffic failed: {e}")))?;
    let io_err = |e: std::io::Error| CliError(format!("cannot write '{out}': {e}"));
    let n = if out == "-" {
        let stdout = std::io::stdout();
        mcm_load::write_trace(traffic, &mut stdout.lock()).map_err(io_err)?
    } else {
        let file = std::fs::File::create(out).map_err(io_err)?;
        let mut w = std::io::BufWriter::new(file);
        mcm_load::write_trace(traffic, &mut w).map_err(io_err)?
    };
    Ok(format!("wrote {n} operations to {out}\n"))
}

fn trace_run(o: &RunOptions, input: &str) -> Result<String, CliError> {
    let exp = build_experiment(o);
    let file = std::fs::File::open(input)
        .map_err(|e| CliError(format!("cannot read '{input}': {e}")))?;
    let ops = mcm_load::read_trace(std::io::BufReader::new(file))
        .map_err(|e| CliError(format!("bad trace: {e}")))?;
    let r = mcm_core::tracerun::run_trace(&exp.memory, ops, &exp.interface)
        .map_err(|e| CliError(format!("replay failed: {e}")))?;
    Ok(format!(
        "replayed {} ops ({:.1} MB) on {} ch @ {} MHz:\n  drain time {:.3} ms, {:.2} GB/s, {}\n",
        r.ops,
        r.bytes as f64 / 1e6,
        o.channels,
        o.clock_mhz,
        r.access_time.as_ms_f64(),
        r.bandwidth_bytes_per_s / 1e9,
        r.power
    ))
}

fn run_steady(o: &RunOptions, frames: u32) -> Result<String, CoreError> {
    let exp = build_experiment(o);
    let r = mcm_core::steady::run_steady_state(&exp, frames)?;
    let mut out = format!(
        "{} x {} ch @ {} MHz, {frames} consecutive frames\n",
        o.point, o.channels, o.clock_mhz
    );
    if let Some(steady) = r.steady_access_time() {
        out += &format!("  steady access time: {steady}\n");
    }
    let worst = r.frames.iter().map(|f| f.access_time).max().unwrap();
    out += &format!("  worst frame:        {worst}\n");
    out += &format!("  all real-time:      {}\n", r.all_real_time());
    out += &format!("  sustained power:    {}\n", r.power);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn help_contains_all_commands() {
        let out = execute(&Command::Help).unwrap();
        for c in ["repro", "fig3", "run", "headroom", "--power-down"] {
            assert!(out.contains(c), "usage text missing {c}");
        }
    }

    #[test]
    fn table_commands_render_without_simulation() {
        let out = execute(&Command::Table1).unwrap();
        assert!(out.contains("Video encoder"));
        let out = execute(&Command::Table2).unwrap();
        assert!(out.contains("BC0"));
    }

    #[test]
    fn run_command_produces_text_and_json() {
        // Small/fast configuration.
        let cmd = parse_args(["run", "--format", "720p30", "--channels", "8", "--clock", "533"])
            .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("access time"));

        let cmd = parse_args([
            "run", "--format", "720p30", "--channels", "8", "--clock", "533", "--json",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["channels"], 8);
        assert!(v["access_time_ms"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn infeasible_run_reports_cleanly() {
        let cmd = parse_args(["run", "--format", "2160p30", "--channels", "1"]).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.to_string().contains("simulation failed"));
    }
}

#[cfg(test)]
mod steady_and_viewfinder_tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn steady_command_runs() {
        let cmd = parse_args([
            "steady", "--format", "720p30", "--channels", "8", "--clock", "533",
            "--frames", "3",
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("3 consecutive frames"));
        assert!(out.contains("steady access time"));
    }

    #[test]
    fn viewfinder_flag_cuts_the_load() {
        let json = |extra: &[&str]| {
            let mut args = vec!["run", "--format", "720p30", "--channels", "8",
                                "--clock", "533", "--json"];
            args.extend_from_slice(extra);
            let out = execute(&parse_args(args).unwrap()).unwrap();
            serde_json::from_str::<serde_json::Value>(&out).unwrap()
        };
        let rec = json(&[]);
        let vf = json(&["--viewfinder"]);
        let rec_bytes = rec["bytes_per_frame"].as_u64().unwrap();
        let vf_bytes = vf["bytes_per_frame"].as_u64().unwrap();
        assert!(vf_bytes * 2 < rec_bytes, "viewfinder {vf_bytes} vs recording {rec_bytes}");
    }
}

#[cfg(test)]
mod trace_cli_tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn dump_then_replay_roundtrips() {
        let dir = std::env::temp_dir().join("mcm_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame.trace");
        let path_s = path.to_str().unwrap();

        let cmd = parse_args([
            "trace-dump", "--format", "720p30", "--channels", "2",
            "--chunk", "fixed:4096", "--out", path_s,
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("wrote"));

        let cmd = parse_args([
            "trace-run", "--channels", "2", "--clock", "533", "--in", path_s,
        ])
        .unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("replayed"), "{out}");
        assert!(out.contains("GB/s"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_trace_paths_error_cleanly() {
        let err = parse_args(["trace-dump", "--format", "720p30"]).unwrap_err();
        assert!(err.to_string().contains("--out"));
        let cmd = parse_args(["trace-run", "--in", "/nonexistent/file"]).unwrap();
        let err = execute(&cmd).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }
}

#[cfg(test)]
mod config_cli_tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn config_dump_then_run_roundtrips() {
        let cmd = parse_args([
            "config-dump", "--format", "720p30", "--channels", "8", "--clock", "533",
        ])
        .unwrap();
        let json = execute(&cmd).unwrap();
        assert!(json.contains("\"width\": 1280"), "{json}");

        let dir = std::env::temp_dir().join("mcm_cli_config_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exp.json");
        // Truncate the run so the test stays fast.
        let mut exp: Experiment = serde_json::from_str(&json).unwrap();
        exp.op_limit = Some(2_000);
        std::fs::write(&path, serde_json::to_string(&exp).unwrap()).unwrap();

        let cmd = parse_args(["config-run", path.to_str().unwrap()]).unwrap();
        let out = execute(&cmd).unwrap();
        assert!(out.contains("access time"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_config_file_errors_cleanly() {
        let err = execute(&Command::ConfigRun { path: "/nonexistent.json".into() }).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
        let dir = std::env::temp_dir();
        let path = dir.join("mcm_bad_config.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = execute(&Command::ConfigRun { path: path.to_str().unwrap().into() }).unwrap_err();
        assert!(err.to_string().contains("bad experiment config"));
        std::fs::remove_file(&path).ok();
    }
}
