//! Argument parsing for the `mcm` binary.

use core::fmt;

use mcm_core::{ChunkPolicy, ExecutionPolicy, Pacing, Parallelism};
use mcm_ctrl::{PagePolicy, PowerDownPolicy};
use mcm_dram::AddressMapping;
use mcm_load::{HdOperatingPoint, Workload};

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// Regenerate Table I.
    Table1,
    /// Regenerate Table II.
    Table2,
    /// Regenerate Fig. 3.
    Fig3,
    /// Regenerate Fig. 4.
    Fig4,
    /// Regenerate Fig. 5.
    Fig5,
    /// Regenerate the XDR comparison.
    Xdr,
    /// Regenerate everything in paper order.
    Repro,
    /// Run one ad-hoc experiment.
    Run(RunOptions),
    /// Report the maximum sustainable frame rate for a configuration.
    Headroom(RunOptions),
    /// Run a multi-frame steady-state session.
    Steady {
        /// The configuration.
        options: RunOptions,
        /// Number of consecutive frames.
        frames: u32,
    },
    /// Print a per-stage memory-time profile for a configuration.
    Profile(RunOptions),
    /// Render the first cycles of channel 0's command schedule.
    Timeline {
        /// The configuration.
        options: RunOptions,
        /// Cycle window width.
        cycles: u64,
    },
    /// Print the resolved device datasheet.
    Datasheet {
        /// Device preset name.
        device: String,
        /// Interface clock, MHz.
        clock_mhz: u64,
    },
    /// Print the experiment configuration as editable JSON.
    ConfigDump(RunOptions),
    /// Run an experiment described by a JSON config file.
    ConfigRun {
        /// Path to the JSON experiment file.
        path: String,
    },
    /// Dump one frame's operation stream to a trace file.
    TraceDump {
        /// The configuration (format, chunking).
        options: RunOptions,
        /// Output path (`-` = stdout).
        out: String,
    },
    /// Replay a trace file against a memory configuration.
    TraceRun {
        /// The memory configuration.
        options: RunOptions,
        /// Input path.
        input: String,
    },
    /// Conformance-check a configuration: config lints, cross-channel
    /// invariants and a bounded trace audit.
    Check(RunOptions),
    /// Statically lint a configuration without simulating: config-structure
    /// rules (`MCM1xx`) plus the feasibility analysis (`MCM4xx`).
    Lint(RunOptions),
    /// Sweep a grid of configurations on the parallel engine.
    Sweep(SweepArgs),
    /// Run one instrumented experiment and print its observability report.
    Report(ReportArgs),
    /// Measure the simulator's own throughput and write `BENCH_sim.json`.
    Bench(BenchArgs),
    /// Generate, describe or save a deterministic fault plan.
    Fault(FaultArgs),
    /// Run the long-lived HTTP/JSON service.
    Serve(ServeArgs),
}

/// The one output-format selector shared by every command: `--json`,
/// `--csv` and `--trace` mean the same thing everywhere, and commands
/// without a given format refuse the flag at parse time instead of
/// silently ignoring it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable text (the default everywhere).
    #[default]
    Text,
    /// Machine-readable JSON.
    Json,
    /// CSV rows.
    Csv,
    /// Chrome `trace_event` JSON for Perfetto / `chrome://tracing`.
    Trace,
}

impl fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OutputFormat::Text => "text",
            OutputFormat::Json => "--json",
            OutputFormat::Csv => "--csv",
            OutputFormat::Trace => "--trace",
        })
    }
}

/// The machine formats `mcm sweep` can export.
const SWEEP_FORMATS: [OutputFormat; 2] = [OutputFormat::Json, OutputFormat::Csv];

/// Refuses formats a command has no renderer for, with the supported
/// alternatives spelled out.
fn ensure_output(
    cmd: &str,
    output: OutputFormat,
    supported: &[OutputFormat],
) -> Result<(), CliError> {
    if output == OutputFormat::Text || supported.contains(&output) {
        return Ok(());
    }
    let flags: Vec<String> = supported.iter().map(|f| f.to_string()).collect();
    Err(CliError(if flags.is_empty() {
        format!("'mcm {cmd}' has text output only ({output} is not supported)")
    } else {
        format!(
            "'mcm {cmd}' does not support {output} (supported: {})",
            flags.join(", ")
        )
    }))
}

/// Options of `mcm serve`: the long-lived HTTP/JSON service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Persistent result-store directory.
    pub store: String,
    /// Concurrent job slots.
    pub jobs: usize,
    /// Worker threads per job (None = RAYON_NUM_THREADS / all cores).
    pub threads: Option<usize>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:7700".to_string(),
            store: "mcm-store".to_string(),
            jobs: 2,
            threads: None,
        }
    }
}

/// Options of `mcm fault`: build a deterministic [`mcm_fault::FaultPlan`]
/// and describe it, print it as JSON, or write it to a file for
/// `mcm run --faults <plan.json>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultArgs {
    /// Seed for the deterministic plan generator.
    pub seed: u64,
    /// Channel count the plan must be valid for.
    pub channels: u32,
    /// Explicit channels to lose. Empty = the seeded mixed scenario.
    pub lose: Vec<u32>,
    /// Where to write the plan JSON (None = describe on stdout).
    pub out: Option<String>,
    /// Output format (`--json` prints the plan instead of the description).
    pub output: OutputFormat,
}

impl Default for FaultArgs {
    fn default() -> Self {
        FaultArgs {
            seed: 7,
            channels: 4,
            lose: Vec::new(),
            out: None,
            output: OutputFormat::Text,
        }
    }
}

/// Options of `mcm bench`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Trim the grid/session/sweep scenarios for CI smoke runs.
    pub quick: bool,
    /// Where the JSON report is written.
    pub out: String,
    /// Override the measured repeats per scenario.
    pub repeats: Option<u32>,
    /// Prior report to gate against: fail on a >20% headline events/sec
    /// regression.
    pub baseline: Option<String>,
    /// Execution policy applied to the base scenarios
    /// (`--execution <spec>` / `--threads <N>`).
    pub execution: ExecutionPolicy,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            quick: false,
            out: "BENCH_sim.json".to_string(),
            repeats: None,
            baseline: None,
            execution: ExecutionPolicy::default(),
        }
    }
}

/// Options of `mcm report`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportArgs {
    /// The configuration to instrument (accepts every `mcm run` flag).
    pub options: RunOptions,
    /// Timeline bucket width, microseconds.
    pub timeline_bucket_us: u64,
    /// Also print the raw latency-histogram buckets (text output only).
    pub histogram: bool,
    /// Cap on simulated operations (None = the whole frame).
    pub op_limit: Option<u64>,
    /// Export format.
    pub output: OutputFormat,
}

impl Default for ReportArgs {
    fn default() -> Self {
        ReportArgs {
            options: RunOptions::default(),
            timeline_bucket_us: 1,
            histogram: false,
            op_limit: None,
            output: OutputFormat::Text,
        }
    }
}

/// Options of `mcm sweep`. The default grid is the paper's Fig. 4/5 grid:
/// all five HD operating points across 1, 2, 4 and 8 channels at 400 MHz.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Operating points to sweep.
    pub points: Vec<HdOperatingPoint>,
    /// Channel counts to sweep.
    pub channels: Vec<u32>,
    /// Interface clocks to sweep, MHz.
    pub clocks: Vec<u64>,
    /// Worker threads (None = rayon default / RAYON_NUM_THREADS).
    pub threads: Option<usize>,
    /// Result cache directory (None = no cache).
    pub cache: Option<String>,
    /// Workload models to sweep (`mcm run --workload` names).
    pub workloads: Vec<Workload>,
    /// Cap on simulated operations per point.
    pub op_limit: Option<u64>,
    /// Export format.
    pub output: OutputFormat,
    /// Print per-point progress to stderr.
    pub progress: bool,
    /// Statically prune infeasible points before simulating
    /// (`SweepOptions::prelint`).
    pub prelint: bool,
    /// Per-point execution policy (`--execution <spec>`). Point-level,
    /// distinct from `--threads` which sizes the sweep worker pool.
    pub execution: ExecutionPolicy,
    /// Run only shard `index` of `of` (`--shard i/n`, 0-based). Shard
    /// result files are JSON-only and recombine with `--merge`.
    pub shard: Option<(usize, usize)>,
    /// Checkpoint log to create or extend (`--checkpoint <log>`): every
    /// completed point is recorded for crash-safe resume.
    pub checkpoint: Option<String>,
    /// Checkpoint log to resume from (`--resume <log>`); unlike
    /// `--checkpoint` the log must already exist.
    pub resume: Option<String>,
    /// Shard result files to merge (`--merge <files...>`) instead of
    /// sweeping; the output is byte-identical to the unsharded run.
    pub merge: Vec<String>,
    /// Where points execute (`--executor local|serve:<addr>[,<addr>...]`).
    pub executor: ExecutorArg,
}

/// Where `mcm sweep` executes its points.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ExecutorArg {
    /// In-process, on the rayon pool.
    #[default]
    Local,
    /// On remote `mcm serve` workers over HTTP/JSON, round-robin with
    /// retry and dead-worker re-queueing.
    Serve(Vec<String>),
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            points: HdOperatingPoint::ALL.to_vec(),
            channels: vec![1, 2, 4, 8],
            clocks: vec![400],
            workloads: vec![Workload::TableI],
            threads: None,
            cache: None,
            op_limit: None,
            output: OutputFormat::Text,
            progress: false,
            prelint: false,
            execution: ExecutionPolicy::default(),
            shard: None,
            checkpoint: None,
            resume: None,
            merge: Vec::new(),
            executor: ExecutorArg::Local,
        }
    }
}

/// Options of `mcm run` / `mcm headroom`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Operating point.
    pub point: HdOperatingPoint,
    /// Channel count.
    pub channels: u32,
    /// Interface clock, MHz.
    pub clock_mhz: u64,
    /// Address multiplexing.
    pub mapping: AddressMapping,
    /// Row-buffer policy.
    pub page: PagePolicy,
    /// CKE policy.
    pub power_down: PowerDownPolicy,
    /// Interleave granule, bytes.
    pub granule: u64,
    /// Master transaction sizing.
    pub chunk: ChunkPolicy,
    /// Arrival pacing.
    pub pacing: Pacing,
    /// Workload model driving the traffic (`--workload <name>`).
    pub workload: Workload,
    /// Output format (`--json` where the command supports it).
    pub output: OutputFormat,
    /// Viewfinder-only mode (no encoding/storage traffic).
    pub viewfinder: bool,
    /// Run the conformance checks alongside the simulation.
    pub verify: bool,
    /// Path to a fault-plan JSON file to inject (None = healthy).
    pub faults: Option<String>,
    /// Cap on simulated operations (None = the whole frame).
    pub op_limit: Option<u64>,
    /// How the run executes (`--execution <spec>` / `--threads <N>`).
    pub execution: ExecutionPolicy,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            point: HdOperatingPoint::Hd1080p30,
            channels: 4,
            clock_mhz: 400,
            mapping: AddressMapping::Rbc,
            page: PagePolicy::Open,
            power_down: PowerDownPolicy::immediate(),
            granule: 16,
            chunk: ChunkPolicy::PerChannel(64),
            pacing: Pacing::Greedy,
            workload: Workload::TableI,
            output: OutputFormat::Text,
            viewfinder: false,
            verify: false,
            faults: None,
            op_limit: None,
            execution: ExecutionPolicy::default(),
        }
    }
}

/// A CLI parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn parse_point(s: &str) -> Result<HdOperatingPoint, CliError> {
    match s {
        "720p30" => Ok(HdOperatingPoint::Hd720p30),
        "720p60" => Ok(HdOperatingPoint::Hd720p60),
        "1080p30" => Ok(HdOperatingPoint::Hd1080p30),
        "1080p60" => Ok(HdOperatingPoint::Hd1080p60),
        "2160p30" => Ok(HdOperatingPoint::Uhd2160p30),
        _ => Err(CliError(format!(
            "unknown format '{s}' (expected 720p30, 720p60, 1080p30, 1080p60 or 2160p30)"
        ))),
    }
}

fn parse_power_down(s: &str) -> Result<PowerDownPolicy, CliError> {
    if s == "immediate" {
        return Ok(PowerDownPolicy::immediate());
    }
    if s == "never" {
        return Ok(PowerDownPolicy::Never);
    }
    if let Some(n) = s.strip_prefix("idle:") {
        let n: u64 = n
            .parse()
            .map_err(|_| CliError(format!("bad idle threshold in '{s}'")))?;
        return Ok(PowerDownPolicy::AfterIdleCycles(n));
    }
    if let Some(n) = s.strip_prefix("sr:") {
        let n: u64 = n
            .parse()
            .map_err(|_| CliError(format!("bad self-refresh threshold in '{s}'")))?;
        return Ok(PowerDownPolicy::PowerDownThenSelfRefresh {
            pd_after: 1,
            sr_after: n,
        });
    }
    Err(CliError(format!(
        "unknown power-down policy '{s}' (expected immediate, never, idle:N or sr:N)"
    )))
}

fn parse_chunk(s: &str) -> Result<ChunkPolicy, CliError> {
    if let Some(n) = s.strip_prefix("perch:") {
        let n: u32 = n
            .parse()
            .map_err(|_| CliError(format!("bad per-channel chunk in '{s}'")))?;
        return Ok(ChunkPolicy::PerChannel(n));
    }
    if let Some(n) = s.strip_prefix("fixed:") {
        let n: u32 = n
            .parse()
            .map_err(|_| CliError(format!("bad fixed chunk in '{s}'")))?;
        return Ok(ChunkPolicy::Fixed(n));
    }
    Err(CliError(format!(
        "unknown chunk policy '{s}' (expected perch:N or fixed:N)"
    )))
}

fn parse_workload(s: &str) -> Result<Workload, CliError> {
    Workload::parse(s).map_err(|e| CliError(format!("bad workload '{s}': {e}")))
}

fn parse_run_options<'a>(mut args: impl Iterator<Item = &'a str>) -> Result<RunOptions, CliError> {
    let mut opts = RunOptions::default();
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| CliError(format!("flag '{flag}' needs a value")))
        };
        match flag {
            "--format" => opts.point = parse_point(value()?)?,
            "--channels" => {
                opts.channels = value()?
                    .parse()
                    .map_err(|_| CliError("bad --channels value".into()))?
            }
            "--clock" => {
                opts.clock_mhz = value()?
                    .parse()
                    .map_err(|_| CliError("bad --clock value".into()))?
            }
            "--mapping" => {
                opts.mapping = match value()? {
                    "rbc" => AddressMapping::Rbc,
                    "brc" => AddressMapping::Brc,
                    other => return Err(CliError(format!("unknown mapping '{other}'"))),
                }
            }
            "--page" => {
                opts.page = match value()? {
                    "open" => PagePolicy::Open,
                    "closed" => PagePolicy::Closed,
                    other => return Err(CliError(format!("unknown page policy '{other}'"))),
                }
            }
            "--power-down" => opts.power_down = parse_power_down(value()?)?,
            "--granule" => {
                opts.granule = value()?
                    .parse()
                    .map_err(|_| CliError("bad --granule value".into()))?
            }
            "--chunk" => opts.chunk = parse_chunk(value()?)?,
            "--paced" => opts.pacing = Pacing::Paced,
            "--workload" => opts.workload = parse_workload(value()?)?,
            "--json" => opts.output = OutputFormat::Json,
            "--csv" => opts.output = OutputFormat::Csv,
            "--trace" => opts.output = OutputFormat::Trace,
            "--viewfinder" => opts.viewfinder = true,
            "--verify" => opts.verify = true,
            "--faults" => opts.faults = Some(value()?.to_string()),
            "--op-limit" => {
                opts.op_limit = Some(
                    value()?
                        .parse()
                        .map_err(|_| CliError("bad --op-limit value".into()))?,
                )
            }
            "--execution" => {
                opts.execution = value()?
                    .parse()
                    .map_err(|e| CliError(format!("bad --execution value: {e}")))?
            }
            "--threads" => {
                let threads: usize = value()?
                    .parse()
                    .map_err(|_| CliError("bad --threads value".into()))?;
                opts.execution.parallelism = Parallelism::PerChannel { threads };
            }
            other => return Err(CliError(format!("unknown flag '{other}'"))),
        }
    }
    Ok(opts)
}

/// Parses an argument list (without the program name).
pub fn parse_args<'a>(args: impl IntoIterator<Item = &'a str>) -> Result<Command, CliError> {
    let mut it = args.into_iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "table1" => Ok(Command::Table1),
        "table2" => Ok(Command::Table2),
        "fig3" => Ok(Command::Fig3),
        "fig4" => Ok(Command::Fig4),
        "fig5" => Ok(Command::Fig5),
        "xdr" => Ok(Command::Xdr),
        "repro" => Ok(Command::Repro),
        "run" => {
            let o = parse_run_options(it)?;
            ensure_output("run", o.output, &[OutputFormat::Json])?;
            Ok(Command::Run(o))
        }
        "check" => {
            let o = parse_run_options(it)?;
            ensure_output("check", o.output, &[OutputFormat::Json])?;
            Ok(Command::Check(o))
        }
        "lint" => {
            let o = parse_run_options(it)?;
            ensure_output("lint", o.output, &[OutputFormat::Json])?;
            Ok(Command::Lint(o))
        }
        "headroom" => {
            let o = parse_run_options(it)?;
            ensure_output("headroom", o.output, &[])?;
            Ok(Command::Headroom(o))
        }
        "profile" => {
            let o = parse_run_options(it)?;
            ensure_output("profile", o.output, &[])?;
            Ok(Command::Profile(o))
        }
        "config-dump" => {
            let o = parse_run_options(it)?;
            ensure_output("config-dump", o.output, &[])?;
            Ok(Command::ConfigDump(o))
        }
        "datasheet" => {
            let mut device = "mobile".to_string();
            let mut clock = 400u64;
            let rest: Vec<&str> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                match rest[i] {
                    "--device" => {
                        device = rest
                            .get(i + 1)
                            .ok_or_else(|| CliError("--device needs a value".into()))?
                            .to_string();
                        i += 2;
                    }
                    "--clock" => {
                        clock = rest
                            .get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| CliError("bad --clock value".into()))?;
                        i += 2;
                    }
                    other => return Err(CliError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Datasheet {
                device,
                clock_mhz: clock,
            })
        }
        "timeline" => {
            let rest: Vec<&str> = it.collect();
            let mut cycles = 120u64;
            let mut filtered = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                if rest[i] == "--cycles" {
                    let v = rest
                        .get(i + 1)
                        .ok_or_else(|| CliError("--cycles needs a value".into()))?;
                    cycles = v
                        .parse()
                        .map_err(|_| CliError(format!("bad --cycles value '{v}'")))?;
                    i += 2;
                } else {
                    filtered.push(rest[i]);
                    i += 1;
                }
            }
            let options = parse_run_options(filtered.into_iter())?;
            ensure_output("timeline", options.output, &[])?;
            Ok(Command::Timeline { options, cycles })
        }
        "config-run" => {
            let path = it
                .next()
                .ok_or_else(|| CliError("config-run requires a path".into()))?;
            Ok(Command::ConfigRun {
                path: path.to_string(),
            })
        }
        "trace-dump" | "trace-run" => {
            let rest: Vec<&str> = it.collect();
            let mut path: Option<String> = None;
            let mut filtered = Vec::new();
            let mut i = 0;
            let flag = if cmd == "trace-dump" { "--out" } else { "--in" };
            while i < rest.len() {
                if rest[i] == flag {
                    let v = rest
                        .get(i + 1)
                        .ok_or_else(|| CliError(format!("{flag} needs a value")))?;
                    path = Some((*v).to_string());
                    i += 2;
                } else {
                    filtered.push(rest[i]);
                    i += 1;
                }
            }
            let path = path.ok_or_else(|| CliError(format!("{cmd} requires {flag} <path>")))?;
            let options = parse_run_options(filtered.into_iter())?;
            ensure_output(cmd, options.output, &[])?;
            Ok(if cmd == "trace-dump" {
                Command::TraceDump { options, out: path }
            } else {
                Command::TraceRun {
                    options,
                    input: path,
                }
            })
        }
        "sweep" => {
            let mut a = SweepArgs::default();
            let mut it = it.peekable();
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| CliError(format!("flag '{flag}' needs a value")))
                };
                match flag {
                    "--formats" => {
                        a.points = value()?
                            .split(',')
                            .map(parse_point)
                            .collect::<Result<_, _>>()?
                    }
                    "--channels" => {
                        a.channels = value()?
                            .split(',')
                            .map(|v| {
                                v.parse()
                                    .map_err(|_| CliError(format!("bad channel count '{v}'")))
                            })
                            .collect::<Result<_, _>>()?
                    }
                    "--clocks" => {
                        a.clocks = value()?
                            .split(',')
                            .map(|v| v.parse().map_err(|_| CliError(format!("bad clock '{v}'"))))
                            .collect::<Result<_, _>>()?
                    }
                    "--workloads" => {
                        a.workloads = value()?
                            .split(',')
                            .map(parse_workload)
                            .collect::<Result<_, _>>()?
                    }
                    "--threads" => {
                        a.threads = Some(
                            value()?
                                .parse()
                                .map_err(|_| CliError("bad --threads value".into()))?,
                        )
                    }
                    "--cache" => a.cache = Some(value()?.to_string()),
                    "--op-limit" => {
                        a.op_limit = Some(
                            value()?
                                .parse()
                                .map_err(|_| CliError("bad --op-limit value".into()))?,
                        )
                    }
                    "--json" => a.output = OutputFormat::Json,
                    "--csv" => a.output = OutputFormat::Csv,
                    "--trace" => {
                        ensure_output("sweep", OutputFormat::Trace, &SWEEP_FORMATS)?;
                    }
                    "--progress" => a.progress = true,
                    "--prelint" => a.prelint = true,
                    "--execution" => {
                        a.execution = value()?
                            .parse()
                            .map_err(|e| CliError(format!("bad --execution value: {e}")))?
                    }
                    "--shard" => {
                        let v = value()?;
                        let parsed = v
                            .split_once('/')
                            .and_then(|(i, n)| Some((i.parse().ok()?, n.parse().ok()?)));
                        a.shard = Some(parsed.ok_or_else(|| {
                            CliError(format!("bad --shard value '{v}' (expected i/n, e.g. 0/4)"))
                        })?);
                    }
                    "--checkpoint" => a.checkpoint = Some(value()?.to_string()),
                    "--resume" => a.resume = Some(value()?.to_string()),
                    "--merge" => {
                        // Greedy: every following non-flag token is a
                        // shard file (commas inside a token also split).
                        while let Some(next) = it.peek() {
                            if next.starts_with("--") {
                                break;
                            }
                            let token = it.next().expect("peeked token exists");
                            a.merge.extend(token.split(',').map(str::to_string));
                        }
                        if a.merge.is_empty() {
                            return Err(CliError(
                                "flag '--merge' needs at least one shard file".into(),
                            ));
                        }
                    }
                    "--executor" => {
                        let v = value()?;
                        a.executor = if v == "local" {
                            ExecutorArg::Local
                        } else if let Some(addrs) = v.strip_prefix("serve:") {
                            let addrs: Vec<String> = addrs
                                .split(',')
                                .filter(|s| !s.is_empty())
                                .map(str::to_string)
                                .collect();
                            if addrs.is_empty() {
                                return Err(CliError(
                                    "--executor serve: needs at least one address".into(),
                                ));
                            }
                            ExecutorArg::Serve(addrs)
                        } else {
                            return Err(CliError(format!(
                                "bad --executor value '{v}' (expected local or serve:<addr>[,<addr>...])"
                            )));
                        };
                    }
                    other => return Err(CliError(format!("unknown flag '{other}'"))),
                }
            }
            if a.checkpoint.is_some() && a.resume.is_some() {
                return Err(CliError(
                    "--checkpoint and --resume are exclusive (resume extends the same log)".into(),
                ));
            }
            Ok(Command::Sweep(a))
        }
        "bench" => {
            let mut a = BenchArgs::default();
            let mut it = it;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| CliError(format!("flag '{flag}' needs a value")))
                };
                match flag {
                    "--quick" => a.quick = true,
                    "--out" => a.out = value()?.to_string(),
                    "--repeats" => {
                        a.repeats = Some(
                            value()?
                                .parse()
                                .map_err(|_| CliError("bad --repeats value".into()))?,
                        )
                    }
                    "--baseline" => a.baseline = Some(value()?.to_string()),
                    "--execution" => {
                        a.execution = value()?
                            .parse()
                            .map_err(|e| CliError(format!("bad --execution value: {e}")))?
                    }
                    "--threads" => {
                        let threads: usize = value()?
                            .parse()
                            .map_err(|_| CliError("bad --threads value".into()))?;
                        a.execution.parallelism = Parallelism::PerChannel { threads };
                    }
                    other => return Err(CliError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Bench(a))
        }
        "fault" => {
            let mut a = FaultArgs::default();
            let mut it = it;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| CliError(format!("flag '{flag}' needs a value")))
                };
                match flag {
                    "--seed" => {
                        let v = value()?;
                        // Seeds are often quoted in hex in fault reports.
                        a.seed = if let Some(hex) = v.strip_prefix("0x") {
                            u64::from_str_radix(hex, 16)
                        } else {
                            v.parse()
                        }
                        .map_err(|_| CliError(format!("bad --seed value '{v}'")))?
                    }
                    "--channels" => {
                        a.channels = value()?
                            .parse()
                            .map_err(|_| CliError("bad --channels value".into()))?
                    }
                    "--lose" => {
                        a.lose = value()?
                            .split(',')
                            .map(|v| {
                                v.parse()
                                    .map_err(|_| CliError(format!("bad channel number '{v}'")))
                            })
                            .collect::<Result<_, _>>()?
                    }
                    "--out" => a.out = Some(value()?.to_string()),
                    "--json" => a.output = OutputFormat::Json,
                    "--csv" | "--trace" => {
                        let format = if flag == "--csv" {
                            OutputFormat::Csv
                        } else {
                            OutputFormat::Trace
                        };
                        ensure_output("fault", format, &[OutputFormat::Json])?;
                    }
                    other => return Err(CliError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Fault(a))
        }
        "serve" => {
            let mut a = ServeArgs::default();
            let mut it = it;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| CliError(format!("flag '{flag}' needs a value")))
                };
                match flag {
                    "--addr" => a.addr = value()?.to_string(),
                    "--store" => a.store = value()?.to_string(),
                    "--jobs" => {
                        a.jobs = value()?
                            .parse()
                            .map_err(|_| CliError("bad --jobs value".into()))?;
                        if a.jobs == 0 {
                            return Err(CliError("--jobs must be at least 1".into()));
                        }
                    }
                    "--threads" => {
                        a.threads = Some(
                            value()?
                                .parse()
                                .map_err(|_| CliError("bad --threads value".into()))?,
                        )
                    }
                    other => return Err(CliError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Serve(a))
        }
        "report" => {
            // Extract the report-specific flags, pass the rest to the
            // run-option parser.
            let rest: Vec<&str> = it.collect();
            let mut a = ReportArgs::default();
            let mut filtered = Vec::new();
            let mut i = 0;
            let value = |rest: &[&'a str], i: usize, flag: &str| -> Result<&'a str, CliError> {
                rest.get(i + 1)
                    .copied()
                    .ok_or_else(|| CliError(format!("{flag} needs a value")))
            };
            while i < rest.len() {
                match rest[i] {
                    "--timeline-bucket" => {
                        let v = value(&rest, i, "--timeline-bucket")?;
                        a.timeline_bucket_us = v.parse().map_err(|_| {
                            CliError(format!("bad --timeline-bucket value '{v}' (microseconds)"))
                        })?;
                        if a.timeline_bucket_us == 0 {
                            return Err(CliError("--timeline-bucket must be at least 1 µs".into()));
                        }
                        i += 2;
                    }
                    "--op-limit" => {
                        let v = value(&rest, i, "--op-limit")?;
                        a.op_limit = Some(
                            v.parse()
                                .map_err(|_| CliError(format!("bad --op-limit value '{v}'")))?,
                        );
                        i += 2;
                    }
                    "--histogram" => {
                        a.histogram = true;
                        i += 1;
                    }
                    other => {
                        filtered.push(other);
                        i += 1;
                    }
                }
            }
            // --json/--csv/--trace are run options now; report renders
            // all of them.
            a.options = parse_run_options(filtered.into_iter())?;
            a.output = a.options.output;
            Ok(Command::Report(a))
        }
        "steady" => {
            // Extract --frames N, pass the rest to the run-option parser.
            let rest: Vec<&str> = it.collect();
            let mut frames = 30u32;
            let mut filtered = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                if rest[i] == "--frames" {
                    let v = rest
                        .get(i + 1)
                        .ok_or_else(|| CliError("--frames needs a value".into()))?;
                    frames = v
                        .parse()
                        .map_err(|_| CliError(format!("bad --frames value '{v}'")))?;
                    i += 2;
                } else {
                    filtered.push(rest[i]);
                    i += 1;
                }
            }
            Ok(Command::Steady {
                options: parse_run_options(filtered.into_iter())?,
                frames,
            })
        }
        other => Err(CliError(format!(
            "unknown command '{other}' (try 'mcm help')"
        ))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
mcm — multi-channel memories for video recording (DATE 2009 reproduction)

USAGE:
    mcm <COMMAND> [OPTIONS]

COMMANDS:
    repro       regenerate every paper table and figure
    table1      Table I  — per-stage memory bandwidth requirements
    table2      Table II — memory mapping over channels
    fig3        Fig. 3   — access time vs clock (720p30)
    fig4        Fig. 4   — access time vs format (400 MHz)
    fig5        Fig. 5   — power vs format (400 MHz)
    xdr         the XDR comparison
    run         run one experiment (see OPTIONS)
    report      run one instrumented experiment and print counters,
                latency percentiles and timelines (see REPORT OPTIONS)
    sweep       sweep a grid in parallel (see SWEEP OPTIONS)
    bench       measure simulator throughput, write BENCH_sim.json
                (see BENCH OPTIONS)
    check       conformance-check a configuration (MCMxxx rules; --json for machines)
    lint        statically lint a configuration without simulating
                (MCM1xx + MCM4xx rules; --json for machines)
    fault       build a deterministic fault plan for --faults
                (see FAULT OPTIONS)
    serve       long-lived HTTP/JSON service: POST /runs, POST /sweeps,
                GET /jobs/:id, persistent result store (see SERVE OPTIONS)
    headroom    maximum sustainable fps for a configuration
    steady      multi-frame session (add --frames N, default 30)
    profile     per-stage memory-time profile
    timeline    ASCII command waveform of channel 0 (--cycles N)
    datasheet   resolved device parameters (--device mobile|ddr2|future|large, --clock MHz)
    config-dump print an experiment as editable JSON
    config-run  run an experiment from a JSON file
    trace-dump  write one frame's ops to a trace file (--out <path>)
    trace-run   replay a trace file (--in <path>)
    help        this text

OPTIONS (run / headroom):
    --format <720p30|720p60|1080p30|1080p60|2160p30>   [1080p30]
    --channels <N>                                     [4]
    --clock <MHz>                                      [400]
    --mapping <rbc|brc>                                [rbc]
    --page <open|closed>                               [open]
    --power-down <immediate|never|idle:N|sr:N>         [immediate]
    --granule <bytes>                                  [16]
    --chunk <perch:N|fixed:N>                          [perch:64]
    --paced                                            [greedy]
    --workload <h264-record|hevc-record|vvc-record|stochastic:SEED[:BURST]|multi-tenant:N>
                select the workload model (docs/WORKLOADS.md)  [h264-record]
    --viewfinder                                       [recording]
    --verify    run the MCMxxx conformance checks too   [off]
    --faults <plan.json>  inject a fault plan (see 'mcm fault')  [healthy]
    --op-limit <N>        cap simulated ops            [full frame]
    --execution <spec>    execution policy: comma list of
                          serial | per-channel[:N] | calendar |
                          binary-heap | memoized        [serial]
    --threads <N>         shorthand for per-channel:N   [serial]
    --json                                             [text]

FAULT OPTIONS:
    --seed <N|0xHEX>    plan generator seed            [7]
    --channels <N>      channel count to plan against  [4]
    --lose <list>       lose exactly these channels (comma list)
                        instead of the seeded mixed scenario
    --out <path>        write the plan JSON here       [stdout]
    --json              print the plan as JSON         [description]

REPORT OPTIONS (accepts every run option, plus):
    --timeline-bucket <us>  bandwidth/energy bucket width  [1]
    --histogram             raw latency-histogram buckets  [percentiles only]
    --op-limit <N>          cap simulated ops              [full frame]
    --json                  full report as JSON            [text]
    --csv                   per-channel counter rows       [text]
    --trace                 Chrome trace_event JSON for Perfetto /
                            chrome://tracing               [text]

BENCH OPTIONS:
    --quick             trimmed scenario set for CI smoke runs  [full]
    --out <path>        where the JSON report goes       [BENCH_sim.json]
    --repeats <N>       measured repeats per scenario    [5, quick: 3]
    --baseline <path>   fail on >20% headline events/sec regression
                        against a prior report           [no gate]
    --execution <spec>  execution policy for the base scenarios
                        (see run OPTIONS)                [serial]
    --threads <N>       shorthand for per-channel:N      [serial]

SERVE OPTIONS:
    --addr <host:port>  bind address (port 0 = ephemeral)  [127.0.0.1:7700]
    --store <dir>       persistent result store            [mcm-store]
    --jobs <N>          concurrent job slots               [2]
    --threads <N>       worker threads per job             [RAYON_NUM_THREADS]

SWEEP OPTIONS (defaults: the paper grid — five formats x 1,2,4,8 channels):
    --formats <comma list of formats>                  [all five]
    --channels <comma list of channel counts>          [1,2,4,8]
    --clocks <comma list of MHz>                       [400]
    --workloads <comma list of workload names>         [h264-record]
    --threads <N>     worker threads                   [RAYON_NUM_THREADS]
    --cache <dir>     content-hash result cache        [off]
    --op-limit <N>    cap simulated ops per point      [full frame]
    --progress        per-point progress on stderr     [off]
    --prelint         statically prune infeasible points before
                      simulating (MCM4xx analysis)     [off]
    --execution <spec> per-point execution policy (see run OPTIONS);
                      point-level, unlike --threads    [serial]
    --shard <i/n>     run only shard i of n (0-based, deterministic
                      split of the expanded grid; --json only)  [whole grid]
    --merge <files...> merge shard result files into the unsharded
                      output, byte-identical (--json/--csv)     [-]
    --checkpoint <log> record completed points in a crash-safe
                      JSONL log for later --resume     [off]
    --resume <log>    resume from an existing checkpoint log:
                      finished points are not re-simulated  [off]
    --executor <local|serve:addr[,addr...]>
                      where points execute: in-process, or on
                      remote 'mcm serve' workers with retry and
                      dead-worker re-queueing          [local]
    --json | --csv    deterministic machine output     [text table]
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_invocation_is_help() {
        assert_eq!(parse_args([]).unwrap(), Command::Help);
        assert_eq!(parse_args(["help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn execution_policy_flags() {
        match parse_args(["run", "--execution", "per-channel:2,memoized"]).unwrap() {
            Command::Run(o) => assert_eq!(
                o.execution,
                ExecutionPolicy::per_channel(2).with_memoize_steady(true)
            ),
            other => panic!("unexpected command {other:?}"),
        }
        match parse_args(["run", "--threads", "4"]).unwrap() {
            Command::Run(o) => assert_eq!(o.execution, ExecutionPolicy::per_channel(4)),
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse_args(["run", "--execution", "warp-drive"]).is_err());
        match parse_args(["bench", "--quick", "--threads", "2"]).unwrap() {
            Command::Bench(a) => assert_eq!(a.execution, ExecutionPolicy::per_channel(2)),
            other => panic!("unexpected command {other:?}"),
        }
        match parse_args(["sweep", "--execution", "binary-heap"]).unwrap() {
            Command::Sweep(a) => {
                assert_eq!(a.execution, "binary-heap".parse().unwrap());
                assert_eq!(a.threads, None, "--execution does not size the pool");
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn figure_commands() {
        assert_eq!(parse_args(["fig3"]).unwrap(), Command::Fig3);
        assert_eq!(parse_args(["table1"]).unwrap(), Command::Table1);
        assert_eq!(parse_args(["repro"]).unwrap(), Command::Repro);
    }

    #[test]
    fn run_defaults() {
        let Command::Run(o) = parse_args(["run"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(o, RunOptions::default());
    }

    #[test]
    fn run_with_everything() {
        let Command::Run(o) = parse_args([
            "run",
            "--format",
            "720p60",
            "--channels",
            "2",
            "--clock",
            "333",
            "--mapping",
            "brc",
            "--page",
            "closed",
            "--power-down",
            "sr:4096",
            "--granule",
            "64",
            "--chunk",
            "fixed:256",
            "--paced",
            "--json",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(o.point, HdOperatingPoint::Hd720p60);
        assert_eq!(o.channels, 2);
        assert_eq!(o.clock_mhz, 333);
        assert_eq!(o.mapping, AddressMapping::Brc);
        assert_eq!(o.page, PagePolicy::Closed);
        assert_eq!(
            o.power_down,
            PowerDownPolicy::PowerDownThenSelfRefresh {
                pd_after: 1,
                sr_after: 4096
            }
        );
        assert_eq!(o.granule, 64);
        assert_eq!(o.chunk, ChunkPolicy::Fixed(256));
        assert_eq!(o.pacing, Pacing::Paced);
        assert_eq!(o.output, OutputFormat::Json);
    }

    #[test]
    fn power_down_forms() {
        assert_eq!(
            parse_power_down("immediate").unwrap(),
            PowerDownPolicy::immediate()
        );
        assert_eq!(parse_power_down("never").unwrap(), PowerDownPolicy::Never);
        assert_eq!(
            parse_power_down("idle:64").unwrap(),
            PowerDownPolicy::AfterIdleCycles(64)
        );
        assert!(parse_power_down("idle:x").is_err());
        assert!(parse_power_down("deep").is_err());
    }

    #[test]
    fn errors_are_friendly() {
        let e = parse_args(["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
        let e = parse_args(["run", "--format", "480p"]).unwrap_err();
        assert!(e.to_string().contains("480p"));
        let e = parse_args(["run", "--channels"]).unwrap_err();
        assert!(e.to_string().contains("needs a value"));
        let e = parse_args(["run", "--bogus", "1"]).unwrap_err();
        assert!(e.to_string().contains("--bogus"));
    }

    #[test]
    fn check_and_verify_parse() {
        let Command::Check(o) = parse_args(["check", "--channels", "8", "--json"]).unwrap() else {
            panic!("expected check");
        };
        assert_eq!(o.channels, 8);
        assert_eq!(o.output, OutputFormat::Json);
        let Command::Run(o) = parse_args(["run", "--verify"]).unwrap() else {
            panic!("expected run");
        };
        assert!(o.verify);
    }

    #[test]
    fn lint_parses_like_run() {
        let Command::Lint(o) =
            parse_args(["lint", "--format", "2160p30", "--channels", "2"]).unwrap()
        else {
            panic!("expected lint");
        };
        assert_eq!(o.point, HdOperatingPoint::Uhd2160p30);
        assert_eq!(o.channels, 2);
        let Command::Lint(o) = parse_args(["lint", "--json"]).unwrap() else {
            panic!("expected lint");
        };
        assert_eq!(o.output, OutputFormat::Json);
    }

    #[test]
    fn sweep_defaults_are_the_paper_grid() {
        let Command::Sweep(a) = parse_args(["sweep"]).unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(a, SweepArgs::default());
        assert_eq!(a.points.len(), 5);
        assert_eq!(a.channels, vec![1, 2, 4, 8]);
        assert_eq!(a.clocks, vec![400]);
    }

    #[test]
    fn sweep_parses_lists_and_knobs() {
        let Command::Sweep(a) = parse_args([
            "sweep",
            "--formats",
            "720p30,1080p60",
            "--channels",
            "2,8",
            "--clocks",
            "200,400",
            "--threads",
            "4",
            "--cache",
            "/tmp/c",
            "--op-limit",
            "5000",
            "--csv",
            "--progress",
            "--prelint",
        ])
        .unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(
            a.points,
            vec![HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p60]
        );
        assert_eq!(a.channels, vec![2, 8]);
        assert_eq!(a.clocks, vec![200, 400]);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.cache.as_deref(), Some("/tmp/c"));
        assert_eq!(a.op_limit, Some(5000));
        assert_eq!(a.output, OutputFormat::Csv);
        assert!(a.progress);
        assert!(a.prelint);
        assert!(parse_args(["sweep", "--formats", "480i"]).is_err());
        assert!(parse_args(["sweep", "--channels", "two"]).is_err());
    }

    #[test]
    fn sweep_distribution_flags_parse_and_refuse_nonsense() {
        let Command::Sweep(a) = parse_args([
            "sweep",
            "--shard",
            "2/8",
            "--checkpoint",
            "log.jsonl",
            "--executor",
            "serve:127.0.0.1:7700,127.0.0.1:7701",
            "--json",
        ])
        .unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(a.shard, Some((2, 8)));
        assert_eq!(a.checkpoint.as_deref(), Some("log.jsonl"));
        assert_eq!(
            a.executor,
            ExecutorArg::Serve(vec![
                "127.0.0.1:7700".to_string(),
                "127.0.0.1:7701".to_string()
            ])
        );

        // `--merge` is greedy up to the next flag, and splits commas.
        let Command::Sweep(a) =
            parse_args(["sweep", "--merge", "a.json", "b.json,c.json", "--csv"]).unwrap()
        else {
            panic!("expected sweep");
        };
        assert_eq!(a.merge, vec!["a.json", "b.json", "c.json"]);
        assert_eq!(a.output, OutputFormat::Csv);

        let Command::Sweep(a) = parse_args(["sweep", "--resume", "log.jsonl"]).unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(a.resume.as_deref(), Some("log.jsonl"));
        assert_eq!(a.executor, ExecutorArg::Local);

        assert!(parse_args(["sweep", "--shard", "3"]).is_err());
        assert!(parse_args(["sweep", "--shard", "a/b"]).is_err());
        assert!(parse_args(["sweep", "--merge"]).is_err());
        assert!(parse_args(["sweep", "--merge", "--json"]).is_err());
        assert!(parse_args(["sweep", "--executor", "carrier-pigeon"]).is_err());
        assert!(parse_args(["sweep", "--executor", "serve:"]).is_err());
        // One log, two spellings: creating and resuming are exclusive.
        assert!(parse_args(["sweep", "--checkpoint", "a", "--resume", "a"]).is_err());
    }

    #[test]
    fn report_defaults_and_knobs() {
        let Command::Report(a) = parse_args(["report"]).unwrap() else {
            panic!("expected report");
        };
        assert_eq!(a, ReportArgs::default());
        assert_eq!(a.output, OutputFormat::Text);
        assert_eq!(a.timeline_bucket_us, 1);

        let Command::Report(a) = parse_args([
            "report",
            "--format",
            "720p30",
            "--channels",
            "2",
            "--timeline-bucket",
            "50",
            "--histogram",
            "--op-limit",
            "4000",
            "--trace",
        ])
        .unwrap() else {
            panic!("expected report");
        };
        assert_eq!(a.options.point, HdOperatingPoint::Hd720p30);
        assert_eq!(a.options.channels, 2);
        assert_eq!(a.timeline_bucket_us, 50);
        assert!(a.histogram);
        assert_eq!(a.op_limit, Some(4000));
        assert_eq!(a.output, OutputFormat::Trace);
    }

    #[test]
    fn report_output_selection_and_errors() {
        let Command::Report(a) = parse_args(["report", "--json"]).unwrap() else {
            panic!("expected report");
        };
        assert_eq!(a.output, OutputFormat::Json);
        let Command::Report(a) = parse_args(["report", "--csv"]).unwrap() else {
            panic!("expected report");
        };
        assert_eq!(a.output, OutputFormat::Csv);

        assert!(parse_args(["report", "--timeline-bucket"]).is_err());
        assert!(parse_args(["report", "--timeline-bucket", "0"]).is_err());
        assert!(parse_args(["report", "--op-limit", "many"]).is_err());
        assert!(parse_args(["report", "--bogus"]).is_err());
    }

    #[test]
    fn bench_defaults_and_knobs() {
        let Command::Bench(a) = parse_args(["bench"]).unwrap() else {
            panic!("expected bench");
        };
        assert_eq!(a, BenchArgs::default());
        assert!(!a.quick);
        assert_eq!(a.out, "BENCH_sim.json");

        let Command::Bench(a) = parse_args([
            "bench",
            "--quick",
            "--out",
            "/tmp/b.json",
            "--repeats",
            "2",
            "--baseline",
            "BENCH_sim.json",
        ])
        .unwrap() else {
            panic!("expected bench");
        };
        assert!(a.quick);
        assert_eq!(a.out, "/tmp/b.json");
        assert_eq!(a.repeats, Some(2));
        assert_eq!(a.baseline.as_deref(), Some("BENCH_sim.json"));

        assert!(parse_args(["bench", "--repeats"]).is_err());
        assert!(parse_args(["bench", "--repeats", "x"]).is_err());
        assert!(parse_args(["bench", "--bogus"]).is_err());
    }

    #[test]
    fn fault_defaults_and_knobs() {
        let Command::Fault(a) = parse_args(["fault"]).unwrap() else {
            panic!("expected fault");
        };
        assert_eq!(a, FaultArgs::default());
        assert_eq!(a.seed, 7);
        assert_eq!(a.channels, 4);
        assert!(a.lose.is_empty());

        let Command::Fault(a) = parse_args([
            "fault",
            "--seed",
            "0xfeed",
            "--channels",
            "8",
            "--lose",
            "0,3",
            "--out",
            "/tmp/plan.json",
            "--json",
        ])
        .unwrap() else {
            panic!("expected fault");
        };
        assert_eq!(a.seed, 0xfeed);
        assert_eq!(a.channels, 8);
        assert_eq!(a.lose, vec![0, 3]);
        assert_eq!(a.out.as_deref(), Some("/tmp/plan.json"));
        assert_eq!(a.output, OutputFormat::Json);

        assert!(parse_args(["fault", "--seed", "many"]).is_err());
        assert!(parse_args(["fault", "--lose", "zero"]).is_err());
        assert!(parse_args(["fault", "--bogus"]).is_err());
    }

    #[test]
    fn run_accepts_a_workload_and_sweep_a_workload_list() {
        let Command::Run(o) = parse_args(["run", "--workload", "hevc-record"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(o.workload.name(), "hevc-record");
        let Command::Run(o) = parse_args(["run", "--workload", "stochastic:9:75"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(o.workload.name(), "stochastic:9:75");
        // The default stays the paper's Table I chain.
        let Command::Run(o) = parse_args(["run"]).unwrap() else {
            panic!("expected run");
        };
        assert!(o.workload.is_default());

        let Command::Sweep(a) =
            parse_args(["sweep", "--workloads", "h264-record,multi-tenant:2"]).unwrap()
        else {
            panic!("expected sweep");
        };
        assert_eq!(a.workloads.len(), 2);
        assert_eq!(a.workloads[1].name(), "multi-tenant:2");

        let e = parse_args(["run", "--workload", "mpeg2"]).unwrap_err();
        assert!(e.to_string().contains("mpeg2"), "{e}");
        assert!(parse_args(["sweep", "--workloads", "h264-record,"]).is_err());
    }

    #[test]
    fn run_accepts_faults_and_op_limit() {
        let Command::Run(o) =
            parse_args(["run", "--faults", "plan.json", "--op-limit", "5000"]).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(o.faults.as_deref(), Some("plan.json"));
        assert_eq!(o.op_limit, Some(5000));
        assert!(parse_args(["run", "--op-limit", "many"]).is_err());
        assert!(parse_args(["run", "--faults"]).is_err());
    }

    #[test]
    fn headroom_parses_like_run() {
        let Command::Headroom(o) =
            parse_args(["headroom", "--format", "2160p30", "--channels", "8"]).unwrap()
        else {
            panic!("expected headroom");
        };
        assert_eq!(o.point, HdOperatingPoint::Uhd2160p30);
        assert_eq!(o.channels, 8);
    }

    #[test]
    fn output_formats_are_uniform_flags() {
        // One selector, same spelling everywhere.
        let Command::Run(o) = parse_args(["run", "--json"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(o.output, OutputFormat::Json);
        let Command::Report(a) = parse_args(["report", "--csv"]).unwrap() else {
            panic!("expected report");
        };
        assert_eq!(a.output, OutputFormat::Csv);
        let Command::Sweep(a) = parse_args(["sweep", "--csv"]).unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(a.output, OutputFormat::Csv);
        let Command::Fault(a) = parse_args(["fault", "--json"]).unwrap() else {
            panic!("expected fault");
        };
        assert_eq!(a.output, OutputFormat::Json);
    }

    #[test]
    fn unsupported_formats_are_refused_per_command() {
        // run/check/lint render text or JSON only.
        for cmd in ["run", "check", "lint"] {
            let e = parse_args([cmd, "--csv"]).unwrap_err().to_string();
            assert!(e.contains("does not support --csv"), "{cmd}: {e}");
            let e = parse_args([cmd, "--trace"]).unwrap_err().to_string();
            assert!(e.contains("does not support --trace"), "{cmd}: {e}");
        }
        // Text-only commands refuse every machine format loudly.
        for cmd in ["headroom", "profile", "config-dump"] {
            let e = parse_args([cmd, "--json"]).unwrap_err().to_string();
            assert!(e.contains("text output only"), "{cmd}: {e}");
        }
        // sweep exports JSON and CSV but has no trace renderer.
        let e = parse_args(["sweep", "--trace"]).unwrap_err().to_string();
        assert!(e.contains("does not support --trace"), "{e}");
        assert!(e.contains("--json, --csv"), "{e}");
        // fault prints text or JSON.
        let e = parse_args(["fault", "--csv"]).unwrap_err().to_string();
        assert!(e.contains("does not support --csv"), "{e}");
    }

    #[test]
    fn serve_defaults_and_knobs() {
        let Command::Serve(a) = parse_args(["serve"]).unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(a, ServeArgs::default());
        assert_eq!(a.addr, "127.0.0.1:7700");
        assert_eq!(a.store, "mcm-store");
        assert_eq!(a.jobs, 2);
        assert_eq!(a.threads, None);

        let Command::Serve(a) = parse_args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--store",
            "/tmp/history",
            "--jobs",
            "4",
            "--threads",
            "2",
        ])
        .unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(a.addr, "127.0.0.1:0");
        assert_eq!(a.store, "/tmp/history");
        assert_eq!(a.jobs, 4);
        assert_eq!(a.threads, Some(2));

        assert!(parse_args(["serve", "--jobs", "0"]).is_err());
        assert!(parse_args(["serve", "--jobs", "many"]).is_err());
        assert!(parse_args(["serve", "--bogus"]).is_err());
    }
}
