//! The crash half of the resume contract (ISSUE 10 satellite): a real
//! `mcm sweep --checkpoint` child process is SIGKILLed mid-grid — no
//! drop handlers, no flushing, exactly like a node failure — and the
//! `--resume` rerun must (a) pick up only the missing points and (b)
//! produce stdout byte-identical to a run that was never interrupted.
//! The in-process flavour of the same contract (engine-level provenance
//! accounting) lives in `crates/sweep/tests/checkpoint.rs`.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_mcm");

/// The sweep under test: 8 points, serial (`--threads 1`), each slow
/// enough (`--op-limit 100000`) that the kill lands with the grid only
/// partly logged.
const GRID: &[&str] = &[
    "sweep",
    "--formats",
    "720p30",
    "--channels",
    "1,2,4,8",
    "--clocks",
    "200,400",
    "--op-limit",
    "100000",
    "--threads",
    "1",
    "--json",
];
const TOTAL: usize = 8;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mcm-kill-resume-{name}-{}", std::process::id()))
}

/// Completed points in the log: entry lines carry `"key":`, the sealed
/// header only `"key_schema"`.
fn entries(log: &Path) -> usize {
    match std::fs::read_to_string(log) {
        Ok(text) => text.lines().filter(|l| l.contains("\"key\":")).count(),
        Err(_) => 0,
    }
}

fn run(extra: &[&str]) -> std::process::Output {
    Command::new(BIN)
        .args(GRID)
        .args(extra)
        .output()
        .expect("mcm binary runs")
}

#[test]
fn a_sigkilled_sweep_resumes_byte_identically() {
    let log = tmp("log.jsonl");
    let _ = std::fs::remove_file(&log);
    let log_s = log.to_str().unwrap();

    // The reference: the same sweep, never interrupted, no checkpoint.
    let reference = run(&[]);
    assert!(reference.status.success(), "reference sweep fails");

    // Start the checkpointed sweep and SIGKILL it as soon as the log
    // holds at least one completed point — a real mid-grid crash.
    let mut child = Command::new(BIN)
        .args(GRID)
        .args(["--checkpoint", log_s])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("mcm binary spawns");
    let deadline = Instant::now() + Duration::from_secs(60);
    while entries(&log) == 0 {
        assert!(
            Instant::now() < deadline,
            "no checkpoint entry appeared within 60s"
        );
        if let Some(status) = child.try_wait().expect("child pollable") {
            panic!("sweep finished (status {status}) before it could be killed — raise --op-limit");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL lands");
    let _ = child.wait();

    let done = entries(&log);
    assert!(
        (1..TOTAL).contains(&done),
        "kill was meant to land mid-grid, log holds {done}/{TOTAL} points"
    );

    // Resume under identical flags, with progress on stderr so the
    // provenance of every point is visible: exactly the logged points
    // come back `resumed`, the rest simulate, and the books balance.
    let resumed = Command::new(BIN)
        .args(GRID)
        .args(["--resume", log_s, "--progress"])
        .output()
        .expect("mcm binary runs");
    assert!(
        resumed.status.success(),
        "resume fails: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let progress = String::from_utf8_lossy(&resumed.stderr);
    let resumed_points = progress.lines().filter(|l| l.contains("— resumed")).count();
    assert_eq!(
        resumed_points, done,
        "every checkpointed point — and only those — must resume:\n{progress}"
    );
    assert_eq!(
        progress.lines().filter(|l| l.starts_with('[')).count(),
        TOTAL,
        "resumed + simulated must cover the grid:\n{progress}"
    );

    // The deliverable: stdout bytes identical to the uninterrupted run.
    assert_eq!(
        resumed.stdout, reference.stdout,
        "resumed export differs from the uninterrupted run"
    );

    // And the log now seals the whole grid: a further resume simulates
    // nothing and still exports the same bytes.
    assert_eq!(entries(&log), TOTAL);
    let third = run(&["--resume", log_s]);
    assert!(third.status.success());
    assert_eq!(third.stdout, reference.stdout);

    let _ = std::fs::remove_file(&log);
}

#[test]
fn resume_refuses_a_missing_or_mismatched_log() {
    let log = tmp("refusals.jsonl");
    let _ = std::fs::remove_file(&log);
    let log_s = log.to_str().unwrap();

    // `--resume` insists the log exists (a typo must not silently start
    // a fresh sweep) ...
    let missing = run(&["--resume", log_s]);
    assert!(!missing.status.success());
    let err = String::from_utf8_lossy(&missing.stderr);
    assert!(err.contains("no such log to resume from"), "{err}");

    // ... and a log written by a *different* sweep is refused, not
    // silently mixed in.
    let first = run(&["--checkpoint", log_s]);
    assert!(first.status.success());
    let other = Command::new(BIN)
        .args([
            "sweep",
            "--formats",
            "1080p30",
            "--channels",
            "2",
            "--op-limit",
            "2000",
            "--json",
            "--resume",
            log_s,
        ])
        .output()
        .expect("mcm binary runs");
    assert!(!other.status.success());
    let err = String::from_utf8_lossy(&other.stderr);
    assert!(err.contains("different sweep"), "{err}");

    let _ = std::fs::remove_file(&log);
}
