//! `mcm-verify`: the conformance-checking and lint subsystem.
//!
//! Three static-analysis passes over the rest of the workspace, each
//! producing [`Diagnostic`]s with stable `MCMxxx` identifiers:
//!
//! * **Trace audit** ([`audit_trace`]): replays a recorded DRAM command
//!   trace through the independent timing oracle
//!   ([`mcm_dram::TraceValidator`]) and renders each violation with its
//!   rule identifier (`MCM001`–`MCM015`), severity and a cycle-accurate
//!   ASCII-waveform excerpt of the offending window.
//! * **Config lint** ([`config`]): statically validates a
//!   datasheet/controller/use-case combination *before* simulation —
//!   resolved-timing consistency (`MCM101`), Table I bandwidth feasibility
//!   against the channel count (`MCM102`), use-case/H.264-level legality
//!   (`MCM103`), interface-power parameter sanity (`MCM104`) and
//!   controller policy sanity (`MCM105`).
//! * **Cross-channel invariants** ([`channels`]): every 16-byte chunk maps
//!   to exactly one channel (`MCM201`), address decode round-trips under
//!   all mapping modes (`MCM202`), per-channel traffic stays balanced
//!   within tolerance (`MCM203`), and multi-tenant workloads keep every
//!   access inside its tenant's disjoint address span (`MCM204`).
//!
//! * **Degraded-mode invariants** ([`degrade`]): fault-injected runs must
//!   keep their books — shed accounting balances (`MCM301`), effective
//!   frame rate and survivor counts stay physical (`MCM302`), and load
//!   shedding follows the Table I priority order (`MCM303`).
//!
//! The `mcm check` CLI subcommand drives all three; the simulation engine
//! can run the trace audit inline behind a `--verify` flag, and
//! fault-injected runs get the `MCM3xx` pass applied to their
//! degradation summary.
//!
//! Identifier ranges are a contract: `MCM0xx` trace rules, `MCM1xx`
//! configuration lint, `MCM2xx` cross-channel invariants, `MCM3xx`
//! degraded-mode invariants. Never renumber.

pub mod channels;
pub mod config;
pub mod degrade;
pub mod diag;
pub mod trace;

pub use channels::{
    check_address_roundtrip, check_chunk_coverage, check_interleave, check_tenant_attribution,
    check_traffic_balance,
};
pub use config::{lint_all, lint_feasibility, lint_interface, lint_memory_config, lint_use_case};
pub use degrade::check_degradation;
pub use diag::{Diagnostic, Location, Report, Severity};
pub use trace::{audit_trace, TraceAuditOptions};

/// The full rule catalogue: `(id, what the rule checks)`, in id order.
pub fn rule_catalogue() -> Vec<(&'static str, &'static str)> {
    let mut rules: Vec<(&'static str, &'static str)> = mcm_dram::RuleKind::ALL
        .iter()
        .map(|k| (k.id(), k.describe()))
        .collect();
    rules.extend_from_slice(&config::CONFIG_RULES);
    rules.extend_from_slice(&channels::CHANNEL_RULES);
    rules.extend_from_slice(&degrade::DEGRADE_RULES);
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_ids_are_unique_and_ordered() {
        let rules = rule_catalogue();
        assert!(
            rules.len() >= 26,
            "expected full catalogue, got {}",
            rules.len()
        );
        let mut ids: Vec<&str> = rules.iter().map(|(id, _)| *id).collect();
        let sorted = {
            let mut s = ids.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(ids, sorted, "catalogue must be in id order");
        ids.dedup();
        assert_eq!(ids.len(), rules.len(), "duplicate rule ids");
    }
}
