//! Trace audit: the timing oracle rendered as diagnostics.
//!
//! Wraps [`mcm_dram::TraceValidator`] — the independent, pairwise
//! re-implementation of the JEDEC-style timing rules — and turns each
//! [`mcm_dram::Violation`] into a [`Diagnostic`] carrying the stable
//! `MCM0xx` identifier of its [`mcm_dram::RuleKind`], the offending
//! channel/cycle/command location, and (optionally) an ASCII-waveform
//! excerpt of the cycles around the violation rendered with
//! [`mcm_dram::timeline::render_timeline`].

use mcm_dram::timeline::render_timeline;
use mcm_dram::{Geometry, ResolvedTiming, TraceValidator, TracedCommand};

use crate::diag::{Diagnostic, Location, Report, Severity};

/// How [`audit_trace`] runs and renders.
#[derive(Debug, Clone, Copy)]
pub struct TraceAuditOptions {
    /// Enforce the refresh-interval budget rule (`MCM012`) with this
    /// postpone allowance (a controller's `RefreshPolicy::max_postpone`).
    /// `None` skips the rule — right for trace fragments that carry no
    /// refresh obligations.
    pub refresh_budget: Option<u32>,
    /// Attach a waveform excerpt around each violation.
    pub waveforms: bool,
    /// Which channel the trace belongs to (labelling only).
    pub channel: Option<u32>,
    /// Cap on rendered findings per trace; the excess is summarized in a
    /// single note so nothing is dropped silently.
    pub max_findings: usize,
}

impl Default for TraceAuditOptions {
    fn default() -> Self {
        TraceAuditOptions {
            refresh_budget: None,
            waveforms: true,
            channel: None,
            max_findings: 32,
        }
    }
}

/// Cycles of context rendered before/after a violation.
const WAVE_BEFORE: u64 = 24;
const WAVE_AFTER: u64 = 8;

/// Replays `trace` through the timing oracle and reports every violation
/// as a diagnostic.
pub fn audit_trace(
    timing: &ResolvedTiming,
    geometry: &Geometry,
    trace: &[TracedCommand],
    opts: &TraceAuditOptions,
) -> Report {
    let mut validator = TraceValidator::new(*timing, *geometry);
    if let Some(allowance) = opts.refresh_budget {
        validator = validator.with_refresh_budget(allowance);
    }
    let violations = validator.check(trace);

    let mut report = Report::new();
    let rendered = violations.len().min(opts.max_findings);
    for v in &violations[..rendered] {
        let mut d = Diagnostic::new(v.kind.id(), Severity::Error, v.to_string()).at(Location {
            channel: opts.channel,
            cycle: Some(v.cycle),
            command_index: Some(v.index),
        });
        if opts.waveforms {
            let from = v.cycle.saturating_sub(WAVE_BEFORE);
            let to = v.cycle + WAVE_AFTER;
            d = d.with_context(render_timeline(trace, geometry.banks, from, to, 100));
        }
        report.push(d);
    }
    if violations.len() > rendered {
        report.push(Diagnostic::new(
            "MCM001",
            Severity::Note,
            format!(
                "{} further trace violation(s) suppressed (max_findings = {})",
                violations.len() - rendered,
                opts.max_findings
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_dram::{DramCommand, TimingParams};

    fn setup() -> (ResolvedTiming, Geometry) {
        let g = Geometry::next_gen_mobile_ddr();
        let t = TimingParams::next_gen_mobile_ddr()
            .resolve(400, &g)
            .unwrap();
        (t, g)
    }

    fn tc(cycle: u64, cmd: DramCommand) -> TracedCommand {
        TracedCommand { cycle, cmd }
    }

    #[test]
    fn clean_trace_audits_clean() {
        let (t, g) = setup();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(6, DramCommand::Read { bank: 0, col: 0 }),
            tc(16, DramCommand::Precharge { bank: 0 }),
        ];
        let r = audit_trace(&t, &g, &trace, &TraceAuditOptions::default());
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn violation_carries_id_location_and_waveform() {
        let (t, g) = setup();
        let trace = [
            tc(0, DramCommand::Activate { bank: 0, row: 1 }),
            tc(3, DramCommand::Read { bank: 0, col: 0 }), // tRCD = 6
        ];
        let opts = TraceAuditOptions {
            channel: Some(2),
            ..TraceAuditOptions::default()
        };
        let r = audit_trace(&t, &g, &trace, &opts);
        assert_eq!(r.error_count(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.id, "MCM002");
        assert_eq!(d.location.channel, Some(2));
        assert_eq!(d.location.cycle, Some(3));
        let wave = d.context.as_deref().unwrap();
        // The excerpt shows the bank rows and the offending read.
        assert!(wave.contains("bank"), "{wave}");
        assert!(wave.contains('r'), "{wave}");
    }

    #[test]
    fn finding_cap_is_reported_not_silent() {
        let (t, g) = setup();
        // Every command re-reads a closed bank: one violation each.
        let trace: Vec<TracedCommand> = (0..10)
            .map(|k| tc(k * 30, DramCommand::Read { bank: 0, col: 0 }))
            .collect();
        let opts = TraceAuditOptions {
            waveforms: false,
            max_findings: 3,
            ..TraceAuditOptions::default()
        };
        let r = audit_trace(&t, &g, &trace, &opts);
        assert_eq!(r.error_count(), 3);
        assert_eq!(r.count(Severity::Note), 1);
        assert!(r.render_human().contains("suppressed"));
    }
}
