//! Degraded-mode invariants (`MCM3xx`): checks over a [`DegradeSummary`]
//! produced by a fault-injected run.
//!
//! A run that survives channel loss or flaky windows is only useful if its
//! accounting still balances and its degradation followed the paper's
//! priority order (Table I stages, least-important first). These rules make
//! that a checkable contract:
//!
//! * `MCM301` — shed accounting balances: the planned full-frame byte count
//!   must equal the post-shed plan plus the shed total, and the shed total
//!   must equal the sum of the per-stage shed entries.
//! * `MCM302` — degraded-mode sanity: the effective frame rate stays in
//!   `(0, nominal]` and the survivor count stays in `1..=total`, consistent
//!   with the recorded channel losses.
//! * `MCM303` — load shedding follows the canonical priority order: the set
//!   of shed stages must be a prefix of [`mcm_fault::SHED_PRIORITY`]
//!   (viewfinder/display traffic is dropped before encoder reference
//!   traffic, never the other way around).

use crate::diag::{Diagnostic, Report, Severity};
use mcm_fault::{DegradeSummary, SHED_PRIORITY};

/// The degraded-mode rules: `(id, what the rule checks)`, in id order.
pub const DEGRADE_RULES: [(&str, &str); 3] = [
    (
        "MCM301",
        "shed accounting balances: planned full bytes = post-shed bytes + shed bytes, \
         and the shed total equals the sum of per-stage shed entries",
    ),
    (
        "MCM302",
        "degraded-mode sanity: effective frame rate in (0, nominal] and \
         survivor count in 1..=total, consistent with recorded losses",
    ),
    (
        "MCM303",
        "load shedding follows the canonical priority order: shed stages form \
         a prefix of the Table I shed-priority list",
    ),
];

/// Check a fault-injected run's [`DegradeSummary`] against the `MCM3xx` rules.
///
/// `total_channels` is the channel count the run was configured with, before
/// any faults were applied.
pub fn check_degradation(summary: &DegradeSummary, total_channels: u32) -> Report {
    let mut report = Report::new();

    // MCM301: byte accounting must balance exactly — shedding is a planning
    // decision, so there is no tolerance to hide behind.
    let stage_sum: u64 = summary.shed.iter().map(|s| s.bytes).sum();
    if stage_sum != summary.shed_bytes {
        report.push(Diagnostic::new(
            "MCM301",
            Severity::Error,
            format!(
                "per-stage shed bytes sum to {} but shed_bytes reports {}",
                stage_sum, summary.shed_bytes
            ),
        ));
    }
    if summary.planned_bytes_after_shed + summary.shed_bytes != summary.planned_bytes_full {
        report.push(Diagnostic::new(
            "MCM301",
            Severity::Error,
            format!(
                "shed accounting does not balance: {} (after shed) + {} (shed) != {} (full plan)",
                summary.planned_bytes_after_shed, summary.shed_bytes, summary.planned_bytes_full
            ),
        ));
    }

    // MCM302: the summary must describe a physically possible degraded run.
    if summary.surviving_channels == 0 || summary.surviving_channels > total_channels {
        report.push(Diagnostic::new(
            "MCM302",
            Severity::Error,
            format!(
                "surviving channel count {} outside 1..={}",
                summary.surviving_channels, total_channels
            ),
        ));
    }
    let lost = summary.lost_channels.len() as u32;
    if summary.surviving_channels + lost != total_channels {
        report.push(Diagnostic::new(
            "MCM302",
            Severity::Error,
            format!(
                "{} survivors + {} recorded losses != {} configured channels",
                summary.surviving_channels, lost, total_channels
            ),
        ));
    }
    if !(summary.effective_fps > 0.0 && summary.effective_fps <= f64::from(summary.nominal_fps)) {
        report.push(Diagnostic::new(
            "MCM302",
            Severity::Error,
            format!(
                "effective frame rate {} fps outside (0, {}]",
                summary.effective_fps, summary.nominal_fps
            ),
        ));
    }

    // MCM303: shed stages must be exactly the first N entries of the
    // priority list, in order — dropping encoder traffic while the
    // viewfinder still runs would invert the paper's priorities.
    let shed_labels: Vec<&str> = summary.shed.iter().map(|s| s.stage.as_str()).collect();
    let prefix: Vec<&str> = SHED_PRIORITY
        .iter()
        .take(shed_labels.len())
        .copied()
        .collect();
    if shed_labels != prefix {
        report.push(Diagnostic::new(
            "MCM303",
            Severity::Error,
            format!(
                "shed stages {:?} are not a prefix of the priority order {:?}",
                shed_labels, SHED_PRIORITY
            ),
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_fault::StageShed;

    fn clean_summary() -> DegradeSummary {
        DegradeSummary {
            lost_channels: vec![3],
            surviving_channels: 3,
            flaky_hits: 2,
            retries: 4,
            remaps: 1,
            shed: vec![
                StageShed {
                    stage: SHED_PRIORITY[0].to_string(),
                    bytes: 1000,
                },
                StageShed {
                    stage: SHED_PRIORITY[1].to_string(),
                    bytes: 500,
                },
            ],
            shed_bytes: 1500,
            planned_bytes_full: 10_000,
            planned_bytes_after_shed: 8_500,
            effective_fps: 30.0,
            nominal_fps: 30,
        }
    }

    #[test]
    fn clean_summary_passes_all_rules() {
        let r = check_degradation(&clean_summary(), 4);
        assert!(r.is_clean(), "unexpected findings: {:?}", r.ids());
    }

    #[test]
    fn unbalanced_shed_accounting_fires_mcm301() {
        let mut s = clean_summary();
        s.shed_bytes = 1400; // no longer matches per-stage sum or the plan delta
        let r = check_degradation(&s, 4);
        assert!(r.has_errors());
        assert!(r.ids().contains(&"MCM301"));

        let mut s = clean_summary();
        s.planned_bytes_after_shed = 9_000;
        let r = check_degradation(&s, 4);
        assert!(r.ids().contains(&"MCM301"));
    }

    #[test]
    fn impossible_survivors_or_fps_fire_mcm302() {
        let mut s = clean_summary();
        s.surviving_channels = 0;
        let r = check_degradation(&s, 4);
        assert!(r.ids().contains(&"MCM302"));

        let mut s = clean_summary();
        s.surviving_channels = 5;
        assert!(check_degradation(&s, 4).ids().contains(&"MCM302"));

        let mut s = clean_summary();
        s.lost_channels = vec![2, 3]; // 3 survivors + 2 losses != 4 channels
        assert!(check_degradation(&s, 4).ids().contains(&"MCM302"));

        let mut s = clean_summary();
        s.effective_fps = 31.0; // above nominal
        assert!(check_degradation(&s, 4).ids().contains(&"MCM302"));

        let mut s = clean_summary();
        s.effective_fps = 0.0;
        assert!(check_degradation(&s, 4).ids().contains(&"MCM302"));
    }

    #[test]
    fn out_of_order_shedding_fires_mcm303() {
        // Shedding stage 1 without stage 0 skips the priority order.
        let mut s = clean_summary();
        s.shed = vec![StageShed {
            stage: SHED_PRIORITY[1].to_string(),
            bytes: 1500,
        }];
        let r = check_degradation(&s, 4);
        assert!(r.has_errors());
        assert!(r.ids().contains(&"MCM303"));

        // Shedding the encoder (last priority) alone is the worst inversion.
        let mut s = clean_summary();
        s.shed = vec![StageShed {
            stage: SHED_PRIORITY[4].to_string(),
            bytes: 1500,
        }];
        assert!(check_degradation(&s, 4).ids().contains(&"MCM303"));
    }

    #[test]
    fn healthy_run_summary_is_clean_with_no_shedding() {
        let s = DegradeSummary {
            lost_channels: vec![],
            surviving_channels: 4,
            flaky_hits: 0,
            retries: 0,
            remaps: 0,
            shed: vec![],
            shed_bytes: 0,
            planned_bytes_full: 10_000,
            planned_bytes_after_shed: 10_000,
            effective_fps: 30.0,
            nominal_fps: 30,
        };
        assert!(check_degradation(&s, 4).is_clean());
    }
}
