//! Cross-channel invariant checks (`MCM201`–`MCM203`).
//!
//! The paper's multi-channel design rests on three structural properties:
//! low-order interleaving sends every 16-byte chunk to exactly one channel
//! with a dense local address space, the per-channel address decode is a
//! bijection, and sequential traffic loads all channels evenly. These
//! checks state those properties over *any* mapping function, so tests can
//! inject deliberately broken mappings and assert the right rule fires.

use std::collections::HashMap;

use mcm_channel::InterleaveMap;
use mcm_dram::{AddressDecoder, AddressMapping, Geometry};

use crate::diag::{Diagnostic, Location, Report, Severity};

/// Rule identifiers owned by this module: `(id, what it checks)`.
pub const CHANNEL_RULES: [(&str, &str); 4] = [
    (
        "MCM201",
        "interleave coverage: every chunk maps to exactly one channel, local space dense",
    ),
    (
        "MCM202",
        "address decode round-trip: decode∘encode is the identity under every mapping mode",
    ),
    (
        "MCM203",
        "traffic balance: per-channel byte counts stay within tolerance of the mean",
    ),
    (
        "MCM204",
        "tenant attribution: tenant spans are disjoint and every access stays in its span",
    ),
];

/// Cap on findings per check; the excess becomes one summarizing note.
const MAX_FINDINGS: usize = 16;

fn cap_note(report: &mut Report, id: &'static str, total: usize) {
    if total > MAX_FINDINGS {
        report.push(Diagnostic::new(
            id,
            Severity::Note,
            format!("{} further finding(s) suppressed", total - MAX_FINDINGS),
        ));
    }
}

/// `MCM201`: checks that `map` sends every granule-sized chunk of
/// `[0, span_bytes)` to exactly one in-range channel, injectively, and
/// that each channel's local granule addresses are dense from zero.
///
/// The mapping is passed as a function so a test can hand in a broken one;
/// production callers wrap an [`InterleaveMap`] via [`check_interleave`].
pub fn check_chunk_coverage(
    channels: u32,
    granule_bytes: u64,
    span_bytes: u64,
    map: impl Fn(u64) -> (u32, u64),
) -> Report {
    let mut report = Report::new();
    if channels == 0 || granule_bytes == 0 {
        report.push(Diagnostic::new(
            "MCM201",
            Severity::Error,
            format!("degenerate interleave: {channels} channels × {granule_bytes} B granule"),
        ));
        return report;
    }
    let mut claimed: HashMap<(u32, u64), u64> = HashMap::new();
    let mut locals: Vec<Vec<u64>> = vec![Vec::new(); channels as usize];
    let mut failures = 0usize;
    let mut fail = |report: &mut Report, ch: Option<u32>, msg: String| {
        failures += 1;
        if failures <= MAX_FINDINGS {
            let mut d = Diagnostic::new("MCM201", Severity::Error, msg);
            if let Some(ch) = ch {
                d = d.at(Location::channel(ch));
            }
            report.push(d);
        }
    };
    let mut addr = 0u64;
    while addr < span_bytes {
        let (ch, local) = map(addr);
        if ch >= channels {
            fail(
                &mut report,
                None,
                format!("chunk at {addr:#x} maps to channel {ch}, but only {channels} exist"),
            );
        } else if local % granule_bytes != 0 {
            fail(
                &mut report,
                Some(ch),
                format!("chunk at {addr:#x} lands mid-granule at local {local:#x}"),
            );
        } else if let Some(prev) = claimed.insert((ch, local), addr) {
            fail(
                &mut report,
                Some(ch),
                format!(
                    "chunks at {prev:#x} and {addr:#x} collide on channel {ch} local {local:#x}"
                ),
            );
        } else {
            locals[ch as usize].push(local);
        }
        addr += granule_bytes;
    }
    // Even distribution: over whole stripes, a correct rotation hands every
    // channel exactly the same number of chunks.
    let stripe = granule_bytes * channels as u64;
    let expected = (span_bytes % stripe == 0).then(|| span_bytes / stripe);
    // Density: a correct rotation leaves no holes in any channel's local
    // granule sequence.
    for (ch, mut ls) in locals.into_iter().enumerate() {
        if let Some(expected) = expected {
            if ls.len() as u64 != expected {
                fail(
                    &mut report,
                    Some(ch as u32),
                    format!(
                        "channel {ch} received {} chunk(s), expected {expected}",
                        ls.len()
                    ),
                );
            }
        }
        ls.sort_unstable();
        for (k, l) in ls.iter().enumerate() {
            if *l != k as u64 * granule_bytes {
                fail(
                    &mut report,
                    Some(ch as u32),
                    format!(
                        "channel {ch} local space has a hole: expected {:#x}, found {l:#x}",
                        k as u64 * granule_bytes
                    ),
                );
                break;
            }
        }
    }
    cap_note(&mut report, "MCM201", failures);
    report
}

/// [`check_chunk_coverage`] over a real [`InterleaveMap`], spanning
/// `stripes` full rotations, plus the `split`/`join` round-trip (`MCM202`
/// applied to the interleave layer).
pub fn check_interleave(map: &InterleaveMap, stripes: u64) -> Report {
    let granule = map.granule_bytes();
    let span = granule * map.channels() as u64 * stripes;
    let mut report = check_chunk_coverage(map.channels(), granule, span, |a| map.split(a));
    let mut failures = 0usize;
    let mut addr = 0u64;
    while addr < span {
        let (ch, local) = map.split(addr);
        match map.join(ch, local) {
            Ok(back) if back == addr => {}
            Ok(back) => {
                failures += 1;
                if failures <= MAX_FINDINGS {
                    report.push(
                        Diagnostic::new(
                            "MCM202",
                            Severity::Error,
                            format!(
                                "interleave round-trip: {addr:#x} → ({ch}, {local:#x}) → {back:#x}"
                            ),
                        )
                        .at(Location::channel(ch)),
                    );
                }
            }
            Err(e) => {
                failures += 1;
                if failures <= MAX_FINDINGS {
                    report.push(Diagnostic::new(
                        "MCM202",
                        Severity::Error,
                        format!("interleave join({ch}, {local:#x}) failed: {e}"),
                    ));
                }
            }
        }
        addr += granule;
    }
    cap_note(&mut report, "MCM202", failures);
    report
}

/// `MCM202`: checks that `encode(decode(addr)) == addr` over a structured
/// address sample for every requested [`AddressMapping`] mode.
///
/// The sample walks every bank/row boundary region plus a uniform stride,
/// which is where mapping bugs (swapped fields, off-by-one shifts) bite.
pub fn check_address_roundtrip(
    geometry: &Geometry,
    mappings: &[AddressMapping],
    samples_per_mode: u64,
) -> Report {
    let mut report = Report::new();
    let capacity = geometry.capacity_bytes();
    let burst = geometry.burst_bytes() as u64;
    let page = geometry.page_bytes() as u64;
    for &mapping in mappings {
        let decoder = match AddressDecoder::new(*geometry, mapping) {
            Ok(d) => d,
            Err(e) => {
                report.push(Diagnostic::new(
                    "MCM202",
                    Severity::Error,
                    format!("decoder construction failed for {mapping:?}: {e}"),
                ));
                continue;
            }
        };
        let mut failures = 0usize;
        let stride = (capacity / samples_per_mode.max(1)).max(burst) & !(burst - 1);
        let mut probe = |addr: u64, report: &mut Report| {
            if addr >= capacity {
                return;
            }
            let outcome = decoder
                .decode(addr)
                .and_then(|d| decoder.encode(d).map(|back| (d, back)));
            let ok = matches!(outcome, Ok((_, back)) if back == addr);
            if !ok {
                failures += 1;
                if failures <= MAX_FINDINGS {
                    report.push(Diagnostic::new(
                        "MCM202",
                        Severity::Error,
                        match outcome {
                            Ok((d, back)) => format!(
                                "{mapping:?}: {addr:#x} → bank {} row {} col {} → {back:#x}",
                                d.bank, d.row, d.col
                            ),
                            Err(e) => {
                                format!("{mapping:?}: decode/encode of {addr:#x} failed: {e}")
                            }
                        },
                    ));
                }
            }
        };
        for k in 0..samples_per_mode {
            probe(k * stride, &mut report);
        }
        // Boundary probes: around each page edge of bank 0 and the very top.
        for edge in [
            page,
            page * 2,
            capacity / geometry.banks as u64,
            capacity - burst,
        ] {
            probe(edge.saturating_sub(burst), &mut report);
            probe(edge, &mut report);
        }
        cap_note(&mut report, "MCM202", failures);
    }
    report
}

/// `MCM203`: checks that per-channel traffic (bytes or bursts) stays
/// within `tolerance` (relative) of the mean. Imbalance is a warning, not
/// an error — it wastes parallelism but breaks no rule.
pub fn check_traffic_balance(per_channel: &[u64], tolerance: f64) -> Report {
    let mut report = Report::new();
    if per_channel.is_empty() {
        return report;
    }
    let total: u64 = per_channel.iter().sum();
    let mean = total as f64 / per_channel.len() as f64;
    if mean == 0.0 {
        return report;
    }
    for (ch, &n) in per_channel.iter().enumerate() {
        let deviation = (n as f64 - mean).abs() / mean;
        if deviation > tolerance {
            report.push(
                Diagnostic::new(
                    "MCM203",
                    Severity::Warning,
                    format!(
                        "channel {ch} carried {n} of mean {mean:.0} ({:+.1}% vs ±{:.1}% tolerance)",
                        (n as f64 / mean - 1.0) * 100.0,
                        tolerance * 100.0
                    ),
                )
                .at(Location::channel(ch as u32)),
            );
        }
    }
    report
}

/// `MCM204`: checks multi-tenant address-space attribution.
///
/// The multi-tenant workload model gives each tenant a disjoint span of the
/// global address space; per-tenant QoS accounting attributes every load
/// operation to the span containing it. This rule states the two
/// invariants that accounting rests on: the spans are pairwise disjoint,
/// and no operation escaped every span (`strays` collects the escapees the
/// engine saw, capped upstream; `stray_count` is the uncapped total).
pub fn check_tenant_attribution(
    spans: &[mcm_load::Region],
    stray_count: u64,
    strays: &[(u64, u32)],
) -> Report {
    let mut report = Report::new();
    if spans.is_empty() {
        return report;
    }
    for (i, a) in spans.iter().enumerate() {
        for (j, b) in spans.iter().enumerate().skip(i + 1) {
            if a.overlaps(b) {
                report.push(Diagnostic::new(
                    "MCM204",
                    Severity::Error,
                    format!(
                        "tenant spans {i} [{:#x}, {:#x}) and {j} [{:#x}, {:#x}) overlap",
                        a.start,
                        a.end(),
                        b.start,
                        b.end()
                    ),
                ));
            }
        }
    }
    for &(addr, len) in strays.iter().take(MAX_FINDINGS) {
        report.push(Diagnostic::new(
            "MCM204",
            Severity::Error,
            format!("access at {addr:#x}+{len} belongs to no tenant span"),
        ));
    }
    if stray_count > strays.len().min(MAX_FINDINGS) as u64 {
        report.push(Diagnostic::new(
            "MCM204",
            Severity::Note,
            format!(
                "{} further unattributed access(es) suppressed",
                stray_count - strays.len().min(MAX_FINDINGS) as u64
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_interleave_is_clean() {
        for channels in [1u32, 2, 4, 8] {
            let map = InterleaveMap::paper(channels).unwrap();
            let r = check_interleave(&map, 64);
            assert!(r.is_clean(), "{channels} ch:\n{}", r.render_human());
        }
    }

    #[test]
    fn broken_mapping_trips_mcm201() {
        // Everything to channel 0, locally dense: injectivity and density
        // hold, but the stripes are not distributed.
        let r = check_chunk_coverage(4, 16, 4 * 16 * 8, |a| (0, a));
        assert!(r.has_errors());
        assert!(r.ids().contains(&"MCM201"), "{}", r.render_human());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.message.contains("expected 8")));

        // Channel out of range.
        let r = check_chunk_coverage(2, 16, 64, |a| ((a / 16) as u32, 0));
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.message.contains("only 2 exist")));

        // Two chunks collide on one local granule.
        let r = check_chunk_coverage(2, 16, 64, |a| ((a / 16 % 2) as u32, 0));
        assert!(r.diagnostics.iter().any(|d| d.message.contains("collide")));
    }

    #[test]
    fn address_roundtrip_clean_on_real_decoders() {
        let g = Geometry::next_gen_mobile_ddr();
        let r = check_address_roundtrip(&g, &[AddressMapping::Rbc, AddressMapping::Brc], 64);
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn balance_flags_a_skewed_channel() {
        // Mean 105: the three 100s sit within 10 %, the 120 does not.
        let r = check_traffic_balance(&[100, 100, 100, 120], 0.10);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.diagnostics[0].location.channel, Some(3));
        assert!(check_traffic_balance(&[100, 100, 100, 104], 0.10).is_clean());
        assert!(check_traffic_balance(&[], 0.10).is_clean());
        assert!(check_traffic_balance(&[0, 0], 0.10).is_clean());
    }

    #[test]
    fn tenant_attribution_accepts_disjoint_spans() {
        let spans = [
            mcm_load::Region { start: 0, len: 100 },
            mcm_load::Region {
                start: 100,
                len: 50,
            },
        ];
        assert!(check_tenant_attribution(&spans, 0, &[]).is_clean());
        // Single-tenant runs pass an empty span list: vacuously clean.
        assert!(check_tenant_attribution(&[], 0, &[]).is_clean());
    }

    #[test]
    fn tenant_attribution_flags_overlap_and_strays() {
        let overlapping = [
            mcm_load::Region { start: 0, len: 100 },
            mcm_load::Region { start: 90, len: 50 },
        ];
        let r = check_tenant_attribution(&overlapping, 0, &[]);
        assert_eq!(r.count(Severity::Error), 1);
        assert!(r.ids().contains(&"MCM204"));

        let disjoint = [mcm_load::Region { start: 0, len: 100 }];
        let r = check_tenant_attribution(&disjoint, 3, &[(200, 64)]);
        assert_eq!(r.count(Severity::Error), 1, "{}", r.render_human());
        assert_eq!(r.count(Severity::Note), 1);
    }
}
