//! Diagnostic types shared by every pass: severity, location, report,
//! and the human/JSON renderings `mcm check` prints.

use core::fmt;

use serde_json::{json, Value};

/// How bad a finding is.
///
/// `Error` findings fail a check run (non-zero exit from `mcm check`);
/// warnings and notes are informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The model is wrong: a rule the hardware or the paper mandates is
    /// broken.
    Error,
    /// Legal but suspicious; likely to produce misleading results.
    Warning,
    /// Context the reader may want (e.g. suppressed-finding counts).
    Note,
}

impl Severity {
    /// Lowercase label used in both renderings.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Where in the simulated system a finding points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Location {
    /// Memory channel, when the finding is per-channel.
    pub channel: Option<u32>,
    /// Interface-clock cycle, for trace findings.
    pub cycle: Option<u64>,
    /// Index of the offending command in its trace.
    pub command_index: Option<usize>,
}

impl Location {
    /// A channel-only location.
    pub fn channel(ch: u32) -> Self {
        Location {
            channel: Some(ch),
            ..Location::default()
        }
    }

    fn is_empty(&self) -> bool {
        self.channel.is_none() && self.cycle.is_none() && self.command_index.is_none()
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(ch) = self.channel {
            parts.push(format!("channel {ch}"));
        }
        if let Some(c) = self.cycle {
            parts.push(format!("cycle {c}"));
        }
        if let Some(i) = self.command_index {
            parts.push(format!("command #{i}"));
        }
        f.write_str(&parts.join(", "))
    }
}

/// One finding from any pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `MCM002` or `MCM102`.
    pub id: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// One-line human-readable description of this particular finding.
    pub message: String,
    /// Where it points, if anywhere specific.
    pub location: Location,
    /// Optional multi-line context (e.g. an ASCII waveform excerpt).
    pub context: Option<String>,
}

impl Diagnostic {
    /// A context-free finding.
    pub fn new(id: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            id,
            severity,
            message: message.into(),
            location: Location::default(),
            context: None,
        }
    }

    /// Attaches a location.
    pub fn at(mut self, location: Location) -> Self {
        self.location = location;
        self
    }

    /// Attaches rendered context.
    pub fn with_context(mut self, context: impl Into<String>) -> Self {
        self.context = Some(context.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.severity, self.id, self.message)?;
        if !self.location.is_empty() {
            write!(f, " ({})", self.location)?;
        }
        Ok(())
    }
}

/// An ordered collection of findings from one or more passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings, in the order the passes produced them.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of `Error`-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether the report carries no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// The distinct rule ids present, in first-seen order.
    pub fn ids(&self) -> Vec<&'static str> {
        let mut ids = Vec::new();
        for d in &self.diagnostics {
            if !ids.contains(&d.id) {
                ids.push(d.id);
            }
        }
        ids
    }

    /// Orders findings most-severe first (stable within a severity).
    pub fn sort_by_severity(&mut self) {
        self.diagnostics.sort_by_key(|d| d.severity);
    }

    /// The human rendering `mcm check` prints: one line per finding plus
    /// indented context blocks, then a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
            if let Some(ctx) = &d.context {
                for line in ctx.lines() {
                    out.push_str("    ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        let (e, w, n) = (
            self.error_count(),
            self.count(Severity::Warning),
            self.count(Severity::Note),
        );
        if self.is_clean() {
            out.push_str("check clean: 0 findings\n");
        } else {
            out.push_str(&format!(
                "check found {e} error(s), {w} warning(s), {n} note(s)\n"
            ));
        }
        out
    }

    /// The machine rendering behind `mcm check --json`.
    pub fn to_json(&self) -> Value {
        let findings: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                json!({
                    "id": d.id,
                    "severity": d.severity.label(),
                    "message": d.message,
                    "channel": d.location.channel,
                    "cycle": d.location.cycle,
                    "command_index": d.location.command_index,
                    "context": d.context,
                })
            })
            .collect();
        json!({
            "findings": findings,
            "summary": {
                "errors": self.error_count(),
                "warnings": self.count(Severity::Warning),
                "notes": self.count(Severity::Note),
                "clean": self.is_clean(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Note);
    }

    #[test]
    fn display_includes_id_and_location() {
        let d = Diagnostic::new("MCM002", Severity::Error, "tRCD: ACT at 3").at(Location {
            channel: Some(1),
            cycle: Some(9),
            command_index: Some(4),
        });
        assert_eq!(
            d.to_string(),
            "error [MCM002]: tRCD: ACT at 3 (channel 1, cycle 9, command #4)"
        );
    }

    #[test]
    fn report_counts_and_sorting() {
        let mut r = Report::new();
        r.push(Diagnostic::new("MCM203", Severity::Note, "n"));
        r.push(Diagnostic::new("MCM102", Severity::Error, "e"));
        r.push(Diagnostic::new("MCM105", Severity::Warning, "w"));
        assert_eq!(r.error_count(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        r.sort_by_severity();
        assert_eq!(r.diagnostics[0].id, "MCM102");
        assert_eq!(r.ids(), vec!["MCM102", "MCM105", "MCM203"]);
    }

    #[test]
    fn renders_human_and_json() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new("MCM012", Severity::Error, "refresh budget")
                .with_context("ruler\nwave"),
        );
        let human = r.render_human();
        assert!(human.contains("error [MCM012]"));
        assert!(human.contains("    wave"));
        assert!(human.contains("1 error(s)"));
        let j = r.to_json();
        let s = j.to_string();
        assert!(s.contains("\"MCM012\""));
        assert!(s.contains("\"clean\":false"));

        let clean = Report::new();
        assert!(clean.render_human().contains("check clean"));
    }
}
