//! Configuration lint (`MCM101`–`MCM105`): static validation of a
//! datasheet / controller / use-case combination *before* any simulation
//! cycle runs.
//!
//! The simulator constructors already reject malformed configs; this pass
//! goes further and flags combinations that are *constructible but
//! doomed* — a Table I workload that physically exceeds the configured
//! channels' peak bandwidth, a power-down policy that can never escalate,
//! an interface model whose parameters sit outside plausible silicon.

use mcm_channel::MemoryConfig;
use mcm_ctrl::{PowerDownPolicy, WritePolicy};
use mcm_load::UseCase;
use mcm_power::InterfacePowerModel;

use crate::diag::{Diagnostic, Report, Severity};

/// Rule identifiers owned by this module: `(id, what it checks)`.
pub const CONFIG_RULES: [(&str, &str); 5] = [
    (
        "MCM101",
        "resolved-timing consistency: geometry, analog timings and clock resolve to a legal device",
    ),
    (
        "MCM102",
        "bandwidth feasibility: the Table I workload fits the channels' peak bandwidth",
    ),
    (
        "MCM103",
        "use-case validity: recording parameters respect the H.264 level limits",
    ),
    (
        "MCM104",
        "interface-power sanity: pins, capacitance, voltage and activity are plausible",
    ),
    (
        "MCM105",
        "controller policy sanity: refresh, power-down and write policies are self-consistent",
    ),
];

/// `MCM101` + `MCM105`: lints the memory-side configuration — device
/// geometry/timing resolution, channel/granule structure, and the
/// controller's policy block.
pub fn lint_memory_config(mem: &MemoryConfig) -> Report {
    let mut report = Report::new();
    let err = |id, msg: String| Diagnostic::new(id, Severity::Error, msg);
    let warn = |id, msg: String| Diagnostic::new(id, Severity::Warning, msg);

    // --- MCM101: device and interleave structure -------------------------
    let cluster = &mem.controller.cluster;
    let mut resolvable = true;
    if let Err(e) = cluster.geometry.validate() {
        report.push(err("MCM101", format!("geometry invalid: {e}")));
        resolvable = false;
    }
    if let Err(e) = cluster.timing.validate() {
        report.push(err("MCM101", format!("timing parameters invalid: {e}")));
        resolvable = false;
    }
    if resolvable {
        if let Err(e) = cluster.timing.resolve(cluster.clock_mhz, &cluster.geometry) {
            report.push(err(
                "MCM101",
                format!("timings do not resolve at {} MHz: {e}", cluster.clock_mhz),
            ));
        }
        if cluster.timing.t_faw_ns > cluster.timing.t_rc_ns {
            report.push(warn(
                "MCM101",
                format!(
                    "tFAW ({} ns) exceeds tRC ({} ns): the four-activate window would \
                     outlast a full row cycle",
                    cluster.timing.t_faw_ns, cluster.timing.t_rc_ns
                ),
            ));
        }
    }
    if mem.clock_mhz != cluster.clock_mhz {
        report.push(err(
            "MCM101",
            format!(
                "subsystem clock ({} MHz) disagrees with the device clock ({} MHz)",
                mem.clock_mhz, cluster.clock_mhz
            ),
        ));
    }
    if mem.channels == 0 || !mem.channels.is_power_of_two() {
        report.push(err(
            "MCM101",
            format!(
                "channel count {} is not a non-zero power of two; low-order \
                 interleaving needs one",
                mem.channels
            ),
        ));
    }
    let burst = cluster.geometry.burst_bytes() as u64;
    if mem.granule_bytes == 0 || !mem.granule_bytes.is_power_of_two() {
        report.push(err(
            "MCM101",
            format!(
                "interleave granule of {} B is not a non-zero power of two",
                mem.granule_bytes
            ),
        ));
    } else if burst != 0 && mem.granule_bytes % burst != 0 {
        report.push(err(
            "MCM101",
            format!(
                "interleave granule of {} B is not a whole number of {} B bursts",
                mem.granule_bytes, burst
            ),
        ));
    } else if mem.granule_bytes != burst {
        report.push(warn(
            "MCM101",
            format!(
                "interleave granule of {} B differs from the {} B burst the paper \
                 interleaves on",
                mem.granule_bytes, burst
            ),
        ));
    }

    // --- MCM105: controller policies -------------------------------------
    let ctrl = &mem.controller;
    if !ctrl.refresh.enabled {
        report.push(warn(
            "MCM105",
            "refresh is disabled: results ignore a real obligation of the device".into(),
        ));
    } else if ctrl.refresh.max_postpone > 8 {
        report.push(warn(
            "MCM105",
            format!(
                "refresh postpone allowance of {} exceeds the 8 that DDR devices permit",
                ctrl.refresh.max_postpone
            ),
        ));
    }
    match ctrl.power_down {
        PowerDownPolicy::AfterIdleCycles(0) => report.push(warn(
            "MCM105",
            "power-down after 0 idle cycles: the device would never be in standby".into(),
        )),
        PowerDownPolicy::PowerDownThenSelfRefresh { pd_after, sr_after } if sr_after < pd_after => {
            report.push(err(
                "MCM105",
                format!(
                    "self-refresh threshold ({sr_after}) precedes power-down threshold \
                     ({pd_after}): the escalation can never happen in that order"
                ),
            ));
        }
        _ => {}
    }
    if let WritePolicy::Batched(0) = ctrl.write_policy {
        report.push(err(
            "MCM105",
            "write batching with a zero-burst buffer can never hold a write".into(),
        ));
    }
    report
}

/// `MCM103`: lints the recording use case against the H.264 level limits
/// (frame size, bitrate, DPB) via [`UseCase::validate`].
pub fn lint_use_case(uc: &UseCase) -> Report {
    let mut report = Report::new();
    if let Err(e) = uc.validate() {
        report.push(Diagnostic::new(
            "MCM103",
            Severity::Error,
            format!("use case invalid: {e}"),
        ));
    }
    report
}

/// `MCM102`: checks Table I bandwidth feasibility — the use case's
/// sustained memory load against the configured channels' peak transfer
/// rate (`channels × word × 2 × f_ck`). Demand above peak is an error
/// (the frame can never drain); demand above 80 % of peak is a warning
/// (no headroom for refresh, turnaround and page misses).
pub fn lint_feasibility(uc: &UseCase, mem: &MemoryConfig) -> Report {
    let mut report = Report::new();
    if uc.validate().is_err() || mem.channels == 0 {
        // MCM103/MCM101 already own those findings.
        return report;
    }
    let demand = uc.table_row().bits_per_second() as f64 / 8.0;
    let word = mem.controller.cluster.geometry.word_bytes() as f64;
    let peak = mem.channels as f64 * word * 2.0 * mem.clock_mhz as f64 * 1e6;
    let utilization = demand / peak;
    let describe = format!(
        "workload needs {:.1} MB/s of {:.1} MB/s peak ({} × {}-bit DDR at {} MHz): \
         {:.0} % of peak",
        demand / 1e6,
        peak / 1e6,
        mem.channels,
        word as u64 * 8,
        mem.clock_mhz,
        utilization * 100.0
    );
    if utilization > 1.0 {
        report.push(Diagnostic::new(
            "MCM102",
            Severity::Error,
            format!("infeasible: {describe}"),
        ));
    } else if utilization > 0.8 {
        report.push(Diagnostic::new(
            "MCM102",
            Severity::Warning,
            format!("marginal: {describe}"),
        ));
    }
    report
}

/// `MCM104`: sanity-checks the interface (I/O) power model parameters
/// against plausible silicon ranges.
pub fn lint_interface(m: &InterfacePowerModel) -> Report {
    let mut report = Report::new();
    if m.pins == 0 {
        report.push(Diagnostic::new(
            "MCM104",
            Severity::Error,
            "interface model has zero pins: all interface power vanishes".to_string(),
        ));
    }
    if !m.activity.is_finite() || !(0.0..=1.0).contains(&m.activity) {
        report.push(Diagnostic::new(
            "MCM104",
            Severity::Error,
            format!("activity factor {} is outside [0, 1]", m.activity),
        ));
    }
    if !m.io_voltage_v.is_finite() || !(0.3..=3.6).contains(&m.io_voltage_v) {
        report.push(Diagnostic::new(
            "MCM104",
            Severity::Warning,
            format!(
                "I/O voltage {} V is outside the plausible 0.3–3.6 V range",
                m.io_voltage_v
            ),
        ));
    }
    if !m.capacitance_pf.is_finite() || !(0.05..=10.0).contains(&m.capacitance_pf) {
        report.push(Diagnostic::new(
            "MCM104",
            Severity::Warning,
            format!(
                "per-pin capacitance {} pF is outside the plausible 0.05–10 pF range \
                 (paper: 0.4–2.5 pF across bonding techniques)",
                m.capacitance_pf
            ),
        ));
    }
    report
}

/// Runs every configuration lint over one experiment's worth of inputs.
pub fn lint_all(uc: &UseCase, mem: &MemoryConfig, iface: &InterfacePowerModel) -> Report {
    let mut report = lint_memory_config(mem);
    report.merge(lint_use_case(uc));
    report.merge(lint_feasibility(uc, mem));
    report.merge(lint_interface(iface));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_load::HdOperatingPoint;

    fn paper_setup() -> (UseCase, MemoryConfig, InterfacePowerModel) {
        (
            UseCase::hd(HdOperatingPoint::Hd1080p30),
            MemoryConfig::paper(4, 400),
            InterfacePowerModel::paper(),
        )
    }

    #[test]
    fn paper_config_lints_clean() {
        let (uc, mem, iface) = paper_setup();
        let r = lint_all(&uc, &mem, &iface);
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn uhd_on_one_slow_channel_is_infeasible() {
        let uc = UseCase::hd(HdOperatingPoint::Uhd2160p30);
        let mem = MemoryConfig::paper(1, 200);
        let r = lint_feasibility(&uc, &mem);
        assert_eq!(r.error_count(), 1, "{}", r.render_human());
        assert_eq!(r.diagnostics[0].id, "MCM102");
        assert!(r.diagnostics[0].message.contains("infeasible"));
    }

    #[test]
    fn structural_errors_trip_mcm101() {
        let mut mem = MemoryConfig::paper(4, 400);
        mem.channels = 3;
        mem.granule_bytes = 24;
        mem.clock_mhz = 200; // device still at 400
        let r = lint_memory_config(&mem);
        assert!(r.error_count() >= 3, "{}", r.render_human());
        assert!(r.ids() == vec!["MCM101"], "{:?}", r.ids());
    }

    #[test]
    fn policy_errors_trip_mcm105() {
        let mut mem = MemoryConfig::paper(2, 400);
        mem.controller.power_down = PowerDownPolicy::PowerDownThenSelfRefresh {
            pd_after: 100,
            sr_after: 10,
        };
        mem.controller.write_policy = WritePolicy::Batched(0);
        mem.controller.refresh.max_postpone = 64;
        let r = lint_memory_config(&mem);
        assert_eq!(r.error_count(), 2, "{}", r.render_human());
        assert_eq!(r.count(Severity::Warning), 1);
        assert!(r.ids().contains(&"MCM105"));
    }

    #[test]
    fn interface_model_ranges() {
        let mut m = InterfacePowerModel::paper();
        assert!(lint_interface(&m).is_clean());
        m.activity = 1.4;
        m.pins = 0;
        m.capacitance_pf = 50.0;
        let r = lint_interface(&m);
        assert_eq!(r.error_count(), 2, "{}", r.render_human());
        assert_eq!(r.count(Severity::Warning), 1);
    }
}
