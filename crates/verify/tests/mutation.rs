//! Mutation-style conformance tests: start from a known-legal command
//! trace (or a known-good configuration), inject exactly one violation
//! class, and assert that `mcm-verify` reports exactly that rule ID —
//! no more, no less. This pins both the detection power and the
//! precision of the checker: a rule that also fires on legal traces
//! would break the `ids() == [..]` equalities below.

use mcm_dram::{DramCommand, Geometry, ResolvedTiming, TimingParams, TracedCommand};
use mcm_verify::{audit_trace, Report, TraceAuditOptions};

fn setup() -> (ResolvedTiming, Geometry) {
    let g = Geometry::next_gen_mobile_ddr();
    let t = TimingParams::next_gen_mobile_ddr()
        .resolve(400, &g)
        .unwrap();
    (t, g)
}

fn tc(cycle: u64, cmd: DramCommand) -> TracedCommand {
    TracedCommand { cycle, cmd }
}

fn audit(t: &ResolvedTiming, g: &Geometry, trace: &[TracedCommand]) -> Report {
    audit_trace(t, g, trace, &TraceAuditOptions::default())
}

/// A legal open-read-close round on bank 0, repeated twice.
fn legal_trace(t: &ResolvedTiming) -> Vec<TracedCommand> {
    let round = t.t_rc + t.t_rp;
    let mut trace = Vec::new();
    for k in 0..2u64 {
        let base = k * round;
        trace.push(tc(base, DramCommand::Activate { bank: 0, row: 1 }));
        trace.push(tc(base + t.t_rcd, DramCommand::Read { bank: 0, col: 0 }));
        trace.push(tc(base + t.t_rc, DramCommand::Precharge { bank: 0 }));
    }
    trace
}

#[test]
fn the_legal_base_trace_is_clean() {
    let (t, g) = setup();
    let r = audit(&t, &g, &legal_trace(&t));
    assert!(r.is_clean(), "{}", r.render_human());
}

#[test]
fn mcm001_two_commands_in_one_cycle() {
    let (t, g) = setup();
    // A PRE to an idle bank is a legal no-op, so sharing cycle 0 with the
    // ACT trips only the command-bus rule.
    let trace = [
        tc(0, DramCommand::Activate { bank: 0, row: 1 }),
        tc(0, DramCommand::Precharge { bank: 1 }),
    ];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM001"], "{}", r.render_human());
}

#[test]
fn mcm002_read_inside_trcd() {
    let (t, g) = setup();
    let trace = [
        tc(0, DramCommand::Activate { bank: 0, row: 1 }),
        tc(t.t_rcd - 1, DramCommand::Read { bank: 0, col: 0 }),
    ];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM002"], "{}", r.render_human());
}

#[test]
fn mcm003_precharge_inside_tras() {
    let (t, g) = setup();
    let trace = [
        tc(0, DramCommand::Activate { bank: 0, row: 1 }),
        tc(t.t_ras - 1, DramCommand::Precharge { bank: 0 }),
    ];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM003"], "{}", r.render_human());
}

#[test]
fn mcm005_activate_inside_trp() {
    let (t, g) = setup();
    let trace = [
        tc(0, DramCommand::Activate { bank: 0, row: 1 }),
        tc(t.t_rc, DramCommand::Precharge { bank: 0 }),
        // tRC from the first ACT is already satisfied; only tRP is short.
        tc(
            t.t_rc + t.t_rp - 1,
            DramCommand::Activate { bank: 0, row: 2 },
        ),
    ];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM005"], "{}", r.render_human());
}

#[test]
fn mcm006_activate_inside_trrd() {
    let (t, g) = setup();
    let trace = [
        tc(0, DramCommand::Activate { bank: 0, row: 1 }),
        tc(t.t_rrd - 1, DramCommand::Activate { bank: 1, row: 1 }),
    ];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM006"], "{}", r.render_human());
}

#[test]
fn mcm007_column_command_to_a_closed_bank() {
    let (t, g) = setup();
    let trace = [tc(10, DramCommand::Read { bank: 0, col: 0 })];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM007"], "{}", r.render_human());
}

#[test]
fn mcm008_reads_overlap_on_the_data_bus() {
    let (t, g) = setup();
    let trace = [
        tc(0, DramCommand::Activate { bank: 0, row: 1 }),
        tc(t.t_rcd, DramCommand::Read { bank: 0, col: 0 }),
        tc(t.t_rcd + t.bl_ck - 1, DramCommand::Read { bank: 0, col: 4 }),
    ];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM008"], "{}", r.render_human());
}

#[test]
fn mcm009_read_inside_write_turnaround() {
    let (t, g) = setup();
    let trace = [
        tc(0, DramCommand::Activate { bank: 0, row: 1 }),
        tc(t.t_rcd, DramCommand::Write { bank: 0, col: 0 }),
        // One cycle after the write: inside tWTR, outside every other rule.
        tc(t.t_rcd + 1, DramCommand::Read { bank: 0, col: 4 }),
    ];
    assert!(t.wr_to_rd() > 1, "preset sanity");
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM009"], "{}", r.render_human());
}

#[test]
fn mcm010_precharge_inside_write_recovery() {
    let (t, g) = setup();
    // Write late enough that tRAS is satisfied at the precharge and only
    // the write-recovery window is cut short.
    let wr = t.t_ras;
    let pre = wr + t.wl + t.bl_ck + t.t_wr - 1;
    let trace = [
        tc(0, DramCommand::Activate { bank: 0, row: 1 }),
        tc(wr, DramCommand::Write { bank: 0, col: 0 }),
        tc(pre, DramCommand::Precharge { bank: 0 }),
    ];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM010"], "{}", r.render_human());
}

#[test]
fn mcm011_activate_inside_trfc() {
    let (t, g) = setup();
    let trace = [
        tc(0, DramCommand::Refresh),
        tc(t.t_rfc - 1, DramCommand::Activate { bank: 0, row: 1 }),
    ];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM011"], "{}", r.render_human());
}

#[test]
fn mcm012_refresh_budget_exceeded() {
    let (t, g) = setup();
    // A legal but refresh-free trace spanning three tREFI intervals.
    let trace = [
        tc(0, DramCommand::Activate { bank: 0, row: 1 }),
        tc(t.t_ras, DramCommand::Precharge { bank: 0 }),
        tc(3 * t.t_refi, DramCommand::Activate { bank: 0, row: 2 }),
    ];
    // Without the budget rule the trace is clean...
    let r = audit(&t, &g, &trace);
    assert!(r.is_clean(), "{}", r.render_human());
    // ...with it (allowance 0) the overdue refreshes are the only finding.
    let opts = TraceAuditOptions {
        refresh_budget: Some(0),
        ..TraceAuditOptions::default()
    };
    let r = audit_trace(&t, &g, &trace, &opts);
    assert_eq!(r.ids(), vec!["MCM012"], "{}", r.render_human());
}

#[test]
fn mcm013_activate_while_powered_down() {
    let (t, g) = setup();
    let trace = [
        tc(0, DramCommand::PowerDownEnter),
        tc(t.t_cke_min + 4, DramCommand::Activate { bank: 0, row: 1 }),
    ];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM013"], "{}", r.render_human());
}

#[test]
fn mcm014_srx_without_self_refresh() {
    let (t, g) = setup();
    let trace = [tc(10, DramCommand::SelfRefreshExit)];
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM014"], "{}", r.render_human());
}

#[test]
fn mcm015_fifth_activate_inside_tfaw() {
    // Needs more than four banks, or tRC masks the window.
    let mut g = Geometry::next_gen_mobile_ddr();
    g.banks = 8;
    g.rows = 4096;
    let t = TimingParams::next_gen_mobile_ddr()
        .resolve(400, &g)
        .unwrap();
    let trace: Vec<TracedCommand> = (0u64..5)
        .map(|k| {
            tc(
                k * t.t_rrd,
                DramCommand::Activate {
                    bank: k as u32,
                    row: 0,
                },
            )
        })
        .collect();
    let r = audit(&t, &g, &trace);
    assert_eq!(r.ids(), vec!["MCM015"], "{}", r.render_human());
}

mod config_and_channel_mutations {
    use mcm_channel::MemoryConfig;
    use mcm_load::{HdOperatingPoint, UseCase};
    use mcm_power::InterfacePowerModel;
    use mcm_verify::{check_chunk_coverage, check_traffic_balance, lint_all, lint_feasibility};

    #[test]
    fn the_paper_config_lints_clean() {
        let r = lint_all(
            &UseCase::hd(HdOperatingPoint::Hd1080p30),
            &MemoryConfig::paper(4, 400),
            &InterfacePowerModel::paper(),
        );
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn mcm102_uhd_on_a_single_slow_channel() {
        let r = lint_feasibility(
            &UseCase::hd(HdOperatingPoint::Uhd2160p30),
            &MemoryConfig::paper(1, 200),
        );
        assert_eq!(r.ids(), vec!["MCM102"], "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn mcm201_mapping_that_skips_a_channel() {
        // Rotation over 3 of 4 channels: channel 3 starves, locals collide.
        let r = check_chunk_coverage(4, 16, 4 * 16 * 16, |a| {
            let chunk = a / 16;
            ((chunk % 3) as u32, chunk / 3 * 16)
        });
        assert_eq!(r.ids(), vec!["MCM201"], "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn mcm203_unbalanced_traffic() {
        let r = check_traffic_balance(&[1000, 1000, 1000, 1500], 0.10);
        assert_eq!(r.ids(), vec!["MCM203"], "{}", r.render_human());
    }
}
