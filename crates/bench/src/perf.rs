//! The `mcm bench` performance harness: simulator throughput, not memory
//! behaviour.
//!
//! Every scenario runs `warmup` unmeasured times, then `repeats` measured
//! times; the report keeps all wall-time samples plus the median and p95,
//! and derives a throughput from the median. The work unit depends on the
//! path: the direct path counts issued DRAM commands, the event-driven
//! path counts fired kernel events, the steady-state session counts bytes
//! moved, and the sweep counts grid points.
//!
//! The headline scenario (1080p30 × 4 channels at 400 MHz) is measured
//! identically in `--quick` and full mode, so a quick CI run is directly
//! comparable with the committed full report (`BENCH_sim.json` at the
//! repository root). [`check_regression`] implements that gate.

use std::time::Instant;

use mcm_core::eventsim::run_event_driven_configured;
use mcm_core::{ChunkPolicy, ExecutionPolicy, Experiment, FrameResult, RunOptions};
use mcm_load::HdOperatingPoint;
use mcm_sim::QueueKind;
use mcm_sweep::{
    merge_shards, run_sweep_on, run_sweep_shard_on, RayonExecutor, SweepOptions, SweepSpec,
};
use serde::{Deserialize, Serialize};

/// Direct-path throughput of the seed engine (binary-heap queue,
/// per-command issue, no precomputed timing tables) on the headline
/// scenario, measured with this harness's method before the hot-path
/// rewrite. Kept as the written-down pre-optimization reference in every
/// report.
pub const SEED_DIRECT_EVENTS_PER_SEC: f64 = 26_200_000.0;

/// Event-driven seed throughput; see [`SEED_DIRECT_EVENTS_PER_SEC`].
pub const SEED_EVENT_DRIVEN_EVENTS_PER_SEC: f64 = 6_440_000.0;

/// The hot-path rewrite's throughput goal on the headline scenario.
pub const TARGET_SPEEDUP: f64 = 2.0;

/// Fractional events/sec drop tolerated by [`check_regression`].
pub const REGRESSION_TOLERANCE: f64 = 0.20;

/// Scenario the headline numbers are measured on.
const HEADLINE_SCENARIO: &str = "1080p30 x 4ch @ 400 MHz";

/// Sampling parameters of one harness invocation.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Trim the grid, session and sweep scenarios for CI smoke runs. The
    /// headline scenario is never trimmed.
    pub quick: bool,
    /// Unmeasured runs before sampling starts.
    pub warmup: u32,
    /// Measured runs per scenario.
    pub repeats: u32,
    /// Execution policy applied to the direct and steady scenarios. The
    /// policy-comparison scenarios (`per-channel`, `memoized`) are always
    /// measured on top, whatever this is set to.
    pub execution: ExecutionPolicy,
}

impl BenchConfig {
    /// The full grid: every operating point × 1–8 channels, a steady-state
    /// session and the 500-point sweep; 1 warmup + 5 repeats.
    pub fn full() -> Self {
        BenchConfig {
            quick: false,
            warmup: 1,
            repeats: 5,
            execution: ExecutionPolicy::default(),
        }
    }

    /// The CI smoke configuration: headline plus a two-cell grid, a short
    /// session and the 20-point paper-grid sweep; 1 warmup + 3 repeats.
    pub fn quick() -> Self {
        BenchConfig {
            quick: true,
            warmup: 1,
            repeats: 3,
            execution: ExecutionPolicy::default(),
        }
    }

    /// Overrides the measured repeat count (builder style; min 1).
    pub fn with_repeats(mut self, repeats: u32) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Overrides the execution policy of the base scenarios (builder
    /// style); `mcm bench --execution` / `--threads` land here.
    pub fn with_execution(mut self, execution: ExecutionPolicy) -> Self {
        self.execution = execution;
        self
    }
}

/// One timed scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Human-readable scenario name, e.g. `1080p30 x 4ch direct`.
    pub name: String,
    /// Which engine path ran: `direct`, `event-driven`,
    /// `event-driven-binary-heap`, `steady`, `sweep`, `sweep-sharded`.
    pub kind: String,
    /// Work items completed per run (see `unit`).
    pub work: u64,
    /// What `work` counts: `dram-commands`, `kernel-events`, `bytes`,
    /// `points`.
    pub unit: String,
    /// Median wall time over the measured repeats.
    pub median_ms: f64,
    /// 95th-percentile wall time over the measured repeats.
    pub p95_ms: f64,
    /// `work` divided by the median wall time.
    pub per_sec: f64,
    /// Every measured wall-time sample, in run order.
    pub samples_ms: Vec<f64>,
}

/// The headline comparison: optimized engine vs the recorded seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Headline {
    /// Scenario the numbers are measured on.
    pub scenario: String,
    /// Seed direct-path throughput (pre-optimization reference).
    pub seed_direct_events_per_sec: f64,
    /// Seed event-driven throughput (pre-optimization reference).
    pub seed_event_driven_events_per_sec: f64,
    /// This binary's direct-path throughput, DRAM commands per second.
    pub direct_events_per_sec: f64,
    /// This binary's event-driven throughput (calendar queue), kernel
    /// events per second.
    pub event_driven_events_per_sec: f64,
    /// `direct_events_per_sec` over the seed number.
    pub direct_speedup_vs_seed: f64,
    /// `event_driven_events_per_sec` over the seed number.
    pub event_driven_speedup_vs_seed: f64,
    /// Same-binary calendar-queue vs binary-heap-queue ratio (isolates
    /// the queue from the other optimizations and from the machine).
    pub calendar_vs_binary_heap: f64,
    /// The goal both speedups are judged against.
    pub target_speedup: f64,
    /// Whether both speedups meet [`TARGET_SPEEDUP`].
    pub meets_target: bool,
}

/// Everything `mcm bench` writes to `BENCH_sim.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report format tag.
    pub schema: String,
    /// `full` or `quick`.
    pub mode: String,
    /// Unmeasured runs per scenario.
    pub warmup: u32,
    /// Measured runs per scenario.
    pub repeats: u32,
    /// The optimized-vs-seed comparison.
    pub headline: Headline,
    /// Every timed scenario.
    pub scenarios: Vec<Measurement>,
    /// Grid cells that could not run (infeasible configurations), with
    /// the reason.
    pub skipped: Vec<String>,
}

/// Total DRAM commands a frame issued, summed over channels — the direct
/// path's work unit.
pub fn dram_events(r: &FrameResult) -> u64 {
    r.report
        .channels
        .iter()
        .map(|c| {
            c.device.activates
                + c.device.reads
                + c.device.writes
                + c.device.precharges
                + c.device.refreshes
                + c.device.power_downs
                + c.device.self_refreshes
        })
        .sum()
}

/// Runs `run` `warmup` unmeasured times then `repeats` measured times;
/// returns the wall-time samples in milliseconds.
fn time_repeats<T>(warmup: u32, repeats: u32, mut run: impl FnMut() -> T) -> Vec<f64> {
    for _ in 0..warmup {
        run();
    }
    let repeats = repeats.max(1);
    let mut samples = Vec::with_capacity(repeats as usize);
    for _ in 0..repeats {
        let t0 = Instant::now();
        run();
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples
}

/// Distills wall-time samples into a [`Measurement`].
fn summarize(
    name: impl Into<String>,
    kind: &str,
    work: u64,
    unit: &str,
    samples_ms: Vec<f64>,
) -> Measurement {
    let mut sorted = samples_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    let median_ms = sorted[sorted.len() / 2];
    let p95_idx = ((sorted.len() as f64 * 0.95).ceil() as usize).max(1) - 1;
    let p95_ms = sorted[p95_idx.min(sorted.len() - 1)];
    Measurement {
        name: name.into(),
        kind: kind.into(),
        work,
        unit: unit.into(),
        median_ms,
        p95_ms,
        per_sec: work as f64 / (median_ms / 1e3),
        samples_ms,
    }
}

/// Short scenario label for an operating point — the same names the CLI's
/// `--format` flag accepts.
fn point_label(point: HdOperatingPoint) -> &'static str {
    match point {
        HdOperatingPoint::Hd720p30 => "720p30",
        HdOperatingPoint::Hd720p60 => "720p60",
        HdOperatingPoint::Hd1080p30 => "1080p30",
        HdOperatingPoint::Hd1080p60 => "1080p60",
        HdOperatingPoint::Uhd2160p30 => "2160p30",
    }
}

fn paper_exp(point: HdOperatingPoint, channels: u32, op_limit: Option<u64>) -> Experiment {
    let mut e = Experiment::paper(point, channels, 400);
    e.op_limit = op_limit;
    e
}

/// Scenario-name suffix identifying a non-default execution policy, e.g.
/// `" [per-channel:2]"`. Empty for the serial default so existing
/// baseline scenario names stay stable.
fn policy_suffix(policy: &ExecutionPolicy) -> String {
    if *policy == ExecutionPolicy::default() {
        String::new()
    } else {
        format!(" [{policy}]")
    }
}

/// Times the direct path (one full `run_with` frame). The probe run that
/// establishes the work count doubles as the first warmup.
fn direct_measurement(
    cfg: &BenchConfig,
    point: HdOperatingPoint,
    channels: u32,
    op_limit: Option<u64>,
) -> Result<Measurement, String> {
    let e = paper_exp(point, channels, op_limit);
    let name = format!(
        "{} x{}ch direct{}",
        point_label(point),
        channels,
        policy_suffix(&cfg.execution)
    );
    direct_measurement_on(cfg, &e, name)
}

/// Times the direct path on an explicit experiment (used for the
/// large-capacity retries of statically infeasible paper-part cells).
fn direct_measurement_on(
    cfg: &BenchConfig,
    e: &Experiment,
    name: String,
) -> Result<Measurement, String> {
    let opts = RunOptions::default().with_execution(cfg.execution);
    let frame = |e: &Experiment| {
        e.run_with(&opts)
            .map(|o| o.into_frame().expect("single-frame outcome"))
    };
    let probe = frame(e).map_err(|err| err.to_string())?;
    let work = dram_events(&probe);
    let samples = time_repeats(cfg.warmup.saturating_sub(1), cfg.repeats, || {
        frame(e).expect("probe run succeeded")
    });
    Ok(summarize(name, "direct", work, "dram-commands", samples))
}

/// Times the event-driven master on the chosen kernel queue.
fn event_driven_measurement(
    cfg: &BenchConfig,
    point: HdOperatingPoint,
    channels: u32,
    op_limit: u64,
    window: u32,
    queue: QueueKind,
) -> Result<Measurement, String> {
    let e = paper_exp(point, channels, Some(op_limit));
    let run = |e: &Experiment| run_event_driven_configured(e, window, queue, None);
    let probe = run(&e).map_err(|err| err.to_string())?;
    let kind = match queue {
        QueueKind::Calendar => "event-driven",
        QueueKind::BinaryHeap => "event-driven-binary-heap",
    };
    let samples = time_repeats(cfg.warmup.saturating_sub(1), cfg.repeats, || {
        run(&e).expect("probe run succeeded")
    });
    Ok(summarize(
        format!("{} x{}ch {}", point_label(point), channels, kind),
        kind,
        probe.events,
        "kernel-events",
        samples,
    ))
}

/// Times a multi-frame steady-state session.
fn steady_measurement(cfg: &BenchConfig, frames: u32) -> Result<Measurement, String> {
    let e = paper_exp(HdOperatingPoint::Hd1080p30, 4, Some(50_000));
    let opts = RunOptions::steady(frames).with_execution(cfg.execution);
    let run = |e: &Experiment| {
        e.run_with(&opts)
            .map(|o| o.into_steady().expect("steady outcome"))
    };
    let probe = run(&e).map_err(|err| err.to_string())?;
    let samples = time_repeats(cfg.warmup.saturating_sub(1), cfg.repeats, || {
        run(&e).expect("probe run succeeded")
    });
    Ok(summarize(
        format!(
            "1080p30 x4ch steady {frames} frames{}",
            policy_suffix(&cfg.execution)
        ),
        "steady",
        probe.bytes,
        "bytes",
        samples,
    ))
}

/// The full-mode sweep scenario: 500 points (5 formats × 4 channel counts
/// × 5 clocks × 5 chunk policies), op-limited so the scenario measures
/// engine + scheduler overhead rather than one long frame.
fn sweep_spec_500() -> SweepSpec {
    SweepSpec {
        points: HdOperatingPoint::ALL.to_vec(),
        channels: vec![1, 2, 4, 8],
        clocks_mhz: vec![200, 266, 333, 400, 533],
        chunks: vec![
            ChunkPolicy::PerChannel(16),
            ChunkPolicy::PerChannel(32),
            ChunkPolicy::PerChannel(64),
            ChunkPolicy::PerChannel(128),
            ChunkPolicy::Fixed(128),
        ],
        op_limit: Some(2_000),
        ..SweepSpec::default()
    }
}

/// Times the parallel sweep engine end to end (expand + schedule +
/// simulate), uncached.
fn sweep_measurement(cfg: &BenchConfig) -> Result<Measurement, String> {
    let spec = if cfg.quick {
        SweepSpec {
            op_limit: Some(2_000),
            ..SweepSpec::paper_grid()
        }
    } else {
        sweep_spec_500()
    };
    let options = SweepOptions::default();
    let run = || {
        run_sweep_on(&RayonExecutor::default(), &spec, &options).expect("bench sweep spec expands")
    };
    let probe = run();
    if probe.stats.failed > 0 {
        return Err(format!(
            "sweep scenario had {} failed points",
            probe.stats.failed
        ));
    }
    let samples = time_repeats(cfg.warmup.saturating_sub(1), cfg.repeats, run);
    Ok(summarize(
        format!("sweep {} points", probe.stats.total),
        "sweep",
        probe.stats.total as u64,
        "points",
        samples,
    ))
}

/// Times the distributed sweep path on one machine: the same grid split
/// into four shards, each executed and rendered to a shard document, then
/// parsed and merged back. The delta against the plain `sweep` scenario
/// prices the shard machinery itself — four grid expansions, document
/// rendering, parsing and reassembly. The probe run is asserted
/// byte-identical to the unsharded export, so the scenario doubles as a
/// determinism check.
fn sweep_sharded_measurement(cfg: &BenchConfig) -> Result<Measurement, String> {
    let spec = if cfg.quick {
        SweepSpec {
            op_limit: Some(2_000),
            ..SweepSpec::paper_grid()
        }
    } else {
        sweep_spec_500()
    };
    let options = SweepOptions::default();
    const SHARDS: usize = 4;
    let run = || {
        let docs: Vec<(String, String)> = (0..SHARDS)
            .map(|i| {
                let shard =
                    run_sweep_shard_on(&RayonExecutor::default(), &spec, i, SHARDS, &options)
                        .expect("bench sweep spec shards");
                (format!("shard-{i}"), shard.to_json())
            })
            .collect();
        merge_shards(&docs).expect("bench shards merge")
    };
    let probe = run();
    let whole =
        run_sweep_on(&RayonExecutor::default(), &spec, &options).expect("bench sweep spec expands");
    if probe.to_json() != whole.to_json() {
        return Err("sharded sweep export differs from the unsharded run".into());
    }
    let samples = time_repeats(cfg.warmup.saturating_sub(1), cfg.repeats, run);
    Ok(summarize(
        format!("sweep {} points, {SHARDS} shards + merge", probe.len()),
        "sweep-sharded",
        probe.len() as u64,
        "points",
        samples,
    ))
}

/// Runs every scenario and assembles the report. Infeasible grid cells
/// (2160p does not fit few channels) are recorded in
/// [`BenchReport::skipped`]; an error on the headline scenario aborts the
/// whole bench.
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let mut scenarios = Vec::new();
    let mut skipped = Vec::new();

    // Headline: full frame on the direct path, bounded event-driven run on
    // both queues. Identical in quick and full mode so quick CI reports
    // compare against the committed full report.
    let direct = direct_measurement(cfg, HdOperatingPoint::Hd1080p30, 4, None)?;
    let ed_cal = event_driven_measurement(
        cfg,
        HdOperatingPoint::Hd1080p30,
        4,
        100_000,
        64,
        QueueKind::Calendar,
    )?;
    let ed_heap = event_driven_measurement(
        cfg,
        HdOperatingPoint::Hd1080p30,
        4,
        100_000,
        64,
        QueueKind::BinaryHeap,
    )?;
    let direct_speedup = direct.per_sec / SEED_DIRECT_EVENTS_PER_SEC;
    let ed_speedup = ed_cal.per_sec / SEED_EVENT_DRIVEN_EVENTS_PER_SEC;
    let headline = Headline {
        scenario: HEADLINE_SCENARIO.into(),
        seed_direct_events_per_sec: SEED_DIRECT_EVENTS_PER_SEC,
        seed_event_driven_events_per_sec: SEED_EVENT_DRIVEN_EVENTS_PER_SEC,
        direct_events_per_sec: direct.per_sec,
        event_driven_events_per_sec: ed_cal.per_sec,
        direct_speedup_vs_seed: direct_speedup,
        event_driven_speedup_vs_seed: ed_speedup,
        calendar_vs_binary_heap: ed_cal.per_sec / ed_heap.per_sec,
        target_speedup: TARGET_SPEEDUP,
        meets_target: direct_speedup >= TARGET_SPEEDUP && ed_speedup >= TARGET_SPEEDUP,
    };
    scenarios.push(direct);
    scenarios.push(ed_cal);
    scenarios.push(ed_heap);

    // Policy comparison on the headline cell: the per-channel parallel
    // path (bit-identical output, split across the rayon pool; the gain
    // needs real cores — a 1-CPU runner reports roughly 1x) and the
    // steady-state memoization fast path (identical frames priced once).
    let par_cfg = BenchConfig {
        execution: ExecutionPolicy::per_channel(2),
        ..*cfg
    };
    match direct_measurement(&par_cfg, HdOperatingPoint::Hd1080p30, 4, None) {
        Ok(m) => scenarios.push(m),
        Err(e) => skipped.push(format!("1080p30 x4ch direct [per-channel:2]: {e}")),
    }

    // Single-frame grid, bounded per cell so the full grid stays minutes,
    // not hours.
    let grid: Vec<(HdOperatingPoint, u32)> = if cfg.quick {
        vec![
            (HdOperatingPoint::Hd720p30, 2),
            (HdOperatingPoint::Hd1080p60, 8),
        ]
    } else {
        let mut cells = Vec::new();
        for point in HdOperatingPoint::ALL {
            for channels in [1u32, 2, 4, 8] {
                cells.push((point, channels));
            }
        }
        cells
    };
    for (point, channels) in grid {
        // Only cells whose frame buffers cannot be *laid out* are skipped:
        // a layout overflow aborts the run, whereas a bandwidth-infeasible
        // cell (MCM405) still simulates fine and measures throughput — it
        // just misses real time, which a benchmark does not care about.
        // The skip carries the analyzer's MCM406 witness so the report
        // records *why* a cell is absent.
        let exp = paper_exp(point, channels, None);
        let capacity = mcm_analyze::lint_footprint(&exp.use_case, &exp.memory);
        if capacity.has_errors() {
            let reason = capacity
                .diagnostics
                .iter()
                .map(|d| format!("{}: {}", d.id, d.message))
                .next()
                .unwrap_or_else(|| "unknown".into());
            skipped.push(format!(
                "{} x{}ch direct: statically infeasible on the 512 Mb part ({reason})",
                point_label(point),
                channels
            ));
            // The capacity ceiling is a datasheet field, not a model
            // constant: retry the cell on the 2 Gb large-capacity part,
            // which fits 2160p30 into one or two channels.
            let mut big = paper_exp(point, channels, Some(100_000));
            big.memory.controller.cluster.geometry =
                mcm_dram::Geometry::large_capacity_mobile_ddr();
            if !mcm_analyze::lint_footprint(&big.use_case, &big.memory).has_errors() {
                let name = format!(
                    "{} x{}ch direct (large-capacity){}",
                    point_label(point),
                    channels,
                    policy_suffix(&cfg.execution)
                );
                match direct_measurement_on(cfg, &big, name) {
                    Ok(m) => scenarios.push(m),
                    Err(e) => skipped.push(format!(
                        "{} x{}ch direct (large-capacity): {e}",
                        point_label(point),
                        channels
                    )),
                }
            }
            continue;
        }
        match direct_measurement(cfg, point, channels, Some(100_000)) {
            Ok(m) => scenarios.push(m),
            Err(e) => skipped.push(format!(
                "{} x{}ch direct: {e}",
                point_label(point),
                channels
            )),
        }
    }

    scenarios.push(steady_measurement(cfg, if cfg.quick { 2 } else { 4 })?);

    // Steady-state memoization: enough frames that the per-(stage, config)
    // command streams recur (the reference-slot rotation wraps) and the
    // memo actually prices frames instead of re-simulating them.
    let memo_cfg = BenchConfig {
        execution: cfg.execution.with_memoize_steady(true),
        ..*cfg
    };
    let memo_frames = if cfg.quick { 8 } else { 16 };
    match steady_measurement(&memo_cfg, memo_frames) {
        Ok(m) => scenarios.push(m),
        Err(e) => skipped.push(format!("1080p30 x4ch steady memoized: {e}")),
    }

    scenarios.push(sweep_measurement(cfg)?);
    scenarios.push(sweep_sharded_measurement(cfg)?);

    Ok(BenchReport {
        schema: "mcm-bench/v1".into(),
        mode: if cfg.quick { "quick" } else { "full" }.into(),
        warmup: cfg.warmup,
        repeats: cfg.repeats,
        headline,
        scenarios,
        skipped,
    })
}

/// Fails when either headline events/sec number regressed more than
/// `tolerance` (a fraction, e.g. 0.2) below the baseline report's.
pub fn check_regression(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance: f64,
) -> Result<(), String> {
    let mut failures = Vec::new();
    for (path, cur, base) in [
        (
            "direct",
            current.headline.direct_events_per_sec,
            baseline.headline.direct_events_per_sec,
        ),
        (
            "event-driven",
            current.headline.event_driven_events_per_sec,
            baseline.headline.event_driven_events_per_sec,
        ),
    ] {
        if cur < base * (1.0 - tolerance) {
            failures.push(format!(
                "{path}: {:.2}M events/s is more than {:.0}% below the baseline {:.2}M events/s",
                cur / 1e6,
                tolerance * 100.0,
                base / 1e6
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Renders the report as the table `mcm bench` prints.
pub fn render_text(report: &BenchReport) -> String {
    let h = &report.headline;
    let mut out = format!(
        "mcm bench ({} mode, {} warmup + {} repeats)\n\n\
         headline: {}\n\
         \x20 direct        {:>8.2}M events/s  ({:.2}x vs seed {:.2}M, target {:.1}x)\n\
         \x20 event-driven  {:>8.2}M events/s  ({:.2}x vs seed {:.2}M, target {:.1}x)\n\
         \x20 calendar vs binary-heap queue: {:.2}x  |  target met: {}\n\n",
        report.mode,
        report.warmup,
        report.repeats,
        h.scenario,
        h.direct_events_per_sec / 1e6,
        h.direct_speedup_vs_seed,
        h.seed_direct_events_per_sec / 1e6,
        h.target_speedup,
        h.event_driven_events_per_sec / 1e6,
        h.event_driven_speedup_vs_seed,
        h.seed_event_driven_events_per_sec / 1e6,
        h.target_speedup,
        h.calendar_vs_binary_heap,
        if h.meets_target { "yes" } else { "NO" },
    );
    out += &format!(
        "{:<44} {:>12} {:>10} {:>10} {:>14}\n",
        "scenario", "work", "median ms", "p95 ms", "per second"
    );
    for m in &report.scenarios {
        let per_sec = if m.per_sec >= 1e6 {
            format!("{:>11.2}M", m.per_sec / 1e6)
        } else {
            format!("{:>12.0}", m.per_sec)
        };
        out += &format!(
            "{:<44} {:>12} {:>10.2} {:>10.2} {per_sec} {}\n",
            m.name, m.work, m.median_ms, m.p95_ms, m.unit
        );
    }
    for s in &report.skipped {
        out += &format!("skipped: {s}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            quick: true,
            warmup: 0,
            repeats: 1,
            execution: ExecutionPolicy::default(),
        }
    }

    #[test]
    fn summarize_median_and_p95() {
        let m = summarize(
            "s",
            "direct",
            1_000,
            "dram-commands",
            vec![4.0, 1.0, 2.0, 3.0, 5.0],
        );
        assert_eq!(m.median_ms, 3.0);
        assert_eq!(m.p95_ms, 5.0);
        assert!((m.per_sec - 1_000.0 / 3.0e-3).abs() < 1e-6);
        assert_eq!(m.samples_ms.len(), 5);
    }

    #[test]
    fn direct_measurement_counts_dram_commands() {
        let m = direct_measurement(&tiny(), HdOperatingPoint::Hd720p30, 2, Some(2_000)).unwrap();
        assert!(m.work > 2_000, "a 2000-op frame issues more DRAM commands");
        assert!(m.per_sec > 0.0);
        assert_eq!(m.unit, "dram-commands");
    }

    #[test]
    fn infeasible_cell_is_an_error_not_a_panic() {
        let err =
            direct_measurement(&tiny(), HdOperatingPoint::Uhd2160p30, 1, Some(2_000)).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn grid_skips_carry_the_static_witness() {
        // The full-grid loop skips these cells up front with the analyzer's
        // verdict, so BENCH_sim.json says *why* 2160p30 is absent at low
        // channel counts rather than echoing a simulator error.
        for channels in [1u32, 2] {
            let v = mcm_analyze::verdict(&paper_exp(HdOperatingPoint::Uhd2160p30, channels, None));
            let reason = v.reason().expect("2160p30 on 1-2 channels is infeasible");
            assert!(reason.starts_with("MCM4"), "{reason}");
        }
        // Feasible cells pass the pre-check and still get measured.
        let v = mcm_analyze::verdict(&paper_exp(HdOperatingPoint::Uhd2160p30, 8, None));
        assert!(v.feasible, "{:?}", v.reason());
    }

    #[test]
    fn queue_kinds_measure_the_same_work() {
        let cal = event_driven_measurement(
            &tiny(),
            HdOperatingPoint::Hd720p30,
            2,
            3_000,
            8,
            QueueKind::Calendar,
        )
        .unwrap();
        let heap = event_driven_measurement(
            &tiny(),
            HdOperatingPoint::Hd720p30,
            2,
            3_000,
            8,
            QueueKind::BinaryHeap,
        )
        .unwrap();
        // Parity: both queues fire the identical event count.
        assert_eq!(cal.work, heap.work);
        assert_eq!(cal.unit, "kernel-events");
    }

    #[test]
    fn regression_gate_trips_only_past_tolerance() {
        let mk = |direct: f64, ed: f64| BenchReport {
            schema: "mcm-bench/v1".into(),
            mode: "quick".into(),
            warmup: 1,
            repeats: 3,
            headline: Headline {
                scenario: HEADLINE_SCENARIO.into(),
                seed_direct_events_per_sec: SEED_DIRECT_EVENTS_PER_SEC,
                seed_event_driven_events_per_sec: SEED_EVENT_DRIVEN_EVENTS_PER_SEC,
                direct_events_per_sec: direct,
                event_driven_events_per_sec: ed,
                direct_speedup_vs_seed: 1.0,
                event_driven_speedup_vs_seed: 1.0,
                calendar_vs_binary_heap: 1.0,
                target_speedup: TARGET_SPEEDUP,
                meets_target: false,
            },
            scenarios: vec![],
            skipped: vec![],
        };
        let base = mk(100.0e6, 10.0e6);
        assert!(check_regression(&mk(85.0e6, 9.0e6), &base, 0.2).is_ok());
        assert!(check_regression(&mk(79.0e6, 10.0e6), &base, 0.2).is_err());
        assert!(check_regression(&mk(100.0e6, 7.9e6), &base, 0.2).is_err());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            schema: "mcm-bench/v1".into(),
            mode: "quick".into(),
            warmup: 1,
            repeats: 3,
            headline: Headline {
                scenario: HEADLINE_SCENARIO.into(),
                seed_direct_events_per_sec: SEED_DIRECT_EVENTS_PER_SEC,
                seed_event_driven_events_per_sec: SEED_EVENT_DRIVEN_EVENTS_PER_SEC,
                direct_events_per_sec: 52.4e6,
                event_driven_events_per_sec: 12.9e6,
                direct_speedup_vs_seed: 2.0,
                event_driven_speedup_vs_seed: 2.0,
                calendar_vs_binary_heap: 1.3,
                target_speedup: TARGET_SPEEDUP,
                meets_target: true,
            },
            scenarios: vec![summarize("s", "direct", 10, "dram-commands", vec![1.0])],
            skipped: vec!["2160p30 x1ch direct: does not fit".into()],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.headline.direct_events_per_sec, 52.4e6);
        assert_eq!(back.scenarios.len(), 1);
        assert_eq!(back.skipped.len(), 1);
        assert!(render_text(&back).contains("target met: yes"));
    }

    #[test]
    fn sweep_spec_is_500_points() {
        assert_eq!(sweep_spec_500().len(), 500);
        assert_eq!(sweep_spec_500().expand().unwrap().len(), 500);
    }
}
