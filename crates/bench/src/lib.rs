//! # mcm-bench — the paper-reproduction harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p mcm-bench --bin <name>`):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table I — per-stage memory bandwidth requirements |
//! | `table2` | Table II — memory mapping over channels |
//! | `fig3` | Fig. 3 — access time vs. clock, 720p30, 1/2/4/8 channels |
//! | `fig4` | Fig. 4 — access time vs. format at 400 MHz |
//! | `fig5` | Fig. 5 — power vs. format at 400 MHz (interface stacked) |
//! | `xdr` | the Section IV XDR comparison |
//! | `repro` | everything above, in paper order, plus the trend analyses |
//! | `ablate_mapping` | RBC vs. BRC address multiplexing |
//! | `ablate_page_policy` | open vs. closed page |
//! | `ablate_power_down` | power-down policies |
//! | `ablate_interleave` | interleave granularity 16–128 B |
//! | `ablate_chunk` | master-transaction sizing policies |
//! | `ext_clusters` | the conclusions' channel-cluster proposal |
//!
//! Criterion benches (`cargo bench -p mcm-bench`) measure the simulator
//! itself (cells simulated per second), not the modelled memory.

use mcm_core::{BatchRunner, CoreError, Experiment, FrameResult};
use mcm_sweep::{ParallelRunner, PointOutcome};

pub mod perf;

/// Runs a set of experiments on the `mcm-sweep` thread-pool engine and
/// returns results in input order (panics become typed errors).
pub fn run_parallel(experiments: Vec<Experiment>) -> Vec<Result<FrameResult, CoreError>> {
    ParallelRunner::new().run_batch(&experiments)
}

/// Formats an access-time cell the way the harness tables print it.
pub fn fmt_ms(r: &Result<FrameResult, CoreError>) -> String {
    match r {
        Ok(fr) => format!("{:8.2}", fr.access_time.as_ms_f64()),
        Err(_) => format!("{:>8}", "n/a"),
    }
}

/// Formats a power cell with the Fig. 5 suppression convention.
pub fn fmt_mw(r: &Result<FrameResult, CoreError>) -> String {
    match r {
        Ok(fr) => match fr.reported_power_mw() {
            Some(mw) => format!("{mw:8.0}"),
            None => format!("{:>8}", 0),
        },
        Err(_) => format!("{:>8}", 0),
    }
}

/// Formats a sweep point's access time the way the harness tables print it
/// (`n/a` for infeasible or failed points).
pub fn fmt_point_ms(p: &PointOutcome) -> String {
    match &p.outcome {
        Ok(r) if r.feasible => format!("{:8.2}", r.access_ms.unwrap_or(0.0)),
        _ => format!("{:>8}", "n/a"),
    }
}

/// Formats a sweep point's total power in mW (`n/a` for infeasible or
/// failed points).
pub fn fmt_point_mw(p: &PointOutcome) -> String {
    match &p.outcome {
        Ok(r) => match r.total_mw() {
            Some(mw) => format!("{mw:8.0}"),
            None => format!("{:>8}", "n/a"),
        },
        Err(_) => format!("{:>8}", "n/a"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_core::RunOptions;
    use mcm_load::HdOperatingPoint;

    #[test]
    fn parallel_runner_preserves_order_and_determinism() {
        let mk = |ch| {
            let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, ch, 400);
            e.op_limit = Some(5_000);
            e
        };
        let results = run_parallel(vec![mk(1), mk(2), mk(4)]);
        assert_eq!(results.len(), 3);
        let times: Vec<_> = results
            .iter()
            .map(|r| r.as_ref().unwrap().access_time)
            .collect();
        assert!(times[0] > times[1] && times[1] > times[2]);
        // Deterministic across parallel executions.
        let again = run_parallel(vec![mk(1), mk(2), mk(4)]);
        for (a, b) in results.iter().zip(&again) {
            assert_eq!(
                a.as_ref().unwrap().access_time,
                b.as_ref().unwrap().access_time
            );
        }
    }

    #[test]
    fn formatters() {
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 8, 400);
        e.op_limit = Some(1_000);
        let ok = e
            .run_with(&RunOptions::default())
            .map(|o| o.into_frame().expect("single-frame outcome"));
        assert!(fmt_ms(&ok).trim().parse::<f64>().is_ok());
        let err: Result<FrameResult, CoreError> = Err(CoreError::BadParam { reason: "x".into() });
        assert_eq!(fmt_ms(&err).trim(), "n/a");
        assert_eq!(fmt_mw(&err).trim(), "0");
    }
}
