//! Power breakdown: where the milliwatts of Fig. 5 actually go.
//!
//! Splits each configuration's average power into background (standby +
//! power-down residency), activate, read bursts, write bursts, refresh and
//! the equation (1) interface — the decomposition behind the paper's
//! "moderate increase" claim for multi-channel configurations.

use mcm_core::{Experiment, RunOptions};
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Average power breakdown over the frame period [mW] @ 400 MHz\n");
    println!("  format / ch              |   bg  |  act |  read | write |  ref |  i/f | total");
    for p in [
        HdOperatingPoint::Hd720p30,
        HdOperatingPoint::Hd1080p30,
        HdOperatingPoint::Uhd2160p30,
    ] {
        for ch in [1u32, 4, 8] {
            let run = Experiment::paper(p, ch, 400)
                .run_with(&RunOptions::default())
                .map(|o| o.into_frame().expect("single-frame outcome"));
            let Ok(r) = run else {
                continue;
            };
            // Average over the same horizon the Fig. 5 cells use: the
            // frame period, or the (longer) access time when it overruns.
            let period_ns = r.frame_budget.as_ns_f64().max(r.access_time.as_ns_f64());
            let mut bg = 0.0;
            let (mut act, mut rd, mut wr, mut rf) = (0.0, 0.0, 0.0, 0.0);
            for c in &r.report.channels {
                bg += c.background_energy_pj / period_ns;
                let (a, rdd, wrr, rff) = c.event_breakdown_pj;
                act += a / period_ns;
                rd += rdd / period_ns;
                wr += wrr / period_ns;
                rf += rff / period_ns;
            }
            let iface = r.power.interface_mw;
            println!(
                "  {p} {ch}ch | {bg:>5.0} | {act:>4.1} | {rd:>5.0} | {wr:>5.0} | {rf:>4.1} | {iface:>4.0} | {:>5.0}",
                bg + act + rd + wr + rf + iface
            );
        }
    }
    println!("\nReading: bursts dominate and scale with the *load*, not the channel");
    println!("count; the multi-channel premium is background + interface only —");
    println!("which the power-down policy keeps small. That is the paper's");
    println!("'moderate overhead' claim, decomposed.");
}
