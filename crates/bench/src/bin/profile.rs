//! Stage profile: where the frame's memory time goes, per configuration.
//!
//! Table I gives each stage's traffic volume; this target measures each
//! stage's *time* on the simulated memory — volumes and times differ
//! because stages have different read/write mixes and locality.

use mcm_core::profile::run_profiled;
use mcm_core::Experiment;
use mcm_load::HdOperatingPoint;

fn main() {
    for (p, ch) in [
        (HdOperatingPoint::Hd720p30, 1u32),
        (HdOperatingPoint::Hd1080p30, 4),
    ] {
        println!("=== {p} on {ch} ch @ 400 MHz ===\n");
        let exp = Experiment::paper(p, ch, 400);
        let profile = run_profiled(&exp).expect("profiled run");
        print!("{}", profile.render());
        if let Some(b) = profile.bottleneck() {
            println!(
                "\n  bottleneck: {} ({:.1}% of the frame)\n",
                b.stage,
                100.0 * b.time.as_ps() as f64 / profile.total.as_ps() as f64
            );
        }
    }
}
