//! Regenerates Fig. 4: effect of encoding format on memory access time at
//! 400 MHz, against the 30/60 fps real-time lines.

fn main() {
    let data = mcm_core::figures::format_grid_data().expect("fig4 grid");
    print!("{}", mcm_core::figures::render_fig4(&data));
}
