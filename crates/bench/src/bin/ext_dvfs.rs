//! Extension E5: frequency scaling vs energy per frame.
//!
//! The conclusions call for "novel policies \[and\] advanced control
//! mechanisms … to keep the power consumption manageable". The classic
//! question: record at a high clock and race to power-down, or at the
//! lowest clock that still meets real time? This target prints energy per
//! frame across the DDR2 clock range.

use mcm_core::{Experiment, RunOptions};
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Energy per frame [mJ] and verdict vs clock (1080p30, 4 channels)\n");
    println!("  MHz | access [ms] |  power [mW] | energy/frame [mJ] | verdict");
    for clk in [200u64, 266, 333, 400, 466, 533] {
        let e = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, clk);
        let r = e
            .run_with(&RunOptions::default())
            .expect("run")
            .into_frame()
            .expect("single-frame outcome");
        // Average power over the frame period x the period = energy.
        let energy_mj = r.power.total_mw() * r.frame_budget.as_s_f64();
        println!(
            "  {clk:>3} | {:>11.2} | {:>11.0} | {:>17.3} | {}",
            r.access_time.as_ms_f64(),
            r.power.total_mw(),
            energy_mj,
            r.verdict
        );
    }
    println!("\nExpectation: per-event (burst/activate) energy is charge-based and");
    println!("clock-independent; higher clocks add standby+interface power but buy");
    println!("a longer power-down tail — energy per frame stays nearly flat, so the");
    println!("deciding factor is simply which clocks meet real time.");
}
