//! Extension E11: the real ceiling of H.264 level 5.2 — 2160p60.
//!
//! The paper stops at 2160p30 and concludes the subsystem "scales well for
//! future needs". Level 5.2 actually admits 3840x2160 at 60 fps
//! (1,944,000 MB/s of 2,073,600 allowed) — roughly 32 GB/s of execution
//! memory traffic. This target asks: can the paper's device do it at all,
//! and what does a projected LPDDR2-class successor (up to 800 MHz,
//! 1.2 V core) need?

use mcm_core::{CoreError, Experiment, FrameResult, RunOptions};

fn frame(exp: &Experiment) -> Result<FrameResult, CoreError> {
    exp.run_with(&RunOptions::default())
        .map(|o| o.into_frame().expect("single-frame outcome"))
}
use mcm_dram::ClusterConfig;
use mcm_load::{FrameFormat, H264Level, HdOperatingPoint, RefFrames, UseCase, UseCaseMode};

fn uc_2160p60() -> UseCase {
    UseCase {
        video: FrameFormat::UHD_2160,
        fps: 60,
        level: H264Level::L5_2,
        digizoom: 1.0,
        display: FrameFormat::WVGA,
        display_hz: 60,
        video_kbps: H264Level::L5_2.limits().max_br_kbps,
        audio_kbps: 128,
        ref_frames: RefFrames::Fixed(4),
        encoder_factor: 6,
        mode: UseCaseMode::Recording,
    }
}

fn main() {
    let uc = uc_2160p60();
    uc.validate().expect("2160p60 is legal at level 5.2");
    println!(
        "2160p60 (the level 5.2 ceiling): {:.1} GB/s of execution-memory load\n",
        uc.table_row().gbytes_per_second()
    );
    println!("  device / clock / channels  | access [ms] vs 16.7 | power");

    // The paper's device at its best configuration.
    let mut exp = Experiment::paper(HdOperatingPoint::Uhd2160p30, 8, 533);
    exp.use_case = uc;
    let r = frame(&exp).expect("paper device run");
    println!(
        "  paper device, 533 MHz, 8ch |  {:>6.2} [{}] | {}",
        r.access_time.as_ms_f64(),
        r.verdict,
        r.power
    );

    // The projected future part.
    for clock in [667u64, 800] {
        let mut exp = Experiment::paper(HdOperatingPoint::Uhd2160p30, 8, 400);
        exp.use_case = uc;
        exp.memory.clock_mhz = clock;
        exp.memory.controller.cluster = ClusterConfig::future_lpddr2(clock);
        let r = frame(&exp).expect("future device run");
        println!(
            "  future LPDDR2, {clock} MHz, 8ch |  {:>6.2} [{}] | {}",
            r.access_time.as_ms_f64(),
            r.verdict,
            r.power
        );
    }
    println!("\nExpectation: the paper's DDR2-window device cannot reach 2160p60 even");
    println!("at 533 MHz x 8 channels; the projected LPDDR2-class part makes it at");
    println!("~800 MHz — scaling the paper's own recipe (faster clock, lower");
    println!("voltage) one more generation, exactly as its conclusion anticipates.");
}
