//! Extension E3: race-to-sleep vs. paced operation.
//!
//! The paper's load model issues the frame's accesses back-to-back and lets
//! the memory power down for the rest of the frame (race-to-sleep). A
//! rate-controlled master spreads the same accesses across the budget.
//! This target quantifies the difference in power and per-request latency —
//! directly relevant to the conclusions' call for "novel policies" to keep
//! power manageable.

use mcm_core::Pacing;
use mcm_load::HdOperatingPoint;
use mcm_sweep::{run_sweep_on, PointOutcome, RayonExecutor, SweepOptions, SweepSpec};

fn main() {
    println!("Race-to-sleep (greedy) vs. paced master @ 400 MHz\n");
    println!(
        "  format / ch              |  power greedy |  power paced | p99 latency greedy/paced"
    );
    let points = [HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30];
    let spec = SweepSpec {
        points: points.to_vec(),
        channels: vec![1, 4],
        pacings: vec![Pacing::Greedy, Pacing::Paced],
        ..SweepSpec::default()
    };
    // Expansion order is points -> channels -> pacing: results come back
    // as (greedy, paced) pairs.
    let result =
        run_sweep_on(&RayonExecutor::default(), &spec, &SweepOptions::default()).expect("sweep");
    let mw = |c: &PointOutcome| {
        c.outcome
            .as_ref()
            .ok()
            .and_then(|r| r.total_mw())
            .unwrap_or(f64::NAN)
    };
    let p99 = |c: &PointOutcome| {
        c.outcome
            .as_ref()
            .ok()
            .and_then(|r| r.latency_p99_ns)
            .map(|ns| format!("{ns:.0} ns"))
            .unwrap_or_else(|| "-".into())
    };
    let mut pairs = result.points.chunks(2);
    for p in points {
        for ch in [1u32, 4] {
            let pair = pairs.next().expect("pair");
            println!(
                "  {p} {ch}ch |   {:>8.0} mW |  {:>8.0} mW | {} / {}",
                mw(&pair[0]),
                mw(&pair[1]),
                p99(&pair[0]),
                p99(&pair[1]),
            );
        }
    }
    println!("\nExpectation: greedy keeps the long power-down tail and suffers deep");
    println!("queueing latencies; pacing raises background power (less power-down)");
    println!("but bounds per-request latency — the classic race-to-idle trade.");
}
