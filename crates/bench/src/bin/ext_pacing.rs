//! Extension E3: race-to-sleep vs. paced operation.
//!
//! The paper's load model issues the frame's accesses back-to-back and lets
//! the memory power down for the rest of the frame (race-to-sleep). A
//! rate-controlled master spreads the same accesses across the budget.
//! This target quantifies the difference in power and per-request latency —
//! directly relevant to the conclusions' call for "novel policies" to keep
//! power manageable.

use mcm_core::{Experiment, Pacing};
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Race-to-sleep (greedy) vs. paced master @ 400 MHz\n");
    println!(
        "  format / ch              |  power greedy |  power paced | p99 latency greedy/paced"
    );
    for p in [HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30] {
        for ch in [1u32, 4] {
            let run = |pacing: Pacing| {
                let mut e = Experiment::paper(p, ch, 400);
                e.pacing = pacing;
                e.run().expect("run")
            };
            let g = run(Pacing::Greedy);
            let pcd = run(Pacing::Paced);
            let p99 = |r: &mcm_core::FrameResult| {
                r.report
                    .channels
                    .iter()
                    .filter_map(|c| c.latency_p99)
                    .max()
                    .map(|t| format!("{t}"))
                    .unwrap_or_else(|| "-".into())
            };
            println!(
                "  {p} {ch}ch |   {:>8.0} mW |  {:>8.0} mW | {} / {}",
                g.power.total_mw(),
                pcd.power.total_mw(),
                p99(&g),
                p99(&pcd),
            );
        }
    }
    println!("\nExpectation: greedy keeps the long power-down tail and suffers deep");
    println!("queueing latencies; pacing raises background power (less power-down)");
    println!("but bounds per-request latency — the classic race-to-idle trade.");
}
