//! Ablation A5: master-transaction sizing.
//!
//! The paper's uniform ~2x speedup per channel doubling implies the
//! per-channel sequential run length stays constant as channels grow
//! (`ChunkPolicy::PerChannel`). A fixed cache-line master shows what
//! happens otherwise: read/write bus turnarounds eat the added channels.

use mcm_bench::fmt_point_ms;
use mcm_core::ChunkPolicy;
use mcm_load::HdOperatingPoint;
use mcm_sweep::{run_sweep_on, RayonExecutor, SweepOptions, SweepSpec};

fn main() {
    println!("Ablation: master transaction sizing (720p30 access time [ms] @ 400 MHz)\n");
    println!("  channels | per-ch 64B  fixed 64B fixed 256B fixed 1KiB");
    let policies = [
        ChunkPolicy::PerChannel(64),
        ChunkPolicy::Fixed(64),
        ChunkPolicy::Fixed(256),
        ChunkPolicy::Fixed(1024),
    ];
    let spec = SweepSpec {
        points: vec![HdOperatingPoint::Hd720p30],
        channels: vec![1, 2, 4, 8],
        chunks: policies.to_vec(),
        ..SweepSpec::default()
    };
    // Expansion order is channels -> chunk policies: each run of four
    // results is one printed row.
    let result =
        run_sweep_on(&RayonExecutor::default(), &spec, &SweepOptions::default()).expect("sweep");
    for (row, ch) in result.points.chunks(policies.len()).zip([1u32, 2, 4, 8]) {
        let cells: String = row
            .iter()
            .map(|c| format!("  {}", fmt_point_ms(c)))
            .collect();
        println!("  {ch:>8} |{cells}");
    }
    println!("\nExpectation: per-channel sizing keeps the 2x-per-doubling trend;");
    println!("a fixed 64B master flattens out beyond 2 channels.");
}
