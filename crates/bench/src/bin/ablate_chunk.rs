//! Ablation A5: master-transaction sizing.
//!
//! The paper's uniform ~2x speedup per channel doubling implies the
//! per-channel sequential run length stays constant as channels grow
//! (`ChunkPolicy::PerChannel`). A fixed cache-line master shows what
//! happens otherwise: read/write bus turnarounds eat the added channels.

use mcm_bench::{fmt_ms, run_parallel};
use mcm_core::{ChunkPolicy, Experiment};
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Ablation: master transaction sizing (720p30 access time [ms] @ 400 MHz)\n");
    println!("  channels | per-ch 64B  fixed 64B fixed 256B fixed 1KiB");
    for ch in [1u32, 2, 4, 8] {
        let policies = [
            ChunkPolicy::PerChannel(64),
            ChunkPolicy::Fixed(64),
            ChunkPolicy::Fixed(256),
            ChunkPolicy::Fixed(1024),
        ];
        let exps: Vec<Experiment> = policies
            .iter()
            .map(|&c| {
                let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, ch, 400);
                e.chunk = c;
                e
            })
            .collect();
        let row: String = run_parallel(exps)
            .iter()
            .map(|r| format!("  {}", fmt_ms(r)))
            .collect();
        println!("  {ch:>8} |{row}");
    }
    println!("\nExpectation: per-channel sizing keeps the 2x-per-doubling trend;");
    println!("a fixed 64B master flattens out beyond 2 channels.");
}
