//! Ablation A1: RBC vs. BRC address multiplexing on the Fig. 3 grid.
//!
//! The paper: "the shown results utilize Row-Bank-Column (RBC) address
//! multiplexing since somewhat better performance were achieved compared to
//! the Bank-Row-Column (BRC) multiplexing type."

use mcm_bench::{fmt_ms, run_parallel};
use mcm_core::Experiment;
use mcm_dram::AddressMapping;
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Ablation: address multiplexing (720p30 frame access time [ms])\n");
    println!("  ch\\MHz   |      200      266      333      400      466      533");
    for mapping in [AddressMapping::Rbc, AddressMapping::Brc] {
        println!("  --- {mapping} ---");
        for ch in [1u32, 2, 4, 8] {
            let exps: Vec<Experiment> = [200u64, 266, 333, 400, 466, 533]
                .iter()
                .map(|&clk| {
                    let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, ch, clk);
                    e.memory = e.memory.with_mapping(mapping);
                    e
                })
                .collect();
            let row: String = run_parallel(exps).iter().map(fmt_ms).collect();
            println!("  {ch:>8} |{row}");
        }
    }
    println!("\nExpectation: RBC is faster for two compounding reasons: sequential");
    println!("sweeps rotate banks at page boundaries (hiding activates), and the");
    println!("allocator can stagger concurrently-streamed buffers across banks.");
    println!("Under BRC the bank bits are the top address bits, so buffers cannot");
    println!("be bank-staggered without wasting a quarter of the address space --");
    println!("concurrent streams conflict in one bank on top of the page stalls.");
}
