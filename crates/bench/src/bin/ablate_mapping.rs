//! Ablation A1: RBC vs. BRC address multiplexing on the Fig. 3 grid.
//!
//! The paper: "the shown results utilize Row-Bank-Column (RBC) address
//! multiplexing since somewhat better performance were achieved compared to
//! the Bank-Row-Column (BRC) multiplexing type."

use mcm_bench::fmt_point_ms;
use mcm_dram::AddressMapping;
use mcm_load::HdOperatingPoint;
use mcm_sweep::{run_sweep_on, RayonExecutor, SweepOptions, SweepSpec};

const CLOCKS: [u64; 6] = [200, 266, 333, 400, 466, 533];
const CHANNELS: [u32; 4] = [1, 2, 4, 8];

fn main() {
    println!("Ablation: address multiplexing (720p30 frame access time [ms])\n");
    println!("  ch\\MHz   |      200      266      333      400      466      533");
    // One sweep for the whole comparison; expansion order is
    // channels -> clocks -> mappings, so each mapping's grid is sliced
    // back out of the ordered results.
    let spec = SweepSpec {
        points: vec![HdOperatingPoint::Hd720p30],
        channels: CHANNELS.to_vec(),
        clocks_mhz: CLOCKS.to_vec(),
        mappings: vec![AddressMapping::Rbc, AddressMapping::Brc],
        ..SweepSpec::default()
    };
    let result =
        run_sweep_on(&RayonExecutor::default(), &spec, &SweepOptions::default()).expect("sweep");
    for (m, mapping) in [AddressMapping::Rbc, AddressMapping::Brc]
        .iter()
        .enumerate()
    {
        println!("  --- {mapping} ---");
        for (c, ch) in CHANNELS.iter().enumerate() {
            let row: String = (0..CLOCKS.len())
                .map(|k| fmt_point_ms(&result.points[(c * CLOCKS.len() + k) * 2 + m]))
                .collect();
            println!("  {ch:>8} |{row}");
        }
    }
    println!("\nExpectation: RBC is faster for two compounding reasons: sequential");
    println!("sweeps rotate banks at page boundaries (hiding activates), and the");
    println!("allocator can stagger concurrently-streamed buffers across banks.");
    println!("Under BRC the bank bits are the top address bits, so buffers cannot");
    println!("be bank-staggered without wasting a quarter of the address space --");
    println!("concurrent streams conflict in one bank on top of the page stalls.");
}
