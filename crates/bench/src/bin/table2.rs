//! Regenerates Table II: the memory mapping over channels (16-byte
//! interleaving granules rotating over the bank clusters).

fn main() {
    for channels in [2u32, 4, 8] {
        print!("{}", mcm_core::figures::render_table2(channels));
        println!();
    }
}
