//! Extension E6: background-master interference — why the paper keeps a
//! 15% data-processing margin.
//!
//! "The system rarely runs only a single use case and some margin is needed
//! also for data processing." Here a rate-controlled video recording
//! (1080p30, 4 channels, 400 MHz) shares the memory with a background
//! master doing random 64-byte reads (OS/UI traffic). We sweep the
//! background rate and watch the video frame's completion time cross the
//! real-time line.

use mcm_channel::{MasterTransaction, MemoryConfig, MemorySubsystem};
use mcm_ctrl::AccessOp;
use mcm_dram::Geometry;
use mcm_load::{FrameLayout, FrameTraffic, HdOperatingPoint, LayoutOptions, UseCase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let use_case = UseCase::hd(HdOperatingPoint::Hd1080p30);
    let channels = 4u32;
    let clock_mhz = 400u64;
    let budget_cycles = 13_333_333u64; // 33.3 ms at 400 MHz
    let geometry = Geometry::next_gen_mobile_ddr();

    println!("Video (1080p30, paced) + random background reads, 4 ch @ 400 MHz\n");
    println!("  background MB/s | video finished at [ms] | budget 33.33 ms");

    for bg_mb_s in [0u64, 200, 400, 800, 1600, 3200] {
        let mut mem =
            MemorySubsystem::new(&MemoryConfig::paper(channels, clock_mhz)).expect("subsystem");
        let layout = FrameLayout::with_options(
            &use_case,
            &LayoutOptions::bank_staggered(
                // Reserve headroom for the background region.
                mem.capacity_bytes() / 2,
                geometry.page_bytes() as u64,
                channels,
                geometry.banks,
            ),
        )
        .expect("layout");
        let bg_base = mem.capacity_bytes() / 2;
        let bg_span = mem.capacity_bytes() / 2 - 64;

        // Video ops paced to finish at 85% of the budget — exactly the
        // paper's data-processing margin left free.
        let video_span = budget_cycles * 85 / 100;
        let traffic = FrameTraffic::new(&use_case, &layout, 64 * channels).expect("traffic");
        let total = traffic.total_bytes();
        let mut video: Vec<(u64, bool, u64, u32)> = Vec::new(); // arrival, write, addr, len
        let mut sent = 0u64;
        for op in traffic {
            let arrival = (sent as u128 * video_span as u128 / total as u128) as u64;
            video.push((arrival, op.write, op.addr, op.len));
            sent += op.len as u64;
        }

        // Background ops: uniform arrivals, random addresses, fixed seed.
        let bg_bytes = bg_mb_s * 1_000_000 / 30; // per frame
        let bg_ops = bg_bytes / 64;
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let mut background: Vec<(u64, bool, u64, u32)> = (0..bg_ops)
            .map(|k| {
                let arrival = k * budget_cycles / bg_ops.max(1);
                let addr = bg_base + rng.gen_range(0..bg_span / 64) * 64;
                (arrival, false, addr, 64u32)
            })
            .collect();

        // Merge by arrival (stable: video first on ties).
        let mut merged = video.clone();
        merged.append(&mut background);
        merged.sort_by_key(|&(arrival, ..)| arrival);

        let mut video_done = 0u64;
        for (arrival, write, addr, len) in merged {
            let res = mem
                .submit(MasterTransaction {
                    op: if write {
                        AccessOp::Write
                    } else {
                        AccessOp::Read
                    },
                    addr,
                    len: len as u64,
                    arrival,
                })
                .expect("submit");
            if addr < bg_base {
                video_done = video_done.max(res.done_cycle);
            }
        }
        let done_ms = video_done as f64 / (clock_mhz as f64 * 1e3);
        let flag = if done_ms > 33.34 {
            "  <-- misses real time"
        } else if done_ms > 28.34 {
            "  <-- eating into the 15% margin"
        } else {
            ""
        };
        println!("  {bg_mb_s:>15} | {done_ms:>22.2} |{flag}");
    }
    println!("\nExpectation: the frame tolerates background traffic up to roughly the");
    println!("15% margin the paper reserves; beyond that the recording misses frames.");
}
