//! Extension E4: memory-level parallelism (outstanding master transactions).
//!
//! The paper's access-time metric assumes a bandwidth-bound master (the SMP
//! floods the memory with the frame's cache misses). This target runs the
//! same frame on the event-driven kernel with a bounded window of
//! outstanding transactions and shows where the multi-channel speedup
//! collapses into master latency-boundedness — the hidden assumption behind
//! Fig. 3's clean 2x scaling.

use mcm_core::eventsim::run_event_driven;
use mcm_core::{ChunkPolicy, Experiment};
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Access time [ms] vs outstanding master transactions (720p30 @ 400 MHz,");
    println!("64 B cache-line transactions, event-driven kernel)\n");
    println!("  channels \\ window |       1       2       4       8      16      64");
    for ch in [1u32, 2, 4, 8] {
        let mut row = format!("  {ch:>17} |");
        for w in [1u32, 2, 4, 8, 16, 64] {
            let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, ch, 400);
            e.chunk = ChunkPolicy::Fixed(64);
            e.op_limit = Some(100_000);
            let r = run_event_driven(&e, w).expect("event-driven run");
            // Scale the 100k-op prefix to the frame (same extrapolation the
            // direct path uses).
            let scale = 961_711.0 / 100_000.0; // ops per 720p30 frame at 64 B
            row += &format!(" {:>7.2}", r.access_time.as_ms_f64() * scale);
        }
        println!("{row}");
    }
    println!("\nExpectation: with a narrow window the added channels go unused (the");
    println!("master is latency-bound); the paper's 2x-per-doubling requires enough");
    println!("memory-level parallelism to keep all channels busy.");
}
