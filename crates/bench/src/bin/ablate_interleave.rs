//! Ablation A4: channel-interleave granularity.
//!
//! The paper picks the minimum practical granule (16 B = one DRAM burst) so
//! every master transaction spreads over all channels. Coarser granules
//! trade channel parallelism within a transaction for longer per-channel
//! runs.

use mcm_bench::{fmt_ms, run_parallel};
use mcm_core::Experiment;
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Ablation: interleave granularity (720p30 access time [ms] @ 400 MHz)\n");
    println!("  channels |     16B      32B      64B     128B     256B   linear");
    for ch in [2u32, 4, 8] {
        // "linear" = granule as large as one channel (64 MiB): no
        // interleaving at all; a single use case lives in one channel.
        let exps: Vec<Experiment> = [16u64, 32, 64, 128, 256, 64 << 20]
            .iter()
            .map(|&g| {
                let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, ch, 400);
                e.memory.granule_bytes = g;
                e
            })
            .collect();
        let row: String = run_parallel(exps).iter().map(fmt_ms).collect();
        println!("  {ch:>8} |{row}");
    }
    println!("\nExpectation: with per-channel-scaled master transactions the");
    println!("granularity matters little until it approaches the transaction size.");
    println!("The linear (non-interleaved) mapping strands the whole use case in");
    println!("one channel — the paper interleaves because \"the maximum bandwidth");
    println!("for a single use case is desired\".");
}
