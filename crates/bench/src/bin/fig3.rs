//! Regenerates Fig. 3: effect of memory clock frequency on memory access
//! time (one 720p30 frame, 1/2/4/8 channels, 200-533 MHz).

fn main() {
    let data = mcm_core::figures::fig3_data().expect("fig3 grid");
    print!("{}", mcm_core::figures::render_fig3(&data));
    println!();
    print!("{}", mcm_core::charts::fig3_chart(&data, 400));
    println!();
    if let Some(s) = mcm_core::analysis::channel_doubling_speedup(&data) {
        println!("  Mean speedup per channel doubling: {s:.2}x (paper: close to 2x)");
    }
    if let Some(s) = mcm_core::analysis::clock_doubling_speedup(&data) {
        println!("  Mean speedup per clock doubling:   {s:.2}x (paper: close to 2x)");
    }
}
