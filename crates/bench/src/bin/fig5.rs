//! Regenerates Fig. 5: effect of encoding format on memory power
//! consumption at 400 MHz, with the equation (1) interface power stacked
//! and bars suppressed when real time (with the 15% margin) is missed.

fn main() {
    let data = mcm_core::figures::format_grid_data().expect("fig5 grid");
    print!("{}", mcm_core::figures::render_fig5(&data));
    println!();
    for idx in 0..data.points.len() {
        print!("{}", mcm_core::charts::fig5_chart(&data, idx));
        println!();
    }
    println!("\nPaper anchors: 720p 150 mW (1ch) -> 205 mW (8ch); 1080p30 4ch 345 mW; 2160p 8ch 1280 mW.");
}
