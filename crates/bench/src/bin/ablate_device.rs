//! Device-class comparison: the paper's low-power next-generation mobile
//! DDR vs. a commodity (standard) DDR2-class part at the same geometry and
//! clock. The paper motivates the low-power choice with Micron's
//! "Low-Power Versus Standard DDR SDRAM" technical note; this target
//! quantifies it on the recording load.

use mcm_core::{Experiment, RunOptions};
use mcm_dram::ClusterConfig;
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Device class comparison @ 400 MHz (total power [mW] / access [ms])\n");
    println!("  format / channels         |  mobile DDR | standard DDR2");
    for p in [HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30] {
        for ch in [1u32, 4, 8] {
            let mut row = format!("  {p} {ch}ch |");
            for standard in [false, true] {
                let mut e = Experiment::paper(p, ch, 400);
                if standard {
                    e.memory.controller.cluster = ClusterConfig::standard_ddr2(400);
                }
                let r = e
                    .run_with(&RunOptions::default())
                    .map(|o| o.into_frame().expect("single-frame outcome"));
                match r {
                    Ok(r) => {
                        row += &format!(
                            " {:>5.0} / {:>5.2} |",
                            r.power.total_mw(),
                            r.access_time.as_ms_f64()
                        );
                    }
                    Err(_) => row += "        n/a |",
                }
            }
            println!("{row}");
        }
    }
    println!("\nExpectation: comparable access times (same timing class), but the");
    println!("standard part burns several times the power — the low-power device");
    println!("plus 1.35 V projection is what makes the multi-channel budget viable.");
}
