//! Ablation A7: posted-write batching vs the paper's in-order writes.
//!
//! The image-processing stages alternate reads and writes, so the in-order
//! controller pays a bus turnaround every few bursts. A real controller
//! posts writes into a buffer and drains them in batches (with
//! read-own-write hazard detection). This target measures how much of the
//! paper's headline access time is recoverable by that one technique.

use mcm_bench::{fmt_ms, run_parallel};
use mcm_core::Experiment;
use mcm_ctrl::WritePolicy;
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Ablation: write scheduling (frame access time [ms] @ 400 MHz)\n");
    println!("  format / channels         | in-order | batch 8 | batch 32");
    for p in [HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30] {
        for ch in [1u32, 2, 4] {
            let exps: Vec<Experiment> = [
                WritePolicy::Immediate,
                WritePolicy::Batched(8),
                WritePolicy::Batched(32),
            ]
            .iter()
            .map(|&wp| {
                let mut e = Experiment::paper(p, ch, 400);
                e.memory.controller.write_policy = wp;
                e
            })
            .collect();
            let row: String = run_parallel(exps).iter().map(fmt_ms).collect();
            println!("  {p} {ch}ch |{row}");
        }
    }
    println!("\nExpectation: batching recovers most of the read/write turnaround");
    println!("loss in the image-processing stages; the encoder (read-dominated)");
    println!("is unaffected. The paper's numbers correspond to the in-order");
    println!("column — a smarter controller makes its case only stronger.");
}
