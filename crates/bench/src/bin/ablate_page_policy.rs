//! Ablation A2: open-page vs. closed-page row-buffer policy.
//!
//! The paper uses open page throughout ("In all the evaluations, DRAM open
//! page policy is used") — this ablation shows why.

use mcm_bench::{fmt_ms, run_parallel};
use mcm_core::Experiment;
use mcm_ctrl::PagePolicy;
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Ablation: page policy (frame access time [ms] @ 400 MHz)\n");
    println!("  format / channels        |     open   closed");
    for p in [HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30] {
        for ch in [1u32, 2, 4, 8] {
            let exps: Vec<Experiment> = [PagePolicy::Open, PagePolicy::Closed]
                .iter()
                .map(|&pol| {
                    let mut e = Experiment::paper(p, ch, 400);
                    e.memory.controller.page_policy = pol;
                    e
                })
                .collect();
            let row: String = run_parallel(exps).iter().map(fmt_ms).collect();
            println!("  {p} {ch}ch |{row}");
        }
    }
    println!("\nExpectation: the streaming video load is row-hit dominated, so the");
    println!("open-page policy wins consistently.");
}
