//! Ablation A2: open-page vs. closed-page row-buffer policy.
//!
//! The paper uses open page throughout ("In all the evaluations, DRAM open
//! page policy is used") — this ablation shows why.

use mcm_bench::fmt_point_ms;
use mcm_ctrl::PagePolicy;
use mcm_load::HdOperatingPoint;
use mcm_sweep::{run_sweep_on, RayonExecutor, SweepOptions, SweepSpec};

fn main() {
    println!("Ablation: page policy (frame access time [ms] @ 400 MHz)\n");
    println!("  format / channels        |     open   closed");
    let points = [HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30];
    let spec = SweepSpec {
        points: points.to_vec(),
        channels: vec![1, 2, 4, 8],
        page_policies: vec![PagePolicy::Open, PagePolicy::Closed],
        ..SweepSpec::default()
    };
    // Expansion order is points -> channels -> page policies: every
    // consecutive pair of results is one printed row.
    let result =
        run_sweep_on(&RayonExecutor::default(), &spec, &SweepOptions::default()).expect("sweep");
    let mut rows = result.points.chunks(2);
    for p in points {
        for ch in [1u32, 2, 4, 8] {
            let row: String = rows.next().expect("row").iter().map(fmt_point_ms).collect();
            println!("  {p} {ch}ch |{row}");
        }
    }
    println!("\nExpectation: the streaming video load is row-hit dominated, so the");
    println!("open-page policy wins consistently.");
}
