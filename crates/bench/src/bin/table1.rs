//! Regenerates Table I: memory bandwidth requirements for the stages of the
//! video recording use case, for all five HD-compatible H.264/AVC levels.

fn main() {
    let data = mcm_core::figures::table1_data();
    print!("{}", mcm_core::figures::render_table1(&data));
    println!("\nPaper anchors: 720p30 ≈ 1.9 GB/s; 1080p30 ≈ 4.3 GB/s (≈2.2x 720p30); 1080p60 ≈ 8.6 GB/s.");
}
