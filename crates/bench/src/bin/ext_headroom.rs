//! Extension E2: frame-rate headroom.
//!
//! The conclusions claim "the multi-channel memory subsystem configuration
//! scales well for future needs"; this target quantifies the claim as the
//! maximum sustainable frame rate per format and configuration (real time
//! with the 15% margin).

use mcm_core::{analysis, Experiment};
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Maximum sustainable frame rate [fps] @ 400 MHz (>= real time with margin)\n");
    println!("  format \\ channels |       1       2       4       8");
    for p in [
        HdOperatingPoint::Hd720p30,
        HdOperatingPoint::Hd1080p30,
        HdOperatingPoint::Uhd2160p30,
    ] {
        let mut row = format!("  {:>17} |", p.format().to_string());
        for ch in [1u32, 2, 4, 8] {
            let base = Experiment::paper(p, ch, 400);
            match analysis::max_sustainable_fps(&base) {
                Ok(Some(fps)) => row += &format!(" {fps:>7}"),
                Ok(None) => row += &format!(" {:>7}", "-"),
                Err(e) => panic!("headroom sweep failed: {e}"),
            }
        }
        println!("{row}");
    }
    println!("\n(The H.264 level is lifted to the smallest one supporting each trial");
    println!("rate; '-' = not sustainable at any rate, or buffers exceed capacity.)");
}
