//! Extension E7: steady-state recording session.
//!
//! The paper evaluates one encoded frame; here 30 consecutive frames run
//! against one persistent memory subsystem (reference frames rotating,
//! refresh debt and power-down state carried across frames). Per-frame
//! access times must be stable and the sustained power must match the
//! single-frame Fig. 5 bars.

use mcm_core::{Experiment, RunOptions};
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Steady-state session: 30 frames, 1080p30 on 4 ch @ 400 MHz\n");
    let exp = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
    let r = exp
        .run_with(&RunOptions::steady(30))
        .expect("steady run")
        .into_steady()
        .expect("steady outcome");
    let first = r.frames[0].access_time;
    let steady = r.steady_access_time().expect(">1 frame");
    let worst = r
        .frames
        .iter()
        .map(|f| f.access_time)
        .max()
        .expect("frames");
    println!("  frame 0 access time:   {first}");
    println!("  steady mean (1..30):   {steady}");
    println!("  worst frame:           {worst}");
    println!("  all frames real-time:  {}", r.all_real_time());
    println!("  sustained power:       {}", r.power);
    println!(
        "  bytes moved:           {:.1} GB over the second",
        r.bytes as f64 / 1e9
    );
    println!("\nSingle-frame reference (Fig. 5 cell): ");
    let single = exp
        .run_with(&RunOptions::default())
        .expect("single frame")
        .into_frame()
        .expect("single-frame outcome");
    println!(
        "  access {:.2} ms, {}",
        single.access_time.as_ms_f64(),
        single.power
    );
    println!("\nFinding: frames stay comfortably real-time and stable, but run");
    println!("~15-20% above the single-frame ideal: rotating the reconstructed");
    println!("frame into the reference set breaks the allocator's optimal bank");
    println!("stagger for most rotations, adding row conflicts the one-frame");
    println!("methodology (and the paper) never sees. The conclusion holds, with");
    println!("a thinner margin than Fig. 4 suggests.");
}
