//! Extension E8: viewfinder mode.
//!
//! Before the user presses record, the camera pipeline runs capture →
//! process → display with no encoding or storage. This target sizes the
//! memory for that mode: the video-coding stages (the dominant load) drop
//! away and a single channel suffices even for formats whose recording
//! needs four or eight.

use mcm_core::{Experiment, RunOptions};
use mcm_load::{HdOperatingPoint, UseCase};

fn main() {
    println!("Viewfinder vs recording @ 400 MHz (access [ms] / total power [mW])\n");
    println!("  format / channels         |      recording |     viewfinder");
    for p in [
        HdOperatingPoint::Hd720p30,
        HdOperatingPoint::Hd1080p30,
        HdOperatingPoint::Uhd2160p30,
    ] {
        for ch in [1u32, 4] {
            let mut row = format!("  {p} {ch}ch |");
            for viewfinder in [false, true] {
                let mut e = Experiment::paper(p, ch, 400);
                if viewfinder {
                    e.use_case = UseCase::viewfinder(p);
                }
                let r = e
                    .run_with(&RunOptions::default())
                    .map(|o| o.into_frame().expect("single-frame outcome"));
                match r {
                    Ok(r) => {
                        row += &format!(
                            " {:>6.2} / {:>4.0} |",
                            r.access_time.as_ms_f64(),
                            r.power.total_mw()
                        )
                    }
                    Err(_) => row += &format!(" {:>13} |", "no fit"),
                }
            }
            println!("{row}");
        }
    }
    println!("\nExpectation: without the encoder's reference traffic (the 'single");
    println!("most memory intensive part'), even 2160p viewfinding fits lean");
    println!("configurations — the multi-channel memory is for *recording*.");
}
