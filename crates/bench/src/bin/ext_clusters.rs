//! Extension E1: the conclusions' channel-cluster proposal, quantified.
//!
//! "It may be necessary to divide very large multi-channel memories into
//! independent channel clusters, each consisting of \[a\] reasonable number
//! of channels." We compare a flat 8-channel memory against 2x4 clusters
//! for a 1080p30 load that only needs four channels.

use mcm::prelude::*;

fn main() {
    let use_case = UseCase::hd(HdOperatingPoint::Hd1080p30);
    println!("Extension: channel clusters (1080p30 @ 400 MHz)\n");

    let flat = Experiment::paper(HdOperatingPoint::Hd1080p30, 8, 400)
        .run_with(&RunOptions::default())
        .expect("flat run")
        .into_frame()
        .expect("single-frame outcome");
    println!(
        "  flat 8ch:      {:>6.2} ms, {:>4.0} mW total ({:.0} interface)",
        flat.access_time.as_ms_f64(),
        flat.power.total_mw(),
        flat.power.interface_mw
    );

    let geometry = Geometry::next_gen_mobile_ddr();
    let mut clustered = ClusteredMemory::new(&MemoryConfig::paper(4, 400), 2).expect("clusters");
    let layout = FrameLayout::with_options(
        &use_case,
        &mcm_load::LayoutOptions::bank_staggered(
            clustered.cluster_capacity_bytes(),
            geometry.page_bytes() as u64,
            4,
            geometry.banks,
        ),
    )
    .expect("layout");
    for op in FrameTraffic::new(&use_case, &layout, 256).expect("traffic") {
        clustered
            .submit(MasterTransaction {
                op: if op.write {
                    AccessOp::Write
                } else {
                    AccessOp::Read
                },
                addr: op.addr,
                len: op.len as u64,
                arrival: 0,
            })
            .expect("submit");
    }
    let reports = clustered.finish(13_333_333).expect("finish"); // 33.3 ms
    let frame_ns = 1e9 / 30.0;
    let active = reports[0].core_energy_pj / frame_ns;
    let idle = reports[1].core_energy_pj / frame_ns;
    let interface = InterfacePowerModel::paper().total_power_mw(Frequency::from_mhz(400), 4);
    println!(
        "  clustered 2x4: {:>6.2} ms, {:>4.0} mW total (active {:.0} + idle {:.0} + interface {:.0})",
        reports[0].access_time.as_ms_f64(),
        active + idle + interface,
        active,
        idle,
        interface
    );
    println!("\nThe cluster saves interface+standby power on the unused channels at");
    println!("the cost of halving the bandwidth available to the single use case.");
}
