//! Ablation A6: device density.
//!
//! The paper fixes 512 Mb bank clusters. Density changes both the capacity
//! (whether a frame set fits in few channels at all) and tRFC (refresh
//! penalty grows with density). This target sweeps 256 Mb / 512 Mb / 1 Gb
//! clusters over the channel counts for the two largest formats.

use mcm_core::{Experiment, RunOptions};
use mcm_dram::Geometry;
use mcm_load::HdOperatingPoint;

fn densities() -> Vec<(&'static str, Geometry, f64)> {
    let base = Geometry::next_gen_mobile_ddr();
    vec![
        (
            "256Mb",
            Geometry {
                rows: base.rows / 2,
                ..base
            },
            75.0,
        ),
        ("512Mb", base, 110.0),
        (
            "1Gb",
            Geometry {
                rows: base.rows * 2,
                ..base
            },
            140.0,
        ),
    ]
}

fn main() {
    println!("Density sweep @ 400 MHz (access [ms], or capacity shortfall)\n");
    println!("  format / channels         |    256Mb |    512Mb |      1Gb");
    for p in [HdOperatingPoint::Hd1080p30, HdOperatingPoint::Uhd2160p30] {
        for ch in [2u32, 4, 8] {
            let mut row = format!("  {p} {ch}ch |");
            for (_, geometry, t_rfc_ns) in densities() {
                let mut e = Experiment::paper(p, ch, 400);
                e.memory.controller.cluster.geometry = geometry;
                e.memory.controller.cluster.timing.t_rfc_ns = t_rfc_ns;
                let r = e
                    .run_with(&RunOptions::default())
                    .map(|o| o.into_frame().expect("single-frame outcome"));
                match r {
                    Ok(r) => row += &format!(" {:>8.2} |", r.access_time.as_ms_f64()),
                    Err(_) => row += &format!(" {:>8} |", "no fit"),
                }
            }
            println!("{row}");
        }
    }
    println!("\nExpectation: density barely moves the access time (tRFC is ~1% of");
    println!("the schedule) but decides feasibility: at 1 Gb per cluster even the");
    println!("2160p frame set fits two channels — which is exactly why the paper's");
    println!("conclusion expects very large multi-channel memories and proposes");
    println!("channel clusters to keep their power manageable.");
}
