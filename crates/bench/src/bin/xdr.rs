//! Regenerates the Section IV XDR comparison: the 8-channel 400 MHz
//! subsystem vs. the Cell BE XDR interface (25.6 GB/s @ 5 W).

fn main() {
    let data = mcm_core::figures::xdr_data().expect("xdr grid");
    print!("{}", mcm_core::figures::render_xdr(&data));
    println!("\nPaper: \"similar bandwidth (25.0 GB/s) but power consumption from 4% to 25% of the XDR value\".");
}
