//! Extension E10: two concurrent use cases on channel clusters.
//!
//! The conclusions' cluster proposal exists because "the system rarely runs
//! only a single use case". Here a 1080p30 recording and an independent
//! 720p30 viewfinder (e.g. a second camera preview) run concurrently:
//!
//! * on two independent clusters (recording on 4 channels, viewfinder on 2),
//! * on one flat 8-channel memory with both traffic streams merged.

use mcm_channel::{ClusteredMemory, MasterTransaction, MemoryConfig, MemorySubsystem};
use mcm_ctrl::AccessOp;
use mcm_dram::Geometry;
use mcm_load::{FrameLayout, FrameTraffic, HdOperatingPoint, LayoutOptions, UseCase};

fn frame_ops(
    uc: &UseCase,
    capacity: u64,
    channels: u32,
    base: u64,
    budget_cycles: u64,
) -> Vec<(u64, bool, u64, u32)> {
    let geometry = Geometry::next_gen_mobile_ddr();
    let layout = FrameLayout::with_options(
        uc,
        &LayoutOptions::bank_staggered(
            capacity,
            geometry.page_bytes() as u64,
            channels,
            geometry.banks,
        ),
    )
    .expect("layout");
    let traffic = FrameTraffic::new(uc, &layout, 64 * channels).expect("traffic");
    let total = traffic.total_bytes();
    let mut sent = 0u64;
    traffic
        .map(|op| {
            let arrival =
                (sent as u128 * (budget_cycles * 85 / 100) as u128 / total as u128) as u64;
            sent += op.len as u64;
            (arrival, op.write, base + op.addr, op.len)
        })
        .collect()
}

fn main() {
    let recording = UseCase::hd(HdOperatingPoint::Hd1080p30);
    let viewfinder = UseCase::viewfinder(HdOperatingPoint::Hd720p30);
    let budget = 13_333_333u64; // 33.3 ms at 400 MHz
    println!("Concurrent 1080p30 recording + 720p30 viewfinder @ 400 MHz\n");

    // --- clustered: 4 + 2 channels, fully isolated ---
    {
        let mut rec_mem = MemorySubsystem::new(&MemoryConfig::paper(4, 400)).unwrap();
        let mut vf_mem = MemorySubsystem::new(&MemoryConfig::paper(2, 400)).unwrap();
        let mut rec_done = 0u64;
        for (arrival, write, addr, len) in
            frame_ops(&recording, rec_mem.capacity_bytes(), 4, 0, budget)
        {
            let r = rec_mem
                .submit(MasterTransaction {
                    op: if write {
                        AccessOp::Write
                    } else {
                        AccessOp::Read
                    },
                    addr,
                    len: len as u64,
                    arrival,
                })
                .unwrap();
            rec_done = rec_done.max(r.done_cycle);
        }
        let mut vf_done = 0u64;
        for (arrival, write, addr, len) in
            frame_ops(&viewfinder, vf_mem.capacity_bytes(), 2, 0, budget)
        {
            let r = vf_mem
                .submit(MasterTransaction {
                    op: if write {
                        AccessOp::Write
                    } else {
                        AccessOp::Read
                    },
                    addr,
                    len: len as u64,
                    arrival,
                })
                .unwrap();
            vf_done = vf_done.max(r.done_cycle);
        }
        let rec_rep = rec_mem.finish(budget).unwrap();
        let vf_rep = vf_mem.finish(budget).unwrap();
        let frame_ns = budget as f64 * 2.5;
        let power = (rec_rep.core_energy_pj + vf_rep.core_energy_pj) / frame_ns + 6.0 * 4.1472; // eq. (1) for 6 active channels
        println!(
            "  clusters 4+2: recording done {:.2} ms, viewfinder {:.2} ms, {power:.0} mW",
            rec_done as f64 / 400e3,
            vf_done as f64 / 400e3
        );
        let _ = ClusteredMemory::new(&MemoryConfig::paper(2, 400), 1); // (type exercised elsewhere)
    }

    // --- flat 8-channel: both streams merged by arrival ---
    {
        let mut mem = MemorySubsystem::new(&MemoryConfig::paper(8, 400)).unwrap();
        let half = mem.capacity_bytes() / 2;
        let mut ops = frame_ops(&recording, half, 8, 0, budget);
        ops.extend(frame_ops(&viewfinder, half, 8, half, budget));
        ops.sort_by_key(|&(arrival, ..)| arrival);
        let mut rec_done = 0u64;
        let mut vf_done = 0u64;
        for (arrival, write, addr, len) in ops {
            let r = mem
                .submit(MasterTransaction {
                    op: if write {
                        AccessOp::Write
                    } else {
                        AccessOp::Read
                    },
                    addr,
                    len: len as u64,
                    arrival,
                })
                .unwrap();
            if addr < half {
                rec_done = rec_done.max(r.done_cycle);
            } else {
                vf_done = vf_done.max(r.done_cycle);
            }
        }
        let rep = mem.finish(budget).unwrap();
        let frame_ns = budget as f64 * 2.5;
        let power = rep.core_energy_pj / frame_ns + 8.0 * 4.1472;
        println!(
            "  flat 8ch:     recording done {:.2} ms, viewfinder {:.2} ms, {power:.0} mW",
            rec_done as f64 / 400e3,
            vf_done as f64 / 400e3
        );
    }

    println!("\nBoth organizations carry the double load in real time; the clusters");
    println!("isolate the use cases (no cross-interference, two fewer active");
    println!("channels of interface power) at the cost of static partitioning —");
    println!("the trade the conclusions anticipate for very large memories.");
}
