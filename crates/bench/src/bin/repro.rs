//! Regenerates every table and figure of the paper in order, plus the
//! conclusions' trend analyses. `--json` additionally dumps the raw grid
//! data as JSON to stdout after the text report.

use mcm_core::{analysis, figures};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let csv_dir = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--csv")
            .and_then(|i| args.get(i + 1).cloned())
    };

    println!("==============================================================");
    println!(" A case for multi-channel memories in video recording");
    println!(" (DATE 2009) — full reproduction");
    println!("==============================================================\n");

    let t1 = figures::table1_data();
    print!("{}", figures::render_table1(&t1));
    println!();
    print!("{}", figures::render_table2(4));
    println!();

    let f3 = figures::fig3_data().expect("fig3");
    print!("{}", figures::render_fig3(&f3));
    if let Some(s) = analysis::channel_doubling_speedup(&f3) {
        println!("  Mean speedup per channel doubling: {s:.2}x (paper: ~2x)");
    }
    if let Some(s) = analysis::clock_doubling_speedup(&f3) {
        println!("  Mean speedup per clock doubling:   {s:.2}x (paper: ~2x)");
    }
    println!();

    let grid = figures::format_grid_data().expect("fig4/5");
    print!("{}", figures::render_fig4(&grid));
    println!();
    print!("{}", figures::render_fig5(&grid));
    println!();

    let xdr = figures::xdr_data().expect("xdr");
    print!("{}", figures::render_xdr(&xdr));

    println!("\nConclusions check — minimum channels at 400 MHz:");
    for p in mcm_load::HdOperatingPoint::ALL {
        let min = analysis::min_channels_real_time(p, 400).expect("sweep");
        let safe = analysis::min_channels_meeting(p, 400).expect("sweep");
        println!(
            "  {p}: {} (with margin: {})",
            min.map_or("none".into(), |c| format!("{c} ch")),
            safe.map_or("none".into(), |c| format!("{c} ch")),
        );
    }

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        let w = |name: &str, content: String| {
            let path = format!("{dir}/{name}");
            std::fs::write(&path, content).expect("write csv");
            eprintln!("wrote {path}");
        };
        w("table1.csv", figures::table1_csv(&t1));
        w("fig3.csv", figures::fig3_csv(&f3));
        w("fig45.csv", figures::format_grid_csv(&grid));
    }

    if json {
        println!("\n--- JSON ---");
        println!(
            "{}",
            serde_json::json!({
                "table1": t1,
                "fig3": f3,
                "format_grid": grid,
                "xdr": xdr,
            })
        );
    }
}
