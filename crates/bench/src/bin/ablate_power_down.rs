//! Ablation A3: power-down policy.
//!
//! The paper: "for maximum energy savings, it is assumed that bank clusters
//! go to power down states after the first idle clock cycle" and the
//! conclusions call aggressive power-down "necessary for energy efficient
//! operation with handheld devices".

use mcm_bench::run_parallel;
use mcm_core::Experiment;
use mcm_ctrl::PowerDownPolicy;
use mcm_load::HdOperatingPoint;

fn main() {
    println!("Ablation: power-down policy (total power [mW] @ 400 MHz)\n");
    println!("  format / channels        | idle(1)  idle(64) idle(4096)  pd+SR    never");
    let policies = [
        PowerDownPolicy::AfterIdleCycles(1),
        PowerDownPolicy::AfterIdleCycles(64),
        PowerDownPolicy::AfterIdleCycles(4096),
        PowerDownPolicy::PowerDownThenSelfRefresh {
            pd_after: 1,
            sr_after: 4_096,
        },
        PowerDownPolicy::Never,
    ];
    for p in [HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30] {
        for ch in [1u32, 4, 8] {
            let exps: Vec<Experiment> = policies
                .iter()
                .map(|&pol| {
                    let mut e = Experiment::paper(p, ch, 400);
                    e.memory.controller.power_down = pol;
                    e
                })
                .collect();
            let row: String = run_parallel(exps)
                .iter()
                .map(|r| match r {
                    Ok(fr) => format!(" {:8.0}", fr.power.total_mw()),
                    Err(_) => format!(" {:>8}", "n/a"),
                })
                .collect();
            println!("  {p} {ch}ch |{row}");
        }
    }
    println!("\nExpectation: the lighter the per-channel load, the more immediate");
    println!("power-down saves; with it, multi-channel overhead stays moderate.");
}
