//! Ablation A3: power-down policy.
//!
//! The paper: "for maximum energy savings, it is assumed that bank clusters
//! go to power down states after the first idle clock cycle" and the
//! conclusions call aggressive power-down "necessary for energy efficient
//! operation with handheld devices".

use mcm_ctrl::PowerDownPolicy;
use mcm_load::HdOperatingPoint;
use mcm_sweep::{run_sweep_on, RayonExecutor, SweepOptions, SweepSpec};

fn main() {
    println!("Ablation: power-down policy (total power [mW] @ 400 MHz)\n");
    println!("  format / channels        | idle(1)  idle(64) idle(4096)  pd+SR    never");
    let policies = [
        PowerDownPolicy::AfterIdleCycles(1),
        PowerDownPolicy::AfterIdleCycles(64),
        PowerDownPolicy::AfterIdleCycles(4096),
        PowerDownPolicy::PowerDownThenSelfRefresh {
            pd_after: 1,
            sr_after: 4_096,
        },
        PowerDownPolicy::Never,
    ];
    let points = [HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30];
    let spec = SweepSpec {
        points: points.to_vec(),
        channels: vec![1, 4, 8],
        power_down: policies.to_vec(),
        ..SweepSpec::default()
    };
    // Expansion order is points -> channels -> power-down policies: each
    // run of five results is one printed row.
    let result =
        run_sweep_on(&RayonExecutor::default(), &spec, &SweepOptions::default()).expect("sweep");
    let mut rows = result.points.chunks(policies.len());
    for p in points {
        for ch in [1u32, 4, 8] {
            let row: String = rows
                .next()
                .expect("row")
                .iter()
                .map(
                    |cell| match cell.outcome.as_ref().ok().and_then(|r| r.total_mw()) {
                        Some(mw) => format!(" {mw:8.0}"),
                        None => format!(" {:>8}", "n/a"),
                    },
                )
                .collect();
            println!("  {p} {ch}ch |{row}");
        }
    }
    println!("\nExpectation: the lighter the per-channel load, the more immediate");
    println!("power-down saves; with it, multi-channel overhead stays moderate.");
}
