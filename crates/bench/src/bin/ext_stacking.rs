//! Extension E9: why die stacking is the enabler.
//!
//! "Die stacking is the technology thought to be able to provide the
//! required bandwidth, sufficiently low power consumption, and the
//! multi-channel memory organization." This target quantifies the claim by
//! comparing a 3-D stacked channel (1-cycle interconnect, 0.4 pF pins)
//! against a conventional off-chip one (8-cycle interconnect, ~5 pF pins)
//! on the 1080p30 4-channel configuration — bandwidth-bound and with a
//! latency-bound (low-MLP) master.

use mcm_core::eventsim::run_event_driven;
use mcm_core::{ChunkPolicy, Experiment, RunOptions};
use mcm_ctrl::InterconnectModel;
use mcm_load::HdOperatingPoint;
use mcm_power::{BondingTechnique, InterfacePowerModel};

fn main() {
    println!("Die-stacked vs off-chip channels (1080p30, 4 ch @ 400 MHz)\n");
    let variants = [
        (
            "3-D stacked",
            InterconnectModel::die_stacked(),
            InterfacePowerModel::paper(),
        ),
        (
            "off-chip",
            InterconnectModel::off_chip(),
            InterfacePowerModel::with_bonding(BondingTechnique::OffChipPcb),
        ),
    ];
    for (name, interconnect, interface) in variants {
        let mut e = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
        e.memory.controller.interconnect = interconnect;
        e.interface = interface;
        let r = e
            .run_with(&RunOptions::default())
            .expect("run")
            .into_frame()
            .expect("single-frame outcome");
        println!(
            "  {name:<12} bandwidth-bound: {:>6.2} ms [{}], {}",
            r.access_time.as_ms_f64(),
            r.verdict,
            r.power
        );
        // Latency-bound master: 4 outstanding cache lines.
        let mut e = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
        e.memory.controller.interconnect = interconnect;
        e.chunk = ChunkPolicy::Fixed(64);
        e.op_limit = Some(100_000);
        let ev = run_event_driven(&e, 4).expect("event run");
        println!(
            "  {name:<12} low-MLP master:  {:>6.3} ms for a 100k-op prefix",
            ev.access_time.as_ms_f64()
        );
    }
    println!("\nExpectation: bandwidth-bound access times barely move, but the");
    println!("off-chip interface burns ~12x the I/O power and its interconnect");
    println!("latency punishes any master without deep memory-level parallelism —");
    println!("both of which the paper's die stacking eliminates.");
}
