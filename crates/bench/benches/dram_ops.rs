//! Criterion microbenchmarks of the DRAM device hot path: command legality
//! checks, command commits, address decoding — the per-burst costs every
//! frame simulation pays millions of times.

use criterion::{criterion_group, criterion_main, Criterion};

use mcm_dram::{AddressDecoder, AddressMapping, BankCluster, ClusterConfig, DramCommand, Geometry};

fn bench_device(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_device");
    g.bench_function("sequential_read_burst", |b| {
        b.iter_batched(
            || {
                let mut dev = BankCluster::new(&ClusterConfig::next_gen_mobile_ddr(400)).unwrap();
                dev.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
                    .unwrap();
                (dev, 6u64, 0u32)
            },
            |(mut dev, mut cycle, mut col)| {
                for _ in 0..128 {
                    let cmd = DramCommand::Read { bank: 0, col };
                    cycle = dev.earliest_issue(cmd, cycle).unwrap();
                    dev.issue(cmd, cycle).unwrap();
                    col = (col + 4) % 512;
                }
                dev
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("earliest_issue_only", |b| {
        let mut dev = BankCluster::new(&ClusterConfig::next_gen_mobile_ddr(400)).unwrap();
        dev.issue(DramCommand::Activate { bank: 0, row: 0 }, 0)
            .unwrap();
        b.iter(|| {
            dev.earliest_issue(DramCommand::Read { bank: 0, col: 0 }, 0)
                .unwrap()
        });
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let dec = AddressDecoder::new(Geometry::next_gen_mobile_ddr(), AddressMapping::Rbc).unwrap();
    c.bench_function("address_decode", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 16) & ((64 << 20) - 1);
            dec.decode(addr).unwrap()
        });
    });
}

criterion_group!(benches, bench_device, bench_decode);
criterion_main!(benches);
