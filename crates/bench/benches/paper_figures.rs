//! Criterion benchmarks of the paper-reproduction cells: the cost of
//! regenerating one representative cell of each table/figure. Keeps the
//! reproduction harness itself honest about its runtime.

use criterion::{criterion_group, criterion_main, Criterion};

use mcm_core::figures;
use mcm_core::Experiment;
use mcm_core::RunOptions;
use mcm_load::{HdOperatingPoint, UseCase};

fn bench_table1(c: &mut Criterion) {
    // Pure arithmetic: the Table I generator for all five columns.
    c.bench_function("table1_generate", |b| {
        b.iter(figures::table1_data);
    });
    c.bench_function("table1_row_720p30", |b| {
        let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
        b.iter(|| uc.table_row());
    });
}

fn bench_figure_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_cells");
    g.sample_size(10);
    // One op-limited cell per figure family (the full grids are run by the
    // bin targets; here we track the simulator cost per cell).
    g.bench_function("fig3_cell_720p30_2ch_400", |b| {
        b.iter(|| {
            let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 400);
            e.op_limit = Some(50_000);
            e.run_with(&RunOptions::default())
                .expect("cell")
                .into_frame()
                .expect("single-frame outcome")
        });
    });
    g.bench_function("fig4_cell_1080p30_4ch_400", |b| {
        b.iter(|| {
            let mut e = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
            e.op_limit = Some(50_000);
            e.run_with(&RunOptions::default())
                .expect("cell")
                .into_frame()
                .expect("single-frame outcome")
        });
    });
    g.finish();
}

fn bench_traffic_generation(c: &mut Criterion) {
    use mcm_load::{FrameLayout, FrameTraffic};
    let uc = UseCase::hd(HdOperatingPoint::Hd720p30);
    let layout = FrameLayout::new(&uc, 64 << 20).expect("layout");
    c.bench_function("load_traffic_100k_ops", |b| {
        b.iter(|| {
            FrameTraffic::new(&uc, &layout, 64)
                .expect("traffic")
                .take(100_000)
                .map(|op| op.len as u64)
                .sum::<u64>()
        });
    });
}

fn bench_event_kernel(c: &mut Criterion) {
    use mcm_core::eventsim::run_event_driven;
    let mut g = c.benchmark_group("event_kernel");
    g.sample_size(10);
    g.bench_function("eventsim_20k_ops_4ch", |b| {
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
        e.op_limit = Some(20_000);
        b.iter(|| run_event_driven(&e, 16).expect("event run"));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_figure_cells,
    bench_traffic_generation,
    bench_event_kernel
);
criterion_main!(benches);
