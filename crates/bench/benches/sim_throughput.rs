//! Criterion benchmarks of the simulator itself: how fast the full stack
//! (interleaver → controller → DRAM device → energy accounting) processes
//! master transactions, across channel counts and policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mcm_channel::{MasterTransaction, MemoryConfig, MemorySubsystem};
use mcm_ctrl::{AccessOp, PagePolicy};
use mcm_dram::AddressMapping;

/// Streams `n` alternating read/write transactions through a subsystem.
fn stream(mem: &mut MemorySubsystem, n: u64, chunk: u64) -> u64 {
    let mut addr = 0u64;
    let span = mem.capacity_bytes() / 2;
    for i in 0..n {
        mem.submit(MasterTransaction {
            op: if i % 4 == 3 {
                AccessOp::Write
            } else {
                AccessOp::Read
            },
            addr,
            len: chunk,
            arrival: 0,
        })
        .expect("in-range transaction");
        addr = (addr + chunk) % span;
    }
    mem.busy_until()
}

fn bench_channels(c: &mut Criterion) {
    let mut g = c.benchmark_group("subsystem_stream");
    g.sample_size(10);
    const N: u64 = 20_000;
    for channels in [1u32, 2, 4, 8] {
        let chunk = 64 * channels as u64;
        g.throughput(Throughput::Bytes(N * chunk));
        g.bench_with_input(
            BenchmarkId::new("channels", channels),
            &channels,
            |b, &ch| {
                b.iter(|| {
                    let mut mem =
                        MemorySubsystem::new(&MemoryConfig::paper(ch, 400)).expect("config");
                    stream(&mut mem, N, 64 * ch as u64)
                });
            },
        );
    }
    g.finish();
}

type ConfigFactory = Box<dyn Fn() -> MemoryConfig>;

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("subsystem_policies");
    g.sample_size(10);
    const N: u64 = 20_000;
    let variants: [(&str, ConfigFactory); 3] = [
        ("rbc_open", Box::new(|| MemoryConfig::paper(4, 400))),
        (
            "brc_open",
            Box::new(|| MemoryConfig::paper(4, 400).with_mapping(AddressMapping::Brc)),
        ),
        (
            "rbc_closed",
            Box::new(|| {
                let mut cfg = MemoryConfig::paper(4, 400);
                cfg.controller.page_policy = PagePolicy::Closed;
                cfg
            }),
        ),
    ];
    for (name, mk) in variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut mem = MemorySubsystem::new(&mk()).expect("config");
                stream(&mut mem, N, 256)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_channels, bench_policies);
criterion_main!(benches);
