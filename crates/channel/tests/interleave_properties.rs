//! Property tests for the Table II interleaving and the subsystem's
//! conservation invariants.

use mcm_channel::{InterleaveMap, MasterTransaction, MemoryConfig, MemorySubsystem};
use mcm_ctrl::AccessOp;
use proptest::prelude::*;

fn arb_map() -> impl Strategy<Value = InterleaveMap> {
    (0u32..=4, 4u32..=10).prop_map(|(ch_log2, gran_log2)| {
        InterleaveMap::new(1 << ch_log2, 1u64 << gran_log2).expect("powers of two")
    })
}

proptest! {
    #[test]
    fn split_join_is_a_bijection(map in arb_map(), addr in 0u64..(1 << 40)) {
        let (ch, local) = map.split(addr);
        prop_assert!(ch < map.channels());
        prop_assert_eq!(map.join(ch, local).unwrap(), addr);
    }

    #[test]
    fn distinct_addresses_never_collide(map in arb_map(), a in 0u64..(1 << 32), b in 0u64..(1 << 32)) {
        prop_assume!(a != b);
        let sa = map.split(a);
        let sb = map.split(b);
        prop_assert_ne!(sa, sb, "two global addresses mapped to the same (channel, local) slot");
    }

    #[test]
    fn split_range_conserves_bytes_and_stays_dense(
        map in arb_map(),
        addr in 0u64..(1 << 30),
        len in 1u64..100_000,
    ) {
        let slices = map.split_range(addr, len);
        prop_assert_eq!(slices.len(), map.channels() as usize);
        let total: u64 = slices.iter().flatten().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, len);
        // A transaction spanning >= channels x granule bytes touches every
        // channel.
        if len >= map.channels() as u64 * map.granule_bytes() {
            prop_assert!(slices.iter().all(Option::is_some));
        }
        // Per-channel slice lengths differ by at most one granule + edges.
        let lens: Vec<u64> = slices.iter().flatten().map(|&(_, l)| l).collect();
        if let (Some(&max), Some(&min)) = (lens.iter().max(), lens.iter().min()) {
            prop_assert!(max - min <= 2 * map.granule_bytes());
        }
    }

    #[test]
    fn split_range_slices_cover_exactly_the_input_range(
        map in arb_map(),
        addr in 0u64..(1 << 20),
        len in 1u64..8_192,
    ) {
        // Reconstruct the global byte set from the per-channel slices.
        let slices = map.split_range(addr, len);
        let mut covered = vec![false; len as usize];
        for (ch, slice) in slices.iter().enumerate() {
            let Some((local, l)) = *slice else { continue };
            for off in 0..l {
                let global = map.join(ch as u32, local + off).unwrap();
                prop_assert!(global >= addr && global < addr + len,
                    "slice byte {global} escapes [{addr}, {})", addr + len);
                let idx = (global - addr) as usize;
                prop_assert!(!covered[idx], "byte {global} covered twice");
                covered[idx] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c), "range not fully covered");
    }
}

/// Degraded subsystems re-interleave over whatever survives — any channel
/// count from 1 to 8, not just the paper's powers of two.
fn arb_degraded_map() -> impl Strategy<Value = InterleaveMap> {
    (1u32..=8, 4u32..=8)
        .prop_map(|(ch, gran_log2)| InterleaveMap::new(ch, 1u64 << gran_log2).expect("valid map"))
}

proptest! {
    #[test]
    fn non_power_of_two_counts_cover_every_byte_exactly_once(
        map in arb_degraded_map(),
        addr in 0u64..(1 << 20),
        len in 1u64..4_096,
    ) {
        let slices = map.split_range(addr, len);
        let mut covered = vec![false; len as usize];
        for (ch, slice) in slices.iter().enumerate() {
            let Some((local, l)) = *slice else { continue };
            for off in 0..l {
                let global = map.join(ch as u32, local + off).unwrap();
                prop_assert!(global >= addr && global < addr + len,
                    "slice byte {global} escapes [{addr}, {})", addr + len);
                let idx = (global - addr) as usize;
                prop_assert!(!covered[idx], "byte {global} covered twice");
                covered[idx] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c), "range not fully covered");
    }

    #[test]
    fn sub_granule_transactions_conserve_bytes_on_at_most_two_channels(
        map in arb_degraded_map(),
        addr in 0u64..(1 << 20),
        len in 1u64..16,
    ) {
        // Shorter than the smallest (16-byte) granule: the transaction
        // spans at most two granules, so at most two channels see it.
        let slices = map.split_range(addr, len);
        let touched = slices.iter().flatten().count();
        prop_assert!((1..=2).contains(&touched), "{touched} channels for {len} B");
        let total: u64 = slices.iter().flatten().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, len);
    }

    #[test]
    fn re_interleave_after_channel_removal_stays_bijective(
        survivors in 1u32..=7,
        granules in 1u64..512,
    ) {
        // After a channel dies the subsystem rebuilds the map over the
        // survivor count (often non-power-of-two). Walking a contiguous
        // granule range, every byte must land in a distinct (channel,
        // local) slot and round-trip back to its global address.
        let map = InterleaveMap::new(survivors, 16).unwrap();
        let mut seen = std::collections::HashSet::new();
        for g in 0..granules {
            let addr = g * 16;
            let (ch, local) = map.split(addr);
            prop_assert!(ch < survivors);
            prop_assert_eq!(map.join(ch, local).unwrap(), addr);
            prop_assert!(seen.insert((ch, local)), "granule {g} duplicated a slot");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn degraded_subsystem_conserves_bytes_after_channel_removal(
        channels_log2 in 1u32..=3,
        lost_pick in 0u32..8,
        txns in prop::collection::vec((0u64..(1 << 20), 1u64..2_048, any::<bool>()), 1..30),
    ) {
        // No byte is lost or duplicated by the degraded path: totals still
        // balance and the removed channel carries no traffic.
        let channels = 1u32 << channels_log2;
        let lost = lost_pick % channels;
        let mut mem = MemorySubsystem::new(&MemoryConfig::paper(channels, 400)).unwrap();
        mem.apply_faults(&mcm_fault::FaultPlan::channel_loss(1, lost)).unwrap();
        let mut expect_read = 0u64;
        let mut expect_written = 0u64;
        for &(addr, len, write) in &txns {
            mem.submit(MasterTransaction {
                op: if write { AccessOp::Write } else { AccessOp::Read },
                addr,
                len,
                arrival: 0,
            }).unwrap();
            if write { expect_written += len } else { expect_read += len }
        }
        let rep = mem.finish(0).unwrap();
        prop_assert_eq!(rep.bytes_read, expect_read);
        prop_assert_eq!(rep.bytes_written, expect_written);
        let dead = &rep.channels[lost as usize].device;
        prop_assert_eq!(dead.reads + dead.writes, 0, "lost channel saw traffic");
    }

    #[test]
    fn subsystem_conserves_bytes_for_random_transactions(
        channels_log2 in 0u32..=3,
        txns in prop::collection::vec((0u64..(1 << 20), 1u64..2_048, any::<bool>()), 1..40),
    ) {
        let mut mem = MemorySubsystem::new(&MemoryConfig::paper(1 << channels_log2, 400)).unwrap();
        let mut expect_read = 0u64;
        let mut expect_written = 0u64;
        for &(addr, len, write) in &txns {
            mem.submit(MasterTransaction {
                op: if write { AccessOp::Write } else { AccessOp::Read },
                addr,
                len,
                arrival: 0,
            }).unwrap();
            if write { expect_written += len } else { expect_read += len }
        }
        let rep = mem.finish(0).unwrap();
        prop_assert_eq!(rep.bytes_read, expect_read);
        prop_assert_eq!(rep.bytes_written, expect_written);
        prop_assert!(rep.core_energy_pj > 0.0);
    }
}
