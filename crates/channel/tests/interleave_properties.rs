//! Property tests for the Table II interleaving and the subsystem's
//! conservation invariants.

use mcm_channel::{InterleaveMap, MasterTransaction, MemoryConfig, MemorySubsystem};
use mcm_ctrl::AccessOp;
use proptest::prelude::*;

fn arb_map() -> impl Strategy<Value = InterleaveMap> {
    (0u32..=4, 4u32..=10).prop_map(|(ch_log2, gran_log2)| {
        InterleaveMap::new(1 << ch_log2, 1u64 << gran_log2).expect("powers of two")
    })
}

proptest! {
    #[test]
    fn split_join_is_a_bijection(map in arb_map(), addr in 0u64..(1 << 40)) {
        let (ch, local) = map.split(addr);
        prop_assert!(ch < map.channels());
        prop_assert_eq!(map.join(ch, local).unwrap(), addr);
    }

    #[test]
    fn distinct_addresses_never_collide(map in arb_map(), a in 0u64..(1 << 32), b in 0u64..(1 << 32)) {
        prop_assume!(a != b);
        let sa = map.split(a);
        let sb = map.split(b);
        prop_assert_ne!(sa, sb, "two global addresses mapped to the same (channel, local) slot");
    }

    #[test]
    fn split_range_conserves_bytes_and_stays_dense(
        map in arb_map(),
        addr in 0u64..(1 << 30),
        len in 1u64..100_000,
    ) {
        let slices = map.split_range(addr, len);
        prop_assert_eq!(slices.len(), map.channels() as usize);
        let total: u64 = slices.iter().flatten().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, len);
        // A transaction spanning >= channels x granule bytes touches every
        // channel.
        if len >= map.channels() as u64 * map.granule_bytes() {
            prop_assert!(slices.iter().all(Option::is_some));
        }
        // Per-channel slice lengths differ by at most one granule + edges.
        let lens: Vec<u64> = slices.iter().flatten().map(|&(_, l)| l).collect();
        if let (Some(&max), Some(&min)) = (lens.iter().max(), lens.iter().min()) {
            prop_assert!(max - min <= 2 * map.granule_bytes());
        }
    }

    #[test]
    fn split_range_slices_cover_exactly_the_input_range(
        map in arb_map(),
        addr in 0u64..(1 << 20),
        len in 1u64..8_192,
    ) {
        // Reconstruct the global byte set from the per-channel slices.
        let slices = map.split_range(addr, len);
        let mut covered = vec![false; len as usize];
        for (ch, slice) in slices.iter().enumerate() {
            let Some((local, l)) = *slice else { continue };
            for off in 0..l {
                let global = map.join(ch as u32, local + off).unwrap();
                prop_assert!(global >= addr && global < addr + len,
                    "slice byte {global} escapes [{addr}, {})", addr + len);
                let idx = (global - addr) as usize;
                prop_assert!(!covered[idx], "byte {global} covered twice");
                covered[idx] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c), "range not fully covered");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn subsystem_conserves_bytes_for_random_transactions(
        channels_log2 in 0u32..=3,
        txns in prop::collection::vec((0u64..(1 << 20), 1u64..2_048, any::<bool>()), 1..40),
    ) {
        let mut mem = MemorySubsystem::new(&MemoryConfig::paper(1 << channels_log2, 400)).unwrap();
        let mut expect_read = 0u64;
        let mut expect_written = 0u64;
        for &(addr, len, write) in &txns {
            mem.submit(MasterTransaction {
                op: if write { AccessOp::Write } else { AccessOp::Read },
                addr,
                len,
                arrival: 0,
            }).unwrap();
            if write { expect_written += len } else { expect_read += len }
        }
        let rep = mem.finish(0).unwrap();
        prop_assert_eq!(rep.bytes_read, expect_read);
        prop_assert_eq!(rep.bytes_written, expect_written);
        prop_assert!(rep.core_energy_pj > 0.0);
    }
}
