//! Channel clusters — the paper's future-work proposal, implemented.
//!
//! The conclusion suggests that "it may be necessary to divide very large
//! multi-channel memories into independent channel clusters, each consisting
//! of [a] reasonable number of channels", so that idle clusters can stay in
//! power-down while only the cluster serving the active use case burns
//! standby and interface power.
//!
//! [`ClusteredMemory`] partitions the global address space into contiguous
//! cluster regions; each region is its own [`MemorySubsystem`] with its own
//! interleaving, and the untouched clusters spend the whole run in
//! power-down.

use mcm_sim::SimTime;

use crate::error::ChannelError;
use crate::subsystem::{
    MasterTransaction, MemoryConfig, MemorySubsystem, SubsystemReport, TransactionResult,
};

/// A memory built from independent channel clusters.
///
/// # Examples
///
/// ```
/// use mcm_channel::{ClusteredMemory, MemoryConfig};
///
/// // Two independent 4-channel clusters instead of one 8-channel memory.
/// let mem = ClusteredMemory::new(&MemoryConfig::paper(4, 400), 2).unwrap();
/// assert_eq!(mem.clusters(), 2);
/// assert_eq!(mem.capacity_bytes(), 2 * 4 * 64 * 1024 * 1024);
/// ```
#[derive(Debug)]
pub struct ClusteredMemory {
    clusters: Vec<MemorySubsystem>,
    cluster_capacity: u64,
}

impl ClusteredMemory {
    /// Builds `clusters` identical clusters, each configured by `config`.
    pub fn new(config: &MemoryConfig, clusters: u32) -> Result<Self, ChannelError> {
        if clusters == 0 {
            return Err(ChannelError::BadConfig {
                reason: "cluster count must be non-zero".into(),
            });
        }
        let mut subsystems = Vec::with_capacity(clusters as usize);
        for _ in 0..clusters {
            subsystems.push(MemorySubsystem::new(config)?);
        }
        let cluster_capacity = subsystems[0].capacity_bytes();
        Ok(ClusteredMemory {
            clusters: subsystems,
            cluster_capacity,
        })
    }

    /// Number of clusters.
    pub fn clusters(&self) -> u32 {
        self.clusters.len() as u32
    }

    /// Capacity of one cluster, bytes.
    pub fn cluster_capacity_bytes(&self) -> u64 {
        self.cluster_capacity
    }

    /// Total capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cluster_capacity * self.clusters.len() as u64
    }

    /// Which cluster a global address belongs to.
    pub fn cluster_of(&self, addr: u64) -> Result<u32, ChannelError> {
        let c = addr / self.cluster_capacity;
        if c >= self.clusters.len() as u64 {
            return Err(ChannelError::AddressOutOfRange {
                addr,
                capacity_bytes: self.capacity_bytes(),
            });
        }
        Ok(c as u32)
    }

    /// Immutable access to one cluster.
    pub fn cluster(&self, idx: u32) -> Result<&MemorySubsystem, ChannelError> {
        self.clusters
            .get(idx as usize)
            .ok_or(ChannelError::BadChannel {
                channel: idx,
                channels: self.clusters.len() as u32,
            })
    }

    /// Submits a transaction. Transactions must not straddle a cluster
    /// boundary — clusters are *independent* memories, and the software
    /// allocator is expected to place each buffer within one cluster.
    pub fn submit(&mut self, txn: MasterTransaction) -> Result<TransactionResult, ChannelError> {
        if txn.len == 0 {
            return Err(ChannelError::BadConfig {
                reason: "zero-length master transaction".into(),
            });
        }
        let first = self.cluster_of(txn.addr)?;
        let last = self.cluster_of(txn.addr + txn.len - 1)?;
        if first != last {
            return Err(ChannelError::BadConfig {
                reason: format!(
                    "transaction {:#x}+{} straddles clusters {first} and {last}",
                    txn.addr, txn.len
                ),
            });
        }
        let local = MasterTransaction {
            addr: txn.addr - first as u64 * self.cluster_capacity,
            ..txn
        };
        self.clusters[first as usize].submit(local)
    }

    /// Closes the run on every cluster and returns per-cluster reports.
    /// Idle clusters report near-pure power-down energy.
    pub fn finish(&mut self, end_cycle: u64) -> Result<Vec<SubsystemReport>, ChannelError> {
        self.clusters
            .iter_mut()
            .map(|c| c.finish(end_cycle))
            .collect()
    }

    /// Total core energy across clusters up to `end_cycle`, picojoules, plus
    /// the overall access time (max over clusters).
    pub fn finish_aggregate(&mut self, end_cycle: u64) -> Result<(f64, SimTime), ChannelError> {
        let reports = self.finish(end_cycle)?;
        let energy = reports.iter().map(|r| r.core_energy_pj).sum();
        let time = reports
            .iter()
            .map(|r| r.access_time)
            .max()
            .unwrap_or(SimTime::ZERO);
        Ok((energy, time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcm_ctrl::AccessOp;

    fn clustered() -> ClusteredMemory {
        ClusteredMemory::new(&MemoryConfig::paper(2, 400), 2).unwrap()
    }

    #[test]
    fn address_partitioning() {
        let m = clustered();
        let cap = m.cluster_capacity_bytes();
        assert_eq!(m.cluster_of(0).unwrap(), 0);
        assert_eq!(m.cluster_of(cap - 1).unwrap(), 0);
        assert_eq!(m.cluster_of(cap).unwrap(), 1);
        assert!(m.cluster_of(2 * cap).is_err());
    }

    #[test]
    fn straddling_transactions_are_rejected() {
        let mut m = clustered();
        let cap = m.cluster_capacity_bytes();
        let err = m
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: cap - 16,
                len: 32,
                arrival: 0,
            })
            .unwrap_err();
        assert!(matches!(err, ChannelError::BadConfig { .. }));
    }

    #[test]
    fn idle_cluster_consumes_less_than_active_cluster() {
        let mut m = clustered();
        // Load only cluster 0.
        m.submit(MasterTransaction {
            op: AccessOp::Read,
            addr: 0,
            len: 1 << 20,
            arrival: 0,
        })
        .unwrap();
        let horizon = 13_200_000; // 33 ms at 400 MHz
        let reports = m.finish(horizon).unwrap();
        // The untouched cluster moved no data and burned strictly less
        // energy (power-down background + refresh only).
        assert_eq!(reports[1].bytes_read + reports[1].bytes_written, 0);
        assert_eq!(reports[1].channels[0].ctrl.read_bursts, 0);
        assert!(reports[0].core_energy_pj > 1.5 * reports[1].core_energy_pj);
    }

    #[test]
    fn zero_clusters_rejected() {
        assert!(ClusteredMemory::new(&MemoryConfig::paper(2, 400), 0).is_err());
    }

    #[test]
    fn aggregate_finish() {
        let mut m = clustered();
        m.submit(MasterTransaction {
            op: AccessOp::Write,
            addr: m.cluster_capacity_bytes(), // cluster 1
            len: 4096,
            arrival: 0,
        })
        .unwrap();
        let (energy, time) = m.finish_aggregate(0).unwrap();
        assert!(energy > 0.0);
        assert!(time > SimTime::ZERO);
    }
}
