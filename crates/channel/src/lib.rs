//! # mcm-channel — the multi-channel memory subsystem
//!
//! The paper's Fig. 2 architecture: M parallel channels, each consisting of
//! a memory controller, a DRAM interconnect, and a 512 Mb bank cluster,
//! behind a byte-granular channel interleaver (Table II, 16-byte granule)
//! so that "all the channels can be used in a single master transaction".
//!
//! * [`InterleaveMap`] — the Table II address-to-channel mapping;
//! * [`MemorySubsystem`] — M channels fed by [`MasterTransaction`]s,
//!   reporting access time, energy and bandwidth;
//! * [`ClusteredMemory`] — the conclusion's future-work extension:
//!   independent channel clusters with per-cluster power-down.
//!
//! # Examples
//!
//! ```
//! use mcm_channel::{MasterTransaction, MemoryConfig, MemorySubsystem};
//! use mcm_ctrl::AccessOp;
//!
//! // The paper's 4-channel, 400 MHz configuration.
//! let mut mem = MemorySubsystem::new(&MemoryConfig::paper(4, 400)).unwrap();
//! mem.submit(MasterTransaction { op: AccessOp::Read, addr: 0, len: 4096, arrival: 0 }).unwrap();
//! let report = mem.finish(0).unwrap();
//! assert_eq!(report.bytes_read, 4096);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Model code must surface failures as typed errors, never panic
// (clippy.toml lists the banned methods). Tests keep their unwraps.
#![warn(clippy::disallowed_methods)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

mod cluster;
mod error;
mod interleave;
mod subsystem;

pub use cluster::ClusteredMemory;
pub use error::ChannelError;
pub use interleave::InterleaveMap;
pub use subsystem::{
    DegradeStats, MasterTransaction, MemoryConfig, MemorySubsystem, SubsystemReport,
    TransactionResult,
};
