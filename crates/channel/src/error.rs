//! Errors for the multi-channel subsystem.

use core::fmt;

use mcm_ctrl::CtrlError;

/// Errors raised by the multi-channel memory subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// A channel's controller or device reported an error.
    Ctrl {
        /// Which channel failed.
        channel: u32,
        /// The underlying error.
        source: CtrlError,
    },
    /// Configuration rejected at construction.
    BadConfig {
        /// Explanation.
        reason: String,
    },
    /// A channel index was out of range.
    BadChannel {
        /// The offending index.
        channel: u32,
        /// Number of channels configured.
        channels: u32,
    },
    /// A global address fell outside the subsystem's capacity.
    AddressOutOfRange {
        /// The offending global byte address.
        addr: u64,
        /// Total capacity across channels, bytes.
        capacity_bytes: u64,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Ctrl { channel, source } => {
                write!(f, "channel {channel}: {source}")
            }
            ChannelError::BadConfig { reason } => write!(f, "bad subsystem config: {reason}"),
            ChannelError::BadChannel { channel, channels } => {
                write!(f, "channel {channel} out of range ({channels} channels)")
            }
            ChannelError::AddressOutOfRange {
                addr,
                capacity_bytes,
            } => write!(
                f,
                "global address {addr:#x} out of range for {capacity_bytes}-byte subsystem"
            ),
        }
    }
}

impl std::error::Error for ChannelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChannelError::Ctrl { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_channel() {
        let e = ChannelError::Ctrl {
            channel: 3,
            source: CtrlError::EmptyRequest,
        };
        assert!(e.to_string().starts_with("channel 3:"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
