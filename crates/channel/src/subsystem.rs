//! The multi-channel memory subsystem (Fig. 2 of the paper): M parallel
//! channels, each a memory controller + DRAM interconnect + bank cluster,
//! fed by master transactions that the Table II interleaving spreads over
//! all channels.

use std::sync::Arc;

use mcm_ctrl::{AccessOp, ChannelReport, ChannelRequest, Controller, ControllerConfig};
use mcm_dram::AddressMapping;
use mcm_obs::{ChannelObs, Recorder};
use mcm_sim::{ClockDomain, Frequency, SimTime};
use serde::{Deserialize, Serialize};

use crate::error::ChannelError;
use crate::interleave::InterleaveMap;

/// Configuration of the whole memory subsystem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Number of channels (paper: 1, 2, 4 or 8).
    pub channels: u32,
    /// Interface clock, MHz, shared by all channels (paper: 200–533).
    pub clock_mhz: u64,
    /// Interleaving granularity, bytes (paper: 16).
    pub granule_bytes: u64,
    /// Per-channel controller configuration template.
    pub controller: ControllerConfig,
}

impl MemoryConfig {
    /// The paper's configuration: `channels` × next-generation mobile DDR at
    /// `clock_mhz`, RBC mapping, open page, immediate power-down, 16-byte
    /// interleave.
    pub fn paper(channels: u32, clock_mhz: u64) -> Self {
        MemoryConfig {
            channels,
            clock_mhz,
            granule_bytes: 16,
            controller: ControllerConfig::paper_default(clock_mhz),
        }
    }

    /// Same configuration with a different address multiplexing type
    /// (for the RBC/BRC ablation).
    pub fn with_mapping(mut self, mapping: AddressMapping) -> Self {
        self.controller.mapping = mapping;
        self
    }
}

/// A master transaction: what the SMP/cache side of Fig. 2 emits toward the
/// memory subsystem after a cache miss or write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterTransaction {
    /// Direction.
    pub op: AccessOp,
    /// Global byte address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Arrival cycle on the (shared) interface clock.
    pub arrival: u64,
}

/// Timing outcome of one master transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransactionResult {
    /// Cycle at which the last involved channel finished the last data beat.
    pub done_cycle: u64,
    /// How many channels the transaction touched.
    pub channels_used: u32,
}

/// Aggregated end-of-run report for the subsystem.
#[derive(Debug, Clone)]
pub struct SubsystemReport {
    /// Per-channel reports.
    pub channels: Vec<ChannelReport>,
    /// Cycle at which the whole subsystem drained (max over channels).
    pub busy_until: u64,
    /// Wall-clock equivalent of [`SubsystemReport::busy_until`].
    pub access_time: SimTime,
    /// Total DRAM core energy across channels, picojoules.
    pub core_energy_pj: f64,
    /// Bytes read through the subsystem.
    pub bytes_read: u64,
    /// Bytes written through the subsystem.
    pub bytes_written: u64,
}

impl SubsystemReport {
    /// Average core power over `horizon`, milliwatts.
    pub fn core_power_mw(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.core_energy_pj / horizon.as_ns_f64() / 1e3 * 1e3 // pJ/ns = mW
    }

    /// Achieved bandwidth over the busy period, bytes per second.
    pub fn achieved_bandwidth_bytes_per_s(&self) -> f64 {
        let t = self.access_time.as_s_f64();
        if t == 0.0 {
            return 0.0;
        }
        (self.bytes_read + self.bytes_written) as f64 / t
    }
}

/// The paper's Fig. 2 memory subsystem: M channels of memory controller +
/// DRAM interconnect + bank cluster behind a Table II interleaver.
///
/// # Examples
///
/// ```
/// use mcm_channel::{MasterTransaction, MemoryConfig, MemorySubsystem};
/// use mcm_ctrl::AccessOp;
///
/// let mut mem = MemorySubsystem::new(&MemoryConfig::paper(4, 400)).unwrap();
/// let res = mem.submit(MasterTransaction {
///     op: AccessOp::Read, addr: 0, len: 64, arrival: 0,
/// }).unwrap();
/// assert_eq!(res.channels_used, 4); // a 64-byte line spans all 4 channels
/// ```
#[derive(Debug)]
pub struct MemorySubsystem {
    controllers: Vec<Controller>,
    interleave: InterleaveMap,
    clock: ClockDomain,
    capacity_bytes: u64,
    bytes_read: u64,
    bytes_written: u64,
    recorder: Option<Arc<dyn Recorder>>,
    /// Reused per-transaction fan-out buffer (one slot per channel), so
    /// `submit` never allocates on the hot path.
    slice_buf: Vec<Option<(u64, u64)>>,
}

impl MemorySubsystem {
    /// Builds the subsystem; validates channel count, granule and the
    /// per-channel configuration.
    pub fn new(config: &MemoryConfig) -> Result<Self, ChannelError> {
        let interleave = InterleaveMap::new(config.channels, config.granule_bytes)?;
        let burst = config.controller.cluster.geometry.burst_bytes() as u64;
        if !config.granule_bytes.is_multiple_of(burst) {
            return Err(ChannelError::BadConfig {
                reason: format!(
                    "granule {} B must be a multiple of the {} B DRAM burst",
                    config.granule_bytes, burst
                ),
            });
        }
        if config.controller.cluster.clock_mhz != config.clock_mhz {
            return Err(ChannelError::BadConfig {
                reason: format!(
                    "subsystem clock {} MHz disagrees with controller clock {} MHz",
                    config.clock_mhz, config.controller.cluster.clock_mhz
                ),
            });
        }
        let mut controllers = Vec::with_capacity(config.channels as usize);
        for channel in 0..config.channels {
            controllers.push(
                Controller::new(&config.controller)
                    .map_err(|source| ChannelError::Ctrl { channel, source })?,
            );
        }
        let clock = ClockDomain::new(Frequency::from_mhz(config.clock_mhz)).map_err(|e| {
            ChannelError::BadConfig {
                reason: e.to_string(),
            }
        })?;
        let capacity_bytes =
            controllers[0].device().geometry().capacity_bytes() * config.channels as u64;
        Ok(MemorySubsystem {
            controllers,
            interleave,
            clock,
            capacity_bytes,
            bytes_read: 0,
            bytes_written: 0,
            recorder: None,
            slice_buf: Vec::new(),
        })
    }

    /// Attaches an observability recorder to the whole subsystem: every
    /// controller and device reports through a per-channel handle, and the
    /// subsystem itself reports per-slice traffic and one span per master
    /// transaction. Off by default (the disabled path is one branch).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        for (ch, ctrl) in self.controllers.iter_mut().enumerate() {
            ctrl.set_obs(ChannelObs::new(Arc::clone(&recorder), ch as u32));
        }
        self.recorder = Some(recorder);
    }

    /// The interleaving in use.
    pub fn interleave(&self) -> &InterleaveMap {
        &self.interleave
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.controllers.len() as u32
    }

    /// Total capacity across channels, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// The shared interface clock.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Theoretical peak bandwidth: channels × bus width × 2 (DDR) × clock.
    pub fn peak_bandwidth_bytes_per_s(&self) -> f64 {
        let word = self.controllers[0].device().geometry().word_bytes() as f64;
        self.channels() as f64 * word * 2.0 * self.clock.frequency().as_hz() as f64
    }

    /// Turns on command tracing in every channel's controller so the
    /// per-channel traces can later be audited (e.g. by `mcm-verify`).
    /// Full-frame traces are large; bound the run with an op limit.
    pub fn enable_trace(&mut self) {
        for ctrl in &mut self.controllers {
            ctrl.enable_trace();
        }
    }

    /// Access to one channel's controller (e.g. for statistics).
    pub fn controller(&self, channel: u32) -> Result<&Controller, ChannelError> {
        self.controllers
            .get(channel as usize)
            .ok_or(ChannelError::BadChannel {
                channel,
                channels: self.channels(),
            })
    }

    /// Submits one master transaction; the interleaver fans it out and every
    /// touched channel processes its slice. Returns when the last channel
    /// finishes (channels work in parallel).
    pub fn submit(&mut self, txn: MasterTransaction) -> Result<TransactionResult, ChannelError> {
        if txn.len == 0 {
            return Err(ChannelError::BadConfig {
                reason: "zero-length master transaction".into(),
            });
        }
        let end = txn
            .addr
            .checked_add(txn.len)
            .ok_or(ChannelError::AddressOutOfRange {
                addr: txn.addr,
                capacity_bytes: self.capacity_bytes,
            })?;
        if end > self.capacity_bytes {
            return Err(ChannelError::AddressOutOfRange {
                addr: txn.addr,
                capacity_bytes: self.capacity_bytes,
            });
        }
        let mut slices = std::mem::take(&mut self.slice_buf);
        self.interleave
            .split_range_into(txn.addr, txn.len, &mut slices);
        let mut done = 0u64;
        let mut used = 0u32;
        for (ch, slice) in slices.iter().enumerate() {
            let Some((local, len)) = *slice else { continue };
            let res = self.controllers[ch]
                .access(ChannelRequest {
                    op: txn.op,
                    addr: local,
                    len: len as u32,
                    arrival: txn.arrival,
                })
                .map_err(|source| ChannelError::Ctrl {
                    channel: ch as u32,
                    source,
                })?;
            if let Some(rec) = &self.recorder {
                let at_ps = self.clock.time_of_cycles(res.done_cycle).as_ps();
                rec.record_bytes(ch as u32, txn.op == AccessOp::Write, len, at_ps);
            }
            done = done.max(res.done_cycle);
            used += 1;
        }
        self.slice_buf = slices;
        match txn.op {
            AccessOp::Read => self.bytes_read += txn.len,
            AccessOp::Write => self.bytes_written += txn.len,
        }
        if let Some(rec) = &self.recorder {
            rec.record_span(
                "txn",
                None,
                self.clock.time_of_cycles(txn.arrival).as_ps(),
                self.clock.time_of_cycles(done.max(txn.arrival)).as_ps(),
            );
        }
        Ok(TransactionResult {
            done_cycle: done,
            channels_used: used,
        })
    }

    /// Submits a whole burst of master transactions in one pass and returns
    /// the cycle at which the last one finished (0 for an empty batch).
    ///
    /// Semantically identical to calling [`MemorySubsystem::submit`] per
    /// transaction and folding `done_cycle` with `max`; batching lets the
    /// admission loop stay in the subsystem instead of bouncing through the
    /// caller per transaction.
    pub fn submit_batch(&mut self, txns: &[MasterTransaction]) -> Result<u64, ChannelError> {
        let mut done = 0u64;
        for &txn in txns {
            done = done.max(self.submit(txn)?.done_cycle);
        }
        Ok(done)
    }

    /// Cycle at which all channels have drained.
    pub fn busy_until(&self) -> u64 {
        self.controllers
            .iter()
            .map(Controller::busy_until)
            .max()
            .unwrap_or(0)
    }

    /// Closes the run at `end_cycle` (idle housekeeping on every channel)
    /// and aggregates time, energy and statistics.
    pub fn finish(&mut self, end_cycle: u64) -> Result<SubsystemReport, ChannelError> {
        let end = end_cycle.max(self.busy_until());
        let mut channels = Vec::with_capacity(self.controllers.len());
        for (ch, ctrl) in self.controllers.iter_mut().enumerate() {
            channels.push(ctrl.finish(end).map_err(|source| ChannelError::Ctrl {
                channel: ch as u32,
                source,
            })?);
        }
        let busy_until = channels.iter().map(|r| r.busy_until).max().unwrap_or(0);
        let core_energy_pj = channels.iter().map(|r| r.total_energy_pj).sum();
        Ok(SubsystemReport {
            busy_until,
            access_time: self.clock.time_of_cycles(busy_until),
            core_energy_pj,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(channels: u32) -> MemorySubsystem {
        MemorySubsystem::new(&MemoryConfig::paper(channels, 400)).unwrap()
    }

    #[test]
    fn peak_bandwidth_matches_paper_arithmetic() {
        // 8 channels × 4 B × 2 × 400 MHz = 25.6 GB/s (the XDR comparison
        // point's theoretical peak).
        let m = mem(8);
        assert!((m.peak_bandwidth_bytes_per_s() - 25.6e9).abs() < 1e3);
    }

    #[test]
    fn capacity_scales_with_channels() {
        assert_eq!(mem(1).capacity_bytes(), 64 << 20);
        assert_eq!(mem(8).capacity_bytes(), 512 << 20);
    }

    #[test]
    fn cache_line_spans_channels() {
        let mut m = mem(4);
        let r = m
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 64,
                arrival: 0,
            })
            .unwrap();
        assert_eq!(r.channels_used, 4);
        let mut m1 = mem(1);
        let r1 = m1
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 64,
                arrival: 0,
            })
            .unwrap();
        assert_eq!(r1.channels_used, 1);
        // Four channels in parallel beat one channel in series.
        assert!(r.done_cycle < r1.done_cycle);
    }

    #[test]
    fn more_channels_scale_throughput_on_large_sweeps() {
        let sweep = |channels: u32| {
            let mut m = mem(channels);
            m.submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 1 << 20, // 1 MiB
                arrival: 0,
            })
            .unwrap();
            let rep = m.finish(0).unwrap();
            rep.busy_until
        };
        let t1 = sweep(1);
        let t2 = sweep(2);
        let t4 = sweep(4);
        let t8 = sweep(8);
        // Close to the paper's "2x speedup per channel doubling".
        for (fast, slow) in [(t2, t1), (t4, t2), (t8, t4)] {
            let ratio = slow as f64 / fast as f64;
            assert!(
                (1.7..=2.2).contains(&ratio),
                "speedup {ratio} out of expected band (t1={t1} t2={t2} t4={t4} t8={t8})"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_and_zero_length() {
        let mut m = mem(2);
        let cap = m.capacity_bytes();
        assert!(matches!(
            m.submit(MasterTransaction {
                op: AccessOp::Read,
                addr: cap - 8,
                len: 16,
                arrival: 0
            }),
            Err(ChannelError::AddressOutOfRange { .. })
        ));
        assert!(m
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 0,
                arrival: 0
            })
            .is_err());
        assert!(m
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: u64::MAX,
                len: 16,
                arrival: 0
            })
            .is_err());
    }

    #[test]
    fn config_validation() {
        let mut cfg = MemoryConfig::paper(4, 400);
        cfg.granule_bytes = 8; // below the 16 B burst
        assert!(MemorySubsystem::new(&cfg).is_err());

        let mut cfg = MemoryConfig::paper(4, 400);
        cfg.clock_mhz = 333; // disagrees with controller template
        assert!(MemorySubsystem::new(&cfg).is_err());

        let cfg = MemoryConfig::paper(3, 400);
        assert!(MemorySubsystem::new(&cfg).is_err());
    }

    #[test]
    fn report_aggregates_energy_and_bytes() {
        let mut m = mem(2);
        m.submit(MasterTransaction {
            op: AccessOp::Read,
            addr: 0,
            len: 4096,
            arrival: 0,
        })
        .unwrap();
        m.submit(MasterTransaction {
            op: AccessOp::Write,
            addr: 4096,
            len: 4096,
            arrival: 0,
        })
        .unwrap();
        let rep = m.finish(1_000_000).unwrap();
        assert_eq!(rep.bytes_read, 4096);
        assert_eq!(rep.bytes_written, 4096);
        assert_eq!(rep.channels.len(), 2);
        assert!(rep.core_energy_pj > 0.0);
        assert!(rep.access_time > SimTime::ZERO);
        assert!(rep.achieved_bandwidth_bytes_per_s() > 0.0);
    }

    #[test]
    fn recorder_agrees_with_simulator_statistics() {
        use mcm_obs::StatsRecorder;
        let mut m = mem(2);
        let rec = Arc::new(StatsRecorder::new());
        m.set_recorder(rec.clone());
        m.submit(MasterTransaction {
            op: AccessOp::Read,
            addr: 0,
            len: 4096,
            arrival: 0,
        })
        .unwrap();
        m.submit(MasterTransaction {
            op: AccessOp::Write,
            addr: 4096,
            len: 1024,
            arrival: 0,
        })
        .unwrap();
        let sub = m.finish(1_000_000).unwrap();
        let report = rec.report();
        assert_eq!(report.channels.len(), 2);
        for obs_ch in &report.channels {
            let dev = m.controller(obs_ch.channel).unwrap().device().stats();
            let ctrl = m.controller(obs_ch.channel).unwrap().stats();
            assert_eq!(obs_ch.counters.commands.activates, dev.activates);
            assert_eq!(obs_ch.counters.commands.reads, dev.reads);
            assert_eq!(obs_ch.counters.commands.writes, dev.writes);
            assert_eq!(obs_ch.counters.rows.hits, ctrl.row_hits);
            assert_eq!(obs_ch.counters.rows.misses, ctrl.row_misses);
            // Both transactions sliced onto both channels: two retired
            // requests, each with a recorded latency.
            assert_eq!(obs_ch.counters.requests, 2);
            assert_eq!(obs_ch.latency_ps.count, 2);
        }
        let read: u64 = report.channels.iter().map(|c| c.counters.bytes_read).sum();
        let written: u64 = report
            .channels
            .iter()
            .map(|c| c.counters.bytes_written)
            .sum();
        assert_eq!(read, sub.bytes_read);
        assert_eq!(written, sub.bytes_written);
        // One span per master transaction, on the master track.
        assert_eq!(report.spans.len(), 2);
        assert!(report.spans.iter().all(|s| s.channel.is_none()));
        // Observed energy matches the subsystem's core energy.
        let obs_pj: f64 = report.channels.iter().map(|c| c.energy.total_pj()).sum();
        assert!(
            (obs_pj - sub.core_energy_pj).abs() < 1e-6 * sub.core_energy_pj.max(1.0),
            "obs {obs_pj} vs report {}",
            sub.core_energy_pj
        );
    }

    #[test]
    fn channel_accessor_bounds() {
        let m = mem(2);
        assert!(m.controller(1).is_ok());
        assert!(matches!(
            m.controller(2),
            Err(ChannelError::BadChannel { .. })
        ));
    }
}
