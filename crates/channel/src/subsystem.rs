//! The multi-channel memory subsystem (Fig. 2 of the paper): M parallel
//! channels, each a memory controller + DRAM interconnect + bank cluster,
//! fed by master transactions that the Table II interleaving spreads over
//! all channels.

use std::sync::Arc;

use mcm_ctrl::{AccessOp, ChannelReport, ChannelRequest, Controller, ControllerConfig, CtrlError};
use mcm_dram::AddressMapping;
use mcm_fault::{FaultPlan, WindowSpec};
use mcm_obs::{ChannelObs, EventLog, FaultKind, Recorder};
use mcm_sim::{ClockDomain, Frequency, SimTime};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::error::ChannelError;
use crate::interleave::InterleaveMap;

/// Configuration of the whole memory subsystem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Number of channels (paper: 1, 2, 4 or 8).
    pub channels: u32,
    /// Interface clock, MHz, shared by all channels (paper: 200–533).
    pub clock_mhz: u64,
    /// Interleaving granularity, bytes (paper: 16).
    pub granule_bytes: u64,
    /// Per-channel controller configuration template.
    pub controller: ControllerConfig,
}

impl MemoryConfig {
    /// The paper's configuration: `channels` × next-generation mobile DDR at
    /// `clock_mhz`, RBC mapping, open page, immediate power-down, 16-byte
    /// interleave.
    pub fn paper(channels: u32, clock_mhz: u64) -> Self {
        MemoryConfig {
            channels,
            clock_mhz,
            granule_bytes: 16,
            controller: ControllerConfig::paper_default(clock_mhz),
        }
    }

    /// Same configuration with a different address multiplexing type
    /// (for the RBC/BRC ablation).
    pub fn with_mapping(mut self, mapping: AddressMapping) -> Self {
        self.controller.mapping = mapping;
        self
    }
}

/// A master transaction: what the SMP/cache side of Fig. 2 emits toward the
/// memory subsystem after a cache miss or write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterTransaction {
    /// Direction.
    pub op: AccessOp,
    /// Global byte address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Arrival cycle on the (shared) interface clock.
    pub arrival: u64,
}

/// Timing outcome of one master transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransactionResult {
    /// Cycle at which the last involved channel finished the last data beat.
    pub done_cycle: u64,
    /// How many channels the transaction touched.
    pub channels_used: u32,
}

/// Aggregated end-of-run report for the subsystem.
#[derive(Debug, Clone)]
pub struct SubsystemReport {
    /// Per-channel reports.
    pub channels: Vec<ChannelReport>,
    /// Cycle at which the whole subsystem drained (max over channels).
    pub busy_until: u64,
    /// Wall-clock equivalent of [`SubsystemReport::busy_until`].
    pub access_time: SimTime,
    /// Total DRAM core energy across channels, picojoules.
    pub core_energy_pj: f64,
    /// Bytes read through the subsystem.
    pub bytes_read: u64,
    /// Bytes written through the subsystem.
    pub bytes_written: u64,
}

impl SubsystemReport {
    /// Average core power over `horizon`, milliwatts.
    pub fn core_power_mw(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.core_energy_pj / horizon.as_ns_f64() / 1e3 * 1e3 // pJ/ns = mW
    }

    /// Achieved bandwidth over the busy period, bytes per second.
    pub fn achieved_bandwidth_bytes_per_s(&self) -> f64 {
        let t = self.access_time.as_s_f64();
        if t == 0.0 {
            return 0.0;
        }
        (self.bytes_read + self.bytes_written) as f64 / t
    }
}

/// Degradation counters accumulated while a fault plan is active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeStats {
    /// Requests that arrived inside a flaky channel's down window.
    pub flaky_hits: u64,
    /// Retry attempts made on flaky windows.
    pub retries: u64,
    /// Requests remapped to a neighbour channel after retries ran out.
    pub remaps: u64,
}

/// Runtime state of an applied [`FaultPlan`]: the degraded interleave over
/// the surviving channels, per-channel flaky windows, and the per-channel
/// arrival floors that keep each controller's FCFS invariant intact while
/// retries and remaps shuffle arrival times.
#[derive(Debug)]
struct FaultState {
    /// Interleave over the survivors (slot-indexed).
    map: InterleaveMap,
    /// Slot → physical channel.
    survivors: Vec<u32>,
    /// Flaky window per *physical* channel.
    flaky: Vec<Option<WindowSpec>>,
    /// Per-physical-channel minimum arrival for the next request. Retries
    /// and remaps can move one slice's arrival past a later transaction's
    /// raw arrival; clamping to the floor preserves monotonicity.
    floors: Vec<u64>,
    max_retries: u32,
    backoff: u64,
    stats: DegradeStats,
}

/// The paper's Fig. 2 memory subsystem: M channels of memory controller +
/// DRAM interconnect + bank cluster behind a Table II interleaver.
///
/// # Examples
///
/// ```
/// use mcm_channel::{MasterTransaction, MemoryConfig, MemorySubsystem};
/// use mcm_ctrl::AccessOp;
///
/// let mut mem = MemorySubsystem::new(&MemoryConfig::paper(4, 400)).unwrap();
/// let res = mem.submit(MasterTransaction {
///     op: AccessOp::Read, addr: 0, len: 64, arrival: 0,
/// }).unwrap();
/// assert_eq!(res.channels_used, 4); // a 64-byte line spans all 4 channels
/// ```
#[derive(Debug)]
pub struct MemorySubsystem {
    controllers: Vec<Controller>,
    interleave: InterleaveMap,
    clock: ClockDomain,
    capacity_bytes: u64,
    bytes_read: u64,
    bytes_written: u64,
    recorder: Option<Arc<dyn Recorder>>,
    /// Reused per-transaction fan-out buffer (one slot per channel), so
    /// `submit` never allocates on the hot path.
    slice_buf: Vec<Option<(u64, u64)>>,
    /// Active fault plan state; `None` (healthy) keeps the hot path
    /// untouched apart from one branch in `submit`.
    faults: Option<FaultState>,
}

impl MemorySubsystem {
    /// Builds the subsystem; validates channel count, granule and the
    /// per-channel configuration.
    pub fn new(config: &MemoryConfig) -> Result<Self, ChannelError> {
        // A healthy subsystem needs a power-of-two channel count (Table II
        // address-bit slicing); only a *degraded* subsystem re-interleaves
        // over an arbitrary survivor count.
        if !config.channels.is_power_of_two() {
            return Err(ChannelError::BadConfig {
                reason: format!(
                    "channel count {} must be a power of two (paper: 1, 2, 4 or 8)",
                    config.channels
                ),
            });
        }
        let interleave = InterleaveMap::new(config.channels, config.granule_bytes)?;
        let burst = config.controller.cluster.geometry.burst_bytes() as u64;
        if !config.granule_bytes.is_multiple_of(burst) {
            return Err(ChannelError::BadConfig {
                reason: format!(
                    "granule {} B must be a multiple of the {} B DRAM burst",
                    config.granule_bytes, burst
                ),
            });
        }
        if config.controller.cluster.clock_mhz != config.clock_mhz {
            return Err(ChannelError::BadConfig {
                reason: format!(
                    "subsystem clock {} MHz disagrees with controller clock {} MHz",
                    config.clock_mhz, config.controller.cluster.clock_mhz
                ),
            });
        }
        let mut controllers = Vec::with_capacity(config.channels as usize);
        for channel in 0..config.channels {
            controllers.push(
                Controller::new(&config.controller)
                    .map_err(|source| ChannelError::Ctrl { channel, source })?,
            );
        }
        let clock = ClockDomain::new(Frequency::from_mhz(config.clock_mhz)).map_err(|e| {
            ChannelError::BadConfig {
                reason: e.to_string(),
            }
        })?;
        let capacity_bytes =
            controllers[0].device().geometry().capacity_bytes() * config.channels as u64;
        Ok(MemorySubsystem {
            controllers,
            interleave,
            clock,
            capacity_bytes,
            bytes_read: 0,
            bytes_written: 0,
            recorder: None,
            slice_buf: Vec::new(),
            faults: None,
        })
    }

    /// Applies a fault plan: survivors are re-interleaved to cover the
    /// (shrunken) address space, flaky windows arm the retry/remap path,
    /// and bank penalties, refresh pressure and controller stalls are
    /// pushed down into the affected controllers. Attach a recorder first
    /// if the one-time fault events should be observed. A plan can be
    /// applied at most once, before any traffic is submitted.
    pub fn apply_faults(&mut self, plan: &FaultPlan) -> Result<(), ChannelError> {
        if self.faults.is_some() {
            return Err(ChannelError::BadConfig {
                reason: "a fault plan is already applied".into(),
            });
        }
        if self.bytes_read + self.bytes_written > 0 {
            return Err(ChannelError::BadConfig {
                reason: "fault plans must be applied before traffic".into(),
            });
        }
        let channels = self.channels();
        plan.validate(channels)
            .map_err(|e| ChannelError::BadConfig {
                reason: e.to_string(),
            })?;
        let survivors = plan.survivors(channels);
        let map = InterleaveMap::new(survivors.len() as u32, self.interleave.granule_bytes())?;
        let flaky: Vec<Option<WindowSpec>> = (0..channels).map(|c| plan.flaky_window(c)).collect();
        // Push the controller-level faults down.
        let divisor = plan.refresh_divisor();
        for &ch in &survivors {
            let ctrl = &mut self.controllers[ch as usize];
            if divisor > 1 {
                ctrl.set_refresh_pressure(divisor);
            }
            if let Some(w) = plan.stall_window(ch) {
                ctrl.set_stall_window(w.period, w.down, w.phase);
            }
        }
        for (ch, bank, extra_trcd, extra_trp) in plan.bank_penalties() {
            self.controllers[ch as usize]
                .set_bank_penalty(bank, extra_trcd, extra_trp)
                .map_err(|source| ChannelError::Ctrl {
                    channel: ch,
                    source,
                })?;
        }
        // One-time fault events for the observability layer.
        if let Some(rec) = &self.recorder {
            for &ch in &plan.lost_channels() {
                rec.record_fault(ch, FaultKind::ChannelLost, 0);
            }
            if divisor > 1 {
                for &ch in &survivors {
                    rec.record_fault(ch, FaultKind::RefreshPressure, 0);
                }
            }
            for (ch, _, _, _) in plan.bank_penalties() {
                rec.record_fault(ch, FaultKind::SlowBank, 0);
            }
        }
        // The degraded subsystem only covers the survivors' capacity.
        let per_channel = self.capacity_bytes / channels as u64;
        self.capacity_bytes = per_channel * survivors.len() as u64;
        self.faults = Some(FaultState {
            map,
            survivors,
            flaky,
            floors: vec![0; channels as usize],
            max_retries: plan.policy.max_retries,
            backoff: plan.policy.backoff_cycles,
            stats: DegradeStats::default(),
        });
        Ok(())
    }

    /// Degradation counters so far, when a fault plan is applied.
    pub fn degrade_stats(&self) -> Option<DegradeStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    /// The surviving physical channels under the applied fault plan, or
    /// `None` when the subsystem is healthy.
    pub fn fault_survivors(&self) -> Option<&[u32]> {
        self.faults.as_ref().map(|f| f.survivors.as_slice())
    }

    /// Attaches an observability recorder to the whole subsystem: every
    /// controller and device reports through a per-channel handle, and the
    /// subsystem itself reports per-slice traffic and one span per master
    /// transaction. Off by default (the disabled path is one branch).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        for (ch, ctrl) in self.controllers.iter_mut().enumerate() {
            ctrl.set_obs(ChannelObs::new(Arc::clone(&recorder), ch as u32));
        }
        self.recorder = Some(recorder);
    }

    /// The interleaving in use.
    pub fn interleave(&self) -> &InterleaveMap {
        &self.interleave
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.controllers.len() as u32
    }

    /// Total capacity across channels, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// The shared interface clock.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Theoretical peak bandwidth: channels × bus width × 2 (DDR) × clock.
    pub fn peak_bandwidth_bytes_per_s(&self) -> f64 {
        let word = self.controllers[0].device().geometry().word_bytes() as f64;
        self.channels() as f64 * word * 2.0 * self.clock.frequency().as_hz() as f64
    }

    /// Turns on command tracing in every channel's controller so the
    /// per-channel traces can later be audited (e.g. by `mcm-verify`).
    /// Full-frame traces are large; bound the run with an op limit.
    pub fn enable_trace(&mut self) {
        for ctrl in &mut self.controllers {
            ctrl.enable_trace();
        }
    }

    /// Access to one channel's controller (e.g. for statistics).
    pub fn controller(&self, channel: u32) -> Result<&Controller, ChannelError> {
        self.controllers
            .get(channel as usize)
            .ok_or(ChannelError::BadChannel {
                channel,
                channels: self.channels(),
            })
    }

    /// Submits one master transaction; the interleaver fans it out and every
    /// touched channel processes its slice. Returns when the last channel
    /// finishes (channels work in parallel).
    pub fn submit(&mut self, txn: MasterTransaction) -> Result<TransactionResult, ChannelError> {
        if txn.len == 0 {
            return Err(ChannelError::BadConfig {
                reason: "zero-length master transaction".into(),
            });
        }
        let end = txn
            .addr
            .checked_add(txn.len)
            .ok_or(ChannelError::AddressOutOfRange {
                addr: txn.addr,
                capacity_bytes: self.capacity_bytes,
            })?;
        if end > self.capacity_bytes {
            return Err(ChannelError::AddressOutOfRange {
                addr: txn.addr,
                capacity_bytes: self.capacity_bytes,
            });
        }
        // Take the fault state out so the degraded path can borrow `self`
        // (controllers, recorder, buffers) freely alongside it.
        if let Some(mut fs) = self.faults.take() {
            let result = self.submit_degraded(&mut fs, txn);
            self.faults = Some(fs);
            return result;
        }
        let mut slices = std::mem::take(&mut self.slice_buf);
        self.interleave
            .split_range_into(txn.addr, txn.len, &mut slices);
        let mut done = 0u64;
        let mut used = 0u32;
        for (ch, slice) in slices.iter().enumerate() {
            let Some((local, len)) = *slice else { continue };
            let res = self.controllers[ch]
                .access(ChannelRequest {
                    op: txn.op,
                    addr: local,
                    len: len as u32,
                    arrival: txn.arrival,
                })
                .map_err(|source| ChannelError::Ctrl {
                    channel: ch as u32,
                    source,
                })?;
            if let Some(rec) = &self.recorder {
                let at_ps = self.clock.time_of_cycles(res.done_cycle).as_ps();
                rec.record_bytes(ch as u32, txn.op == AccessOp::Write, len, at_ps);
            }
            done = done.max(res.done_cycle);
            used += 1;
        }
        self.slice_buf = slices;
        match txn.op {
            AccessOp::Read => self.bytes_read += txn.len,
            AccessOp::Write => self.bytes_written += txn.len,
        }
        if let Some(rec) = &self.recorder {
            rec.record_span(
                "txn",
                None,
                self.clock.time_of_cycles(txn.arrival).as_ps(),
                self.clock.time_of_cycles(done.max(txn.arrival)).as_ps(),
            );
        }
        Ok(TransactionResult {
            done_cycle: done,
            channels_used: used,
        })
    }

    /// The degraded counterpart of [`MemorySubsystem::submit`]: slices over
    /// the surviving channels' interleave, retries flaky-window hits with
    /// linear backoff, and remaps a slice to the next surviving channel
    /// when retries run out. Per-channel arrival floors keep every
    /// controller's FCFS arrival invariant intact while the adjustments
    /// shuffle arrival times.
    ///
    /// A remapped slice keeps its local address on the neighbour channel —
    /// this is a timing model; real hardware would consult a sparse remap
    /// table for placement.
    fn submit_degraded(
        &mut self,
        fs: &mut FaultState,
        txn: MasterTransaction,
    ) -> Result<TransactionResult, ChannelError> {
        let mut slices = std::mem::take(&mut self.slice_buf);
        fs.map.split_range_into(txn.addr, txn.len, &mut slices);
        let mut done = 0u64;
        let mut used = 0u32;
        for (slot, slice) in slices.iter().enumerate() {
            let Some((local, len)) = *slice else { continue };
            let phys = fs.survivors[slot];
            let mut target = phys;
            let mut arrival = txn.arrival.max(fs.floors[phys as usize]);
            if let Some(w) = fs.flaky[phys as usize] {
                if w.is_down(arrival) {
                    fs.stats.flaky_hits += 1;
                    if let Some(rec) = &self.recorder {
                        let at_ps = self.clock.time_of_cycles(arrival).as_ps();
                        rec.record_fault(phys, FaultKind::FlakyHit, at_ps);
                    }
                    let mut recovered = false;
                    for attempt in 1..=fs.max_retries {
                        fs.stats.retries += 1;
                        let try_at = arrival + fs.backoff * attempt as u64;
                        if let Some(rec) = &self.recorder {
                            let at_ps = self.clock.time_of_cycles(try_at).as_ps();
                            rec.record_fault(phys, FaultKind::Retry, at_ps);
                        }
                        if !w.is_down(try_at) {
                            arrival = try_at;
                            recovered = true;
                            break;
                        }
                    }
                    if !recovered {
                        // Retries exhausted inside the window: remap the
                        // slice to the next surviving channel, charged the
                        // full backoff the retries consumed.
                        fs.stats.remaps += 1;
                        arrival += fs.backoff * fs.max_retries as u64;
                        let next_slot = (slot + 1) % fs.survivors.len();
                        target = fs.survivors[next_slot];
                        if let Some(w2) = fs.flaky[target as usize] {
                            arrival = w2.next_up(arrival);
                        }
                        if let Some(rec) = &self.recorder {
                            let at_ps = self.clock.time_of_cycles(arrival).as_ps();
                            rec.record_fault(phys, FaultKind::Remap, at_ps);
                        }
                    }
                }
            }
            let arrival = arrival.max(fs.floors[target as usize]);
            fs.floors[target as usize] = arrival;
            let res = self.controllers[target as usize]
                .access(ChannelRequest {
                    op: txn.op,
                    addr: local,
                    len: len as u32,
                    arrival,
                })
                .map_err(|source| ChannelError::Ctrl {
                    channel: target,
                    source,
                })?;
            if let Some(rec) = &self.recorder {
                let at_ps = self.clock.time_of_cycles(res.done_cycle).as_ps();
                rec.record_bytes(target, txn.op == AccessOp::Write, len, at_ps);
            }
            done = done.max(res.done_cycle);
            used += 1;
        }
        self.slice_buf = slices;
        match txn.op {
            AccessOp::Read => self.bytes_read += txn.len,
            AccessOp::Write => self.bytes_written += txn.len,
        }
        if let Some(rec) = &self.recorder {
            rec.record_span(
                "txn",
                None,
                self.clock.time_of_cycles(txn.arrival).as_ps(),
                self.clock.time_of_cycles(done.max(txn.arrival)).as_ps(),
            );
        }
        Ok(TransactionResult {
            done_cycle: done,
            channels_used: used,
        })
    }

    /// Submits a whole burst of master transactions in one pass and returns
    /// the cycle at which the last one finished (0 for an empty batch).
    ///
    /// Semantically identical to calling [`MemorySubsystem::submit`] per
    /// transaction and folding `done_cycle` with `max`; batching lets the
    /// admission loop stay in the subsystem instead of bouncing through the
    /// caller per transaction.
    pub fn submit_batch(&mut self, txns: &[MasterTransaction]) -> Result<u64, ChannelError> {
        let mut done = 0u64;
        for &txn in txns {
            done = done.max(self.submit(txn)?.done_cycle);
        }
        Ok(done)
    }

    /// Submits a whole burst of master transactions with per-channel
    /// parallelism and returns the cycle at which the last one finished
    /// (0 for an empty batch).
    ///
    /// Channels only couple through the interleave fan-out and the
    /// `max(done_cycle)` fold, so the batch is split per channel (phase 1,
    /// serial), each channel's request substream is simulated on the rayon
    /// pool (phase 2, parallel — every controller sees exactly the request
    /// sequence serial submission would have fed it), and the per-channel
    /// results and buffered recorder events are merged back deterministically
    /// in transaction-major `(transaction, channel, capture-sequence)` order
    /// — the calendar queue's FIFO-among-equals tiebreak discipline —
    /// (phase 3, serial). The result — timings, statistics, traces and the
    /// recorder event stream — is bit-identical to [`Self::submit_batch`]
    /// at any thread count.
    ///
    /// `threads == 0` uses the ambient rayon pool size (`RAYON_NUM_THREADS`
    /// or the CPU count). Degraded subsystems (an applied fault plan couples
    /// channels through remaps and arrival floors) and single-channel
    /// subsystems fall back to the serial path. Unlike `submit_batch`, the
    /// whole batch is validated up front, so a rejected transaction fails
    /// the batch before any traffic flows; errors raised mid-simulation
    /// (impossible for validated, arrival-monotone input) are reported for
    /// the lowest `(transaction, channel)` pair, and the subsystem state is
    /// then unspecified but internally consistent.
    pub fn submit_batch_parallel(
        &mut self,
        txns: &[MasterTransaction],
        threads: usize,
    ) -> Result<u64, ChannelError> {
        if self.faults.is_some() || self.controllers.len() == 1 || txns.len() < 2 {
            return self.submit_batch(txns);
        }
        // Phase 1a: validate the whole batch before any traffic flows.
        for txn in txns {
            if txn.len == 0 {
                return Err(ChannelError::BadConfig {
                    reason: "zero-length master transaction".into(),
                });
            }
            let end = txn
                .addr
                .checked_add(txn.len)
                .ok_or(ChannelError::AddressOutOfRange {
                    addr: txn.addr,
                    capacity_bytes: self.capacity_bytes,
                })?;
            if end > self.capacity_bytes {
                return Err(ChannelError::AddressOutOfRange {
                    addr: txn.addr,
                    capacity_bytes: self.capacity_bytes,
                });
            }
        }
        // Phase 1b: fan every transaction out into per-channel substreams.
        let channels = self.controllers.len();
        let mut per_channel: Vec<Vec<(u32, ChannelRequest)>> = vec![Vec::new(); channels];
        let mut slices = std::mem::take(&mut self.slice_buf);
        for (idx, txn) in txns.iter().enumerate() {
            self.interleave
                .split_range_into(txn.addr, txn.len, &mut slices);
            for (ch, slice) in slices.iter().enumerate() {
                let Some((local, len)) = *slice else { continue };
                per_channel[ch].push((
                    idx as u32,
                    ChannelRequest {
                        op: txn.op,
                        addr: local,
                        len: len as u32,
                        arrival: txn.arrival,
                    },
                ));
            }
        }
        self.slice_buf = slices;
        // Phase 2: simulate each channel's substream on the rayon pool. The
        // controllers move into the workers and come back in channel order
        // (the vendored pool collects map results in input order). With a
        // recorder attached, each worker buffers its events in a private
        // `EventLog` for the deterministic replay below.
        struct WorkerOutcome {
            ctrl: Controller,
            /// Per retired request: (transaction index, done cycle, event-log
            /// length after this request's events).
            dones: Vec<(u32, u64, usize)>,
            err: Option<(u32, CtrlError)>,
            log: Option<Arc<EventLog>>,
        }
        let clock = self.clock;
        let recorder = self.recorder.clone();
        type ChannelWork = (usize, Controller, Vec<(u32, ChannelRequest)>);
        let work: Vec<ChannelWork> = std::mem::take(&mut self.controllers)
            .into_iter()
            .zip(per_channel)
            .enumerate()
            .map(|(ch, (ctrl, reqs))| (ch, ctrl, reqs))
            .collect();
        let run_channel = |(ch, mut ctrl, reqs): ChannelWork| {
            let log = recorder.as_ref().map(|_| Arc::new(EventLog::new()));
            if let Some(log) = &log {
                ctrl.set_obs(ChannelObs::new(
                    Arc::clone(log) as Arc<dyn Recorder>,
                    ch as u32,
                ));
            }
            let mut dones = Vec::with_capacity(reqs.len());
            let mut err = None;
            for (txn, req) in reqs {
                let write = req.op == AccessOp::Write;
                let len = u64::from(req.len);
                match ctrl.access(req) {
                    Ok(res) => {
                        if let Some(log) = &log {
                            let at_ps = clock.time_of_cycles(res.done_cycle).as_ps();
                            log.record_bytes(ch as u32, write, len, at_ps);
                        }
                        dones.push((txn, res.done_cycle, log.as_ref().map_or(0, |l| l.len())));
                    }
                    Err(source) => {
                        err = Some((txn, source));
                        break;
                    }
                }
            }
            WorkerOutcome {
                ctrl,
                dones,
                err,
                log,
            }
        };
        let outcomes: Vec<WorkerOutcome> = if threads == 1 {
            work.into_iter().map(run_channel).collect()
        } else {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .map_err(|e| ChannelError::BadConfig {
                    reason: format!("cannot build rayon pool: {e}"),
                })?;
            pool.install(|| work.into_par_iter().map(run_channel).collect())
        };
        // Phase 3: restore the controllers (and their live observability
        // handles), then merge results and buffered events deterministically.
        let mut first_err: Option<(u32, u32, CtrlError)> = None;
        let mut logs: Vec<Option<Arc<EventLog>>> = Vec::with_capacity(channels);
        let mut dones: Vec<Vec<(u32, u64, usize)>> = Vec::with_capacity(channels);
        for (ch, oc) in outcomes.into_iter().enumerate() {
            let mut ctrl = oc.ctrl;
            if let Some(rec) = &self.recorder {
                ctrl.set_obs(ChannelObs::new(Arc::clone(rec), ch as u32));
            }
            self.controllers.push(ctrl);
            if let Some((txn, source)) = oc.err {
                let better = first_err
                    .as_ref()
                    .is_none_or(|(t, c, _)| (txn, ch as u32) < (*t, *c));
                if better {
                    first_err = Some((txn, ch as u32, source));
                }
            }
            logs.push(oc.log);
            dones.push(oc.dones);
        }
        if let Some((_, channel, source)) = first_err {
            return Err(ChannelError::Ctrl { channel, source });
        }
        let mut txn_done = vec![0u64; txns.len()];
        for ch_dones in &dones {
            for &(txn, done, _) in ch_dones {
                let slot = &mut txn_done[txn as usize];
                *slot = (*slot).max(done);
            }
        }
        if let Some(rec) = &self.recorder {
            // Transaction-major replay reproduces the serial emission order
            // exactly: per transaction, each touched channel's buffered
            // events in ascending channel order, then the "txn" span.
            let events: Vec<Vec<mcm_obs::ObsEvent>> = logs
                .iter()
                .map(|l| l.as_ref().map_or_else(Vec::new, |l| l.take()))
                .collect();
            let mut cursor = vec![0usize; channels];
            let mut next = vec![0usize; channels];
            for (idx, txn) in txns.iter().enumerate() {
                for ch in 0..channels {
                    let Some(&(t, _, end)) = dones[ch].get(next[ch]) else {
                        continue;
                    };
                    if t as usize != idx {
                        continue;
                    }
                    for e in &events[ch][cursor[ch]..end] {
                        e.replay(rec.as_ref());
                    }
                    cursor[ch] = end;
                    next[ch] += 1;
                }
                let done = txn_done[idx];
                rec.record_span(
                    "txn",
                    None,
                    self.clock.time_of_cycles(txn.arrival).as_ps(),
                    self.clock.time_of_cycles(done.max(txn.arrival)).as_ps(),
                );
            }
        }
        for txn in txns {
            match txn.op {
                AccessOp::Read => self.bytes_read += txn.len,
                AccessOp::Write => self.bytes_written += txn.len,
            }
        }
        Ok(txn_done.into_iter().max().unwrap_or(0))
    }

    /// Total per-event (activate/burst/refresh) DRAM energy accrued so far
    /// across all channels, picojoules. Unlike [`Self::finish`] this is a
    /// pure read — no idle housekeeping runs — which makes it usable as a
    /// between-frames energy meter (the steady-state memoizer prices each
    /// unique frame by the delta of this quantity).
    pub fn event_energy_pj(&self) -> f64 {
        self.controllers
            .iter()
            .map(|c| c.device().event_energy_pj())
            .sum()
    }

    /// Cycle at which all channels have drained.
    pub fn busy_until(&self) -> u64 {
        self.controllers
            .iter()
            .map(Controller::busy_until)
            .max()
            .unwrap_or(0)
    }

    /// Closes the run at `end_cycle` (idle housekeeping on every channel)
    /// and aggregates time, energy and statistics.
    pub fn finish(&mut self, end_cycle: u64) -> Result<SubsystemReport, ChannelError> {
        let end = end_cycle.max(self.busy_until());
        let mut channels = Vec::with_capacity(self.controllers.len());
        for (ch, ctrl) in self.controllers.iter_mut().enumerate() {
            channels.push(ctrl.finish(end).map_err(|source| ChannelError::Ctrl {
                channel: ch as u32,
                source,
            })?);
        }
        let busy_until = channels.iter().map(|r| r.busy_until).max().unwrap_or(0);
        let core_energy_pj = channels.iter().map(|r| r.total_energy_pj).sum();
        Ok(SubsystemReport {
            busy_until,
            access_time: self.clock.time_of_cycles(busy_until),
            core_energy_pj,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(channels: u32) -> MemorySubsystem {
        MemorySubsystem::new(&MemoryConfig::paper(channels, 400)).unwrap()
    }

    #[test]
    fn peak_bandwidth_matches_paper_arithmetic() {
        // 8 channels × 4 B × 2 × 400 MHz = 25.6 GB/s (the XDR comparison
        // point's theoretical peak).
        let m = mem(8);
        assert!((m.peak_bandwidth_bytes_per_s() - 25.6e9).abs() < 1e3);
    }

    #[test]
    fn capacity_scales_with_channels() {
        assert_eq!(mem(1).capacity_bytes(), 64 << 20);
        assert_eq!(mem(8).capacity_bytes(), 512 << 20);
    }

    #[test]
    fn cache_line_spans_channels() {
        let mut m = mem(4);
        let r = m
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 64,
                arrival: 0,
            })
            .unwrap();
        assert_eq!(r.channels_used, 4);
        let mut m1 = mem(1);
        let r1 = m1
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 64,
                arrival: 0,
            })
            .unwrap();
        assert_eq!(r1.channels_used, 1);
        // Four channels in parallel beat one channel in series.
        assert!(r.done_cycle < r1.done_cycle);
    }

    #[test]
    fn more_channels_scale_throughput_on_large_sweeps() {
        let sweep = |channels: u32| {
            let mut m = mem(channels);
            m.submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 1 << 20, // 1 MiB
                arrival: 0,
            })
            .unwrap();
            let rep = m.finish(0).unwrap();
            rep.busy_until
        };
        let t1 = sweep(1);
        let t2 = sweep(2);
        let t4 = sweep(4);
        let t8 = sweep(8);
        // Close to the paper's "2x speedup per channel doubling".
        for (fast, slow) in [(t2, t1), (t4, t2), (t8, t4)] {
            let ratio = slow as f64 / fast as f64;
            assert!(
                (1.7..=2.2).contains(&ratio),
                "speedup {ratio} out of expected band (t1={t1} t2={t2} t4={t4} t8={t8})"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_and_zero_length() {
        let mut m = mem(2);
        let cap = m.capacity_bytes();
        assert!(matches!(
            m.submit(MasterTransaction {
                op: AccessOp::Read,
                addr: cap - 8,
                len: 16,
                arrival: 0
            }),
            Err(ChannelError::AddressOutOfRange { .. })
        ));
        assert!(m
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 0,
                arrival: 0
            })
            .is_err());
        assert!(m
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: u64::MAX,
                len: 16,
                arrival: 0
            })
            .is_err());
    }

    #[test]
    fn config_validation() {
        let mut cfg = MemoryConfig::paper(4, 400);
        cfg.granule_bytes = 8; // below the 16 B burst
        assert!(MemorySubsystem::new(&cfg).is_err());

        let mut cfg = MemoryConfig::paper(4, 400);
        cfg.clock_mhz = 333; // disagrees with controller template
        assert!(MemorySubsystem::new(&cfg).is_err());

        let cfg = MemoryConfig::paper(3, 400);
        assert!(MemorySubsystem::new(&cfg).is_err());
    }

    #[test]
    fn report_aggregates_energy_and_bytes() {
        let mut m = mem(2);
        m.submit(MasterTransaction {
            op: AccessOp::Read,
            addr: 0,
            len: 4096,
            arrival: 0,
        })
        .unwrap();
        m.submit(MasterTransaction {
            op: AccessOp::Write,
            addr: 4096,
            len: 4096,
            arrival: 0,
        })
        .unwrap();
        let rep = m.finish(1_000_000).unwrap();
        assert_eq!(rep.bytes_read, 4096);
        assert_eq!(rep.bytes_written, 4096);
        assert_eq!(rep.channels.len(), 2);
        assert!(rep.core_energy_pj > 0.0);
        assert!(rep.access_time > SimTime::ZERO);
        assert!(rep.achieved_bandwidth_bytes_per_s() > 0.0);
    }

    #[test]
    fn recorder_agrees_with_simulator_statistics() {
        use mcm_obs::StatsRecorder;
        let mut m = mem(2);
        let rec = Arc::new(StatsRecorder::new());
        m.set_recorder(rec.clone());
        m.submit(MasterTransaction {
            op: AccessOp::Read,
            addr: 0,
            len: 4096,
            arrival: 0,
        })
        .unwrap();
        m.submit(MasterTransaction {
            op: AccessOp::Write,
            addr: 4096,
            len: 1024,
            arrival: 0,
        })
        .unwrap();
        let sub = m.finish(1_000_000).unwrap();
        let report = rec.report();
        assert_eq!(report.channels.len(), 2);
        for obs_ch in &report.channels {
            let dev = m.controller(obs_ch.channel).unwrap().device().stats();
            let ctrl = m.controller(obs_ch.channel).unwrap().stats();
            assert_eq!(obs_ch.counters.commands.activates, dev.activates);
            assert_eq!(obs_ch.counters.commands.reads, dev.reads);
            assert_eq!(obs_ch.counters.commands.writes, dev.writes);
            assert_eq!(obs_ch.counters.rows.hits, ctrl.row_hits);
            assert_eq!(obs_ch.counters.rows.misses, ctrl.row_misses);
            // Both transactions sliced onto both channels: two retired
            // requests, each with a recorded latency.
            assert_eq!(obs_ch.counters.requests, 2);
            assert_eq!(obs_ch.latency_ps.count, 2);
        }
        let read: u64 = report.channels.iter().map(|c| c.counters.bytes_read).sum();
        let written: u64 = report
            .channels
            .iter()
            .map(|c| c.counters.bytes_written)
            .sum();
        assert_eq!(read, sub.bytes_read);
        assert_eq!(written, sub.bytes_written);
        // One span per master transaction, on the master track.
        assert_eq!(report.spans.len(), 2);
        assert!(report.spans.iter().all(|s| s.channel.is_none()));
        // Observed energy matches the subsystem's core energy.
        let obs_pj: f64 = report.channels.iter().map(|c| c.energy.total_pj()).sum();
        assert!(
            (obs_pj - sub.core_energy_pj).abs() < 1e-6 * sub.core_energy_pj.max(1.0),
            "obs {obs_pj} vs report {}",
            sub.core_energy_pj
        );
    }

    #[test]
    fn channel_loss_reinterleaves_survivors() {
        let mut m = mem(4);
        let full_cap = m.capacity_bytes();
        m.apply_faults(&FaultPlan::channel_loss(1, 2)).unwrap();
        // Capacity shrinks to the three survivors.
        assert_eq!(m.capacity_bytes(), full_cap / 4 * 3);
        assert_eq!(m.fault_survivors(), Some(&[0u32, 1, 3][..]));
        // A 48-byte line now spans exactly the three survivors.
        let r = m
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 48,
                arrival: 0,
            })
            .unwrap();
        assert_eq!(r.channels_used, 3);
        // The lost channel saw no traffic.
        assert_eq!(m.controller(2).unwrap().stats().read_bursts, 0);
        for ch in [0u32, 1, 3] {
            assert!(m.controller(ch).unwrap().stats().read_bursts > 0);
        }
        let stats = m.degrade_stats().unwrap();
        assert_eq!(stats.flaky_hits, 0);
    }

    #[test]
    fn flaky_channel_retries_then_remaps() {
        use mcm_fault::{DegradePolicy, FaultSpec, WindowSpec};
        // Channel 1 is down for the first 5000 of every 10000 cycles; three
        // 64-cycle backoff retries cannot escape the window, so slices
        // remap to the next survivor.
        let plan = FaultPlan {
            seed: 0,
            faults: vec![FaultSpec::FlakyChannel {
                channel: 1,
                window: WindowSpec {
                    period: 10_000,
                    down: 5_000,
                    phase: 0,
                },
            }],
            policy: DegradePolicy {
                max_retries: 3,
                backoff_cycles: 64,
                shed_target_pct: 70,
            },
        };
        let mut m = mem(2);
        m.apply_faults(&plan).unwrap();
        let r = m
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 32,
                arrival: 0,
            })
            .unwrap();
        assert_eq!(r.channels_used, 2);
        let stats = m.degrade_stats().unwrap();
        assert_eq!(stats.flaky_hits, 1);
        assert_eq!(stats.retries, 3);
        assert_eq!(stats.remaps, 1);
        // The remapped slice landed on channel 0 alongside its own slice.
        assert_eq!(m.controller(0).unwrap().stats().read_bursts, 2);
        assert_eq!(m.controller(1).unwrap().stats().read_bursts, 0);
        // A transaction arriving in the up half retries once and recovers.
        let r2 = m
            .submit(MasterTransaction {
                op: AccessOp::Read,
                addr: 32,
                len: 32,
                arrival: 6_000,
            })
            .unwrap();
        assert_eq!(r2.channels_used, 2);
        assert_eq!(m.degrade_stats().unwrap().remaps, 1);
        assert!(m.controller(1).unwrap().stats().read_bursts > 0);
    }

    #[test]
    fn degraded_runs_are_deterministic() {
        let plan = FaultPlan::seeded(0xbeef, 4).unwrap();
        let run = || {
            let mut m = mem(4);
            m.apply_faults(&plan).unwrap();
            let mut done = 0;
            for i in 0..50u64 {
                done = m
                    .submit(MasterTransaction {
                        op: if i % 3 == 0 {
                            AccessOp::Write
                        } else {
                            AccessOp::Read
                        },
                        addr: i * 256,
                        len: 256,
                        arrival: i * 40,
                    })
                    .unwrap()
                    .done_cycle
                    .max(done);
            }
            (done, m.degrade_stats().unwrap())
        };
        let (d1, s1) = run();
        let (d2, s2) = run();
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn fault_plan_application_rules() {
        let mut m = mem(2);
        // Out-of-range channel is rejected.
        assert!(m.apply_faults(&FaultPlan::channel_loss(0, 7)).is_err());
        m.submit(MasterTransaction {
            op: AccessOp::Read,
            addr: 0,
            len: 16,
            arrival: 0,
        })
        .unwrap();
        // Too late: traffic has flowed.
        assert!(m.apply_faults(&FaultPlan::channel_loss(0, 1)).is_err());
        // And a second application is rejected.
        let mut m2 = mem(2);
        m2.apply_faults(&FaultPlan::channel_loss(0, 1)).unwrap();
        assert!(m2.apply_faults(&FaultPlan::channel_loss(0, 1)).is_err());
    }

    #[test]
    fn degraded_byte_accounting_balances() {
        use mcm_obs::StatsRecorder;
        let mut m = mem(4);
        let rec = Arc::new(StatsRecorder::new());
        m.set_recorder(rec.clone());
        m.apply_faults(&FaultPlan::channel_loss(5, 0)).unwrap();
        m.submit(MasterTransaction {
            op: AccessOp::Read,
            addr: 0,
            len: 4096,
            arrival: 0,
        })
        .unwrap();
        let sub = m.finish(1_000_000).unwrap();
        let report = rec.report();
        // Observed per-channel bytes still sum to the subsystem totals.
        let read: u64 = report.channels.iter().map(|c| c.counters.bytes_read).sum();
        assert_eq!(read, sub.bytes_read);
        assert_eq!(sub.bytes_read, 4096);
        // The lost channel reported its one-time fault event.
        let ch0 = report.channels.iter().find(|c| c.channel == 0).unwrap();
        assert!(ch0
            .faults
            .iter()
            .any(|f| f.kind == mcm_obs::FaultKind::ChannelLost));
        assert_eq!(ch0.counters.bytes_read, 0);
    }

    fn parity_txns(cap: u64) -> Vec<MasterTransaction> {
        (0..300u64)
            .map(|i| MasterTransaction {
                op: if i % 3 == 0 {
                    AccessOp::Write
                } else {
                    AccessOp::Read
                },
                addr: (i * 1216) % (cap - 4096),
                len: 64 + (i % 5) * 48,
                arrival: i * 25,
            })
            .collect()
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_serial() {
        use mcm_obs::StatsRecorder;
        for channels in [2u32, 4, 8] {
            let mut serial = mem(channels);
            let rec_s = Arc::new(StatsRecorder::new());
            serial.set_recorder(rec_s.clone());
            let txns = parity_txns(serial.capacity_bytes());
            let done_s = serial.submit_batch(&txns).unwrap();
            let rep_s = serial.finish(1_000_000).unwrap();
            let json_s = rec_s.report().to_json();
            for threads in [1usize, 2, 4] {
                let mut par = mem(channels);
                let rec_p = Arc::new(StatsRecorder::new());
                par.set_recorder(rec_p.clone());
                let done_p = par.submit_batch_parallel(&txns, threads).unwrap();
                assert_eq!(done_s, done_p, "{channels}ch x {threads}t done");
                let rep_p = par.finish(1_000_000).unwrap();
                assert_eq!(rep_s.busy_until, rep_p.busy_until);
                assert_eq!(rep_s.bytes_read, rep_p.bytes_read);
                assert_eq!(rep_s.bytes_written, rep_p.bytes_written);
                assert_eq!(
                    rep_s.core_energy_pj.to_bits(),
                    rep_p.core_energy_pj.to_bits(),
                    "{channels}ch x {threads}t energy"
                );
                assert_eq!(
                    json_s,
                    rec_p.report().to_json(),
                    "{channels}ch x {threads}t recorder stream"
                );
            }
        }
    }

    #[test]
    fn parallel_batch_without_recorder_matches_serial() {
        let mut serial = mem(4);
        let txns = parity_txns(serial.capacity_bytes());
        let done_s = serial.submit_batch(&txns).unwrap();
        let rep_s = serial.finish(500_000).unwrap();
        let mut par = mem(4);
        let done_p = par.submit_batch_parallel(&txns, 2).unwrap();
        assert_eq!(done_s, done_p);
        let rep_p = par.finish(500_000).unwrap();
        assert_eq!(rep_s.busy_until, rep_p.busy_until);
        assert_eq!(
            rep_s.core_energy_pj.to_bits(),
            rep_p.core_energy_pj.to_bits()
        );
        for ch in 0..4 {
            assert_eq!(
                serial.controller(ch).unwrap().stats(),
                par.controller(ch).unwrap().stats(),
                "controller {ch} stats"
            );
        }
    }

    #[test]
    fn parallel_batch_falls_back_when_degraded() {
        let plan = FaultPlan::seeded(0xbeef, 4).unwrap();
        let mut serial = mem(4);
        serial.apply_faults(&plan).unwrap();
        let mut par = mem(4);
        par.apply_faults(&plan).unwrap();
        let txns = parity_txns(serial.capacity_bytes());
        let done_s = serial.submit_batch(&txns).unwrap();
        let done_p = par.submit_batch_parallel(&txns, 4).unwrap();
        assert_eq!(done_s, done_p);
        assert_eq!(
            serial.degrade_stats().unwrap(),
            par.degrade_stats().unwrap()
        );
    }

    #[test]
    fn parallel_batch_validates_up_front() {
        let mut m = mem(4);
        let cap = m.capacity_bytes();
        let txns = vec![
            MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 64,
                arrival: 0,
            },
            MasterTransaction {
                op: AccessOp::Read,
                addr: cap,
                len: 64,
                arrival: 10,
            },
        ];
        assert!(matches!(
            m.submit_batch_parallel(&txns, 2),
            Err(ChannelError::AddressOutOfRange { .. })
        ));
        // Nothing flowed: the batch was rejected before any traffic.
        assert_eq!(m.finish(0).unwrap().bytes_read, 0);
        // Zero-length transactions are rejected the same way.
        let txns = vec![
            MasterTransaction {
                op: AccessOp::Read,
                addr: 0,
                len: 0,
                arrival: 0,
            };
            2
        ];
        assert!(m.submit_batch_parallel(&txns, 2).is_err());
    }

    #[test]
    fn channel_accessor_bounds() {
        let m = mem(2);
        assert!(m.controller(1).is_ok());
        assert!(matches!(
            m.controller(2),
            Err(ChannelError::BadChannel { .. })
        ));
    }
}
