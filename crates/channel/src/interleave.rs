//! Channel interleaving — the executable form of the paper's Table II.
//!
//! "The data for the channels is interleaved in such a way that all the
//! channels can be used in a single master transaction. […] Byte addressable
//! memory is used, minimum DRAM burst size is four, and word length is
//! 32 bits (4 bytes). This makes minimum practical interleaving granularity
//! 16 (= 4×4). For example, addresses from 0 to 15 are located in bank
//! cluster zero and addresses from 16 to 31 in bank cluster one."
//!
//! [`InterleaveMap`] implements that mapping for any non-zero channel
//! count (the modulo arithmetic does not need a power of two — degraded
//! subsystems re-interleave over e.g. 3 surviving channels) and any
//! power-of-two granule, with the paper's 16-byte granule as the default.

use core::fmt;

use crate::error::ChannelError;

/// Maps global byte addresses to (channel, channel-local address) pairs by
/// low-order interleaving.
///
/// # Examples
///
/// The paper's Table II, for M channels at 16-byte granularity:
///
/// ```
/// use mcm_channel::InterleaveMap;
///
/// let m = InterleaveMap::new(4, 16).unwrap();
/// assert_eq!(m.split(0).0, 0);      // bytes 0..16   -> BC 0
/// assert_eq!(m.split(16).0, 1);     // bytes 16..32  -> BC 1
/// assert_eq!(m.split(3 * 16).0, 3); // bytes 48..64  -> BC M-1
/// assert_eq!(m.split(4 * 16).0, 0); // wraps to BC 0
/// // Local addresses stay dense within each channel:
/// assert_eq!(m.split(4 * 16).1, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleaveMap {
    channels: u32,
    granule: u64,
}

impl InterleaveMap {
    /// Creates a map over `channels` channels with `granule_bytes`
    /// interleaving granularity.
    ///
    /// The granule must be a power of two (hardware address-bit slicing
    /// within a granule); the channel count may be any non-zero value —
    /// the rotation is plain modulo arithmetic, which is what lets a
    /// degraded subsystem re-interleave over, say, 3 surviving channels.
    /// The paper uses 1–8 channels and a 16-byte granule.
    pub fn new(channels: u32, granule_bytes: u64) -> Result<Self, ChannelError> {
        if channels == 0 {
            return Err(ChannelError::BadConfig {
                reason: "channel count must be non-zero".to_string(),
            });
        }
        if granule_bytes == 0 || !granule_bytes.is_power_of_two() {
            return Err(ChannelError::BadConfig {
                reason: format!(
                    "interleave granule {granule_bytes} must be a non-zero power of two"
                ),
            });
        }
        Ok(InterleaveMap {
            channels,
            granule: granule_bytes,
        })
    }

    /// The paper's configuration: `channels` × 16-byte granules.
    pub fn paper(channels: u32) -> Result<Self, ChannelError> {
        Self::new(channels, 16)
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Interleaving granularity in bytes.
    pub fn granule_bytes(&self) -> u64 {
        self.granule
    }

    /// Splits a global byte address into `(channel, local address)`.
    pub fn split(&self, addr: u64) -> (u32, u64) {
        let granule_idx = addr / self.granule;
        let channel = (granule_idx % self.channels as u64) as u32;
        let local = (granule_idx / self.channels as u64) * self.granule + addr % self.granule;
        (channel, local)
    }

    /// Reassembles a global address from `(channel, local address)` —
    /// the inverse of [`InterleaveMap::split`].
    pub fn join(&self, channel: u32, local: u64) -> Result<u64, ChannelError> {
        if channel >= self.channels {
            return Err(ChannelError::BadChannel {
                channel,
                channels: self.channels,
            });
        }
        let granule_idx = local / self.granule;
        Ok(
            (granule_idx * self.channels as u64 + channel as u64) * self.granule
                + local % self.granule,
        )
    }

    /// Splits the byte range `[addr, addr + len)` into at most one
    /// contiguous local range per channel.
    ///
    /// Because the interleaving is a pure rotation of granules, the granules
    /// a transaction touches on one channel are always adjacent locally, so
    /// each channel receives a single `(local_addr, len)` slice. Channels
    /// not touched get `None`.
    pub fn split_range(&self, addr: u64, len: u64) -> Vec<Option<(u64, u64)>> {
        let mut out = Vec::new();
        self.split_range_into(addr, len, &mut out);
        out
    }

    /// [`InterleaveMap::split_range`] into a caller-owned buffer, cleared
    /// and resized to the channel count. O(channels) closed form — the cost
    /// does not depend on how many granules the range spans, and a reused
    /// buffer makes the subsystem's per-transaction fan-out allocation-free.
    pub fn split_range_into(&self, addr: u64, len: u64, out: &mut Vec<Option<(u64, u64)>>) {
        out.clear();
        out.resize(self.channels as usize, None);
        if len == 0 {
            return;
        }
        let m = self.channels as u64;
        let g = self.granule;
        let end = addr + len;
        let first = addr / g;
        let last = (end - 1) / g;
        // Bytes the transaction does not cover in its first/last granule.
        let head = addr - first * g;
        let tail = (last + 1) * g - end;
        for c in 0..m {
            // First granule index >= `first` owned by channel `c`.
            let fc = first + ((c + m - first % m) % m);
            if fc > last {
                continue;
            }
            // The channel's granules are fc, fc+m, ...: adjacent locally.
            let count = (last - fc) / m + 1;
            let mut local = (fc / m) * g;
            let mut bytes = count * g;
            if fc == first {
                local += head;
                bytes -= head;
            }
            if last % m == c {
                bytes -= tail;
            }
            out[c as usize] = Some((local, bytes));
        }
    }
}

impl fmt::Display for InterleaveMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} channels × {} B granules",
            self.channels, self.granule
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_example() {
        // TABLE II: addresses 0..16 -> BC0, 16..32 -> BC1, ...,
        // 16(M-1)..16M -> BC M-1, then 16M.. wraps to BC0.
        for m in [1u32, 2, 4, 8] {
            let map = InterleaveMap::paper(m).unwrap();
            for ch in 0..m {
                let (c, local) = map.split(16 * ch as u64);
                assert_eq!(c, ch);
                assert_eq!(local, 0);
            }
            let (c, local) = map.split(16 * m as u64);
            assert_eq!(c, 0);
            assert_eq!(local, 16);
        }
    }

    #[test]
    fn split_join_roundtrip() {
        let map = InterleaveMap::new(8, 16).unwrap();
        for addr in [0u64, 1, 15, 16, 17, 127, 128, 4096, 1 << 30] {
            let (ch, local) = map.split(addr);
            assert_eq!(map.join(ch, local).unwrap(), addr);
        }
    }

    #[test]
    fn single_channel_is_identity() {
        let map = InterleaveMap::paper(1).unwrap();
        for addr in [0u64, 5, 1000, 1 << 20] {
            assert_eq!(map.split(addr), (0, addr));
        }
    }

    #[test]
    fn split_range_covers_exactly_once() {
        let map = InterleaveMap::new(4, 16).unwrap();
        // A 64-byte cache line starting at 0 touches all four channels.
        let slices = map.split_range(0, 64);
        for (ch, s) in slices.iter().enumerate() {
            let (local, len) = s.unwrap();
            assert_eq!(len, 16, "channel {ch}");
            assert_eq!(local, 0);
        }
        // Total bytes conserved.
        let total: u64 = slices.iter().flatten().map(|&(_, l)| l).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn split_range_handles_unaligned_ranges() {
        let map = InterleaveMap::new(2, 16).unwrap();
        // 40 bytes starting at 8: granules 0 (8..16), 1 (16..32), 2 (32..48).
        let slices = map.split_range(8, 40);
        let (l0, n0) = slices[0].unwrap();
        let (l1, n1) = slices[1].unwrap();
        assert_eq!((l0, n0), (8, 24)); // granule0: 8 bytes; granule2: 16 bytes -> local 16..32
        assert_eq!((l1, n1), (0, 16));
        assert_eq!(n0 + n1, 40);
    }

    #[test]
    fn split_range_large_transaction_balances_channels() {
        let map = InterleaveMap::new(8, 16).unwrap();
        let slices = map.split_range(0, 8 * 16 * 100);
        for s in &slices {
            assert_eq!(s.unwrap().1, 1600);
        }
    }

    #[test]
    fn empty_range_touches_nothing() {
        let map = InterleaveMap::new(4, 16).unwrap();
        assert!(map.split_range(123, 0).iter().all(Option::is_none));
    }

    #[test]
    fn closed_form_matches_granule_walk() {
        for m in [1u32, 2, 4, 8] {
            let map = InterleaveMap::new(m, 16).unwrap();
            for addr in [0u64, 3, 8, 15, 16, 17, 160, 4095] {
                for len in [1u64, 7, 16, 17, 40, 64, 256, 1000] {
                    // Reference: walk every granule and accumulate slices.
                    let mut expect: Vec<Option<(u64, u64)>> = vec![None; m as usize];
                    let first = addr / 16;
                    let last = (addr + len - 1) / 16;
                    for g in first..=last {
                        let lo = (g * 16).max(addr);
                        let hi = ((g + 1) * 16).min(addr + len);
                        let (ch, local) = map.split(lo);
                        match &mut expect[ch as usize] {
                            s @ None => *s = Some((local, hi - lo)),
                            Some((_, l)) => *l += hi - lo,
                        }
                    }
                    assert_eq!(
                        map.split_range(addr, len),
                        expect,
                        "m={m} addr={addr} len={len}"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(InterleaveMap::new(0, 16).is_err());
        assert!(InterleaveMap::new(4, 0).is_err());
        assert!(InterleaveMap::new(4, 24).is_err());
        // Non-power-of-two channel counts are legal (degraded re-interleave
        // over 3 survivors); only the granule needs hardware bit slicing.
        assert!(InterleaveMap::new(3, 16).is_ok());
    }

    #[test]
    fn non_power_of_two_channels_still_bijective() {
        for m in [3u32, 5, 6, 7] {
            let map = InterleaveMap::new(m, 16).unwrap();
            for addr in [0u64, 1, 15, 16, 47, 48, 160, 4096, (1 << 20) + 13] {
                let (ch, local) = map.split(addr);
                assert!(ch < m);
                assert_eq!(map.join(ch, local).unwrap(), addr, "m={m} addr={addr}");
            }
        }
    }

    #[test]
    fn join_rejects_bad_channel() {
        let map = InterleaveMap::new(4, 16).unwrap();
        assert!(map.join(4, 0).is_err());
    }

    #[test]
    fn display() {
        let map = InterleaveMap::new(4, 16).unwrap();
        assert_eq!(map.to_string(), "4 channels × 16 B granules");
    }
}
