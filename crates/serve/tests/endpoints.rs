//! End-to-end tests over a real socket: a [`Server`] bound to an ephemeral
//! port, driven by a hand-rolled HTTP client. These pin the service
//! contract the CLI smoke job and external clients rely on — most
//! importantly that a duplicate `POST /runs` is answered from the store
//! without the executor simulating anything.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcm_serve::{ServeConfig, Server};

/// One parsed HTTP response: status code and JSON body.
struct Reply {
    status: u16,
    body: serde::Value,
}

/// Sends one request and reads the full response (the server closes the
/// connection after answering, so read-to-end terminates).
fn call(addr: std::net::SocketAddr, method: &str, path: &str, body: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("server accepts connections");
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response is UTF-8");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {raw:?}"));
    let json_text = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    let body = if json_text.trim().is_empty() {
        serde::Value::Null
    } else {
        serde_json::from_str(json_text.trim())
            .unwrap_or_else(|e| panic!("response body is not JSON ({e:?}): {json_text}"))
    };
    Reply { status, body }
}

/// A running server on an ephemeral port with a throwaway store.
struct Harness {
    addr: std::net::SocketAddr,
    store_dir: std::path::PathBuf,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Harness {
    fn start(name: &str, max_jobs: usize) -> Harness {
        let store_dir =
            std::env::temp_dir().join(format!("mcm-serve-e2e-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_dir);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: store_dir.clone(),
            max_jobs,
            threads: Some(1),
        };
        let server = Arc::new(Server::bind(config).expect("ephemeral bind succeeds"));
        let addr = server.local_addr();
        let runner = Arc::clone(&server);
        let thread = std::thread::spawn(move || {
            runner.run().expect("server loop exits cleanly");
        });
        Harness {
            addr,
            store_dir,
            thread: Some(thread),
        }
    }

    fn call(&self, method: &str, path: &str, body: Option<&str>) -> Reply {
        call(self.addr, method, path, body)
    }

    /// Polls a job until it reaches a terminal state.
    fn wait_terminal(&self, job: u64) -> serde::Value {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let reply = self.call("GET", &format!("/jobs/{job}"), None);
            assert_eq!(reply.status, 200, "{:?}", reply.body);
            let status = reply
                .body
                .get("status")
                .and_then(|v| v.as_str())
                .unwrap_or_default()
                .to_string();
            if matches!(status.as_str(), "done" | "cancelled" | "failed") {
                return reply.body;
            }
            assert!(
                Instant::now() < deadline,
                "job {job} still `{status}` after 60s"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn simulated_points(&self) -> u64 {
        let health = self.call("GET", "/healthz", None);
        assert_eq!(health.status, 200);
        health
            .body
            .get("simulated_points")
            .and_then(|v| v.as_u64())
            .expect("healthz reports simulated_points")
    }

    fn shutdown(mut self) {
        let reply = self.call("POST", "/shutdown", None);
        assert_eq!(reply.status, 200);
        self.thread
            .take()
            .expect("server thread still running")
            .join()
            .expect("server thread exits without panicking");
        let _ = std::fs::remove_dir_all(&self.store_dir);
    }
}

/// A fast healthy run body: the paper headline coordinates, op-limited to
/// the repo's established quick-test budget.
const SMALL_RUN: &str =
    r#"{"format": "1080p30", "channels": 4, "clock_mhz": 400, "op_limit": 2000}"#;

#[test]
fn health_routing_and_refusals() {
    let h = Harness::start("routing", 1);

    let health = h.call("GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(
        health.body.get("status").and_then(|v| v.as_str()),
        Some("ok")
    );

    assert_eq!(h.call("GET", "/nope", None).status, 404);
    assert_eq!(h.call("PUT", "/runs", None).status, 405);
    assert_eq!(h.call("GET", "/jobs/zero", None).status, 400);
    assert_eq!(h.call("GET", "/jobs/999", None).status, 404);

    let bad = h.call("POST", "/runs", Some("{not json"));
    assert_eq!(bad.status, 400);
    assert!(bad.body.get("error").is_some());

    // Unknown run options are refusals, not silent defaults.
    let typo = h.call("POST", "/runs", Some(r#"{"run": {"verfy": true}}"#));
    assert_eq!(typo.status, 400);

    h.shutdown();
}

#[test]
fn infeasible_submissions_carry_a_witness() {
    let h = Harness::start("infeasible", 1);

    // UHD on one channel cannot meet the frame budget; the analyzer's
    // report rides along as the machine-readable witness.
    let reply = h.call(
        "POST",
        "/runs",
        Some(r#"{"format": "2160p30", "channels": 1, "clock_mhz": 400}"#),
    );
    assert_eq!(reply.status, 422, "{:?}", reply.body);
    let reason = reply
        .body
        .get("error")
        .and_then(|v| v.as_str())
        .expect("422 carries an error string");
    assert!(reason.starts_with("MCM4"), "{reason}");
    assert!(reply.body.get("witness").is_some());

    // Nothing was queued and nothing simulated.
    assert_eq!(h.simulated_points(), 0);
    h.shutdown();
}

#[test]
fn duplicate_run_is_answered_from_the_store() {
    let h = Harness::start("dedup", 1);

    // First submission: queued, simulated, completed.
    let first = h.call("POST", "/runs", Some(SMALL_RUN));
    assert_eq!(first.status, 202, "{:?}", first.body);
    assert_eq!(
        first.body.get("cached").and_then(|v| v.as_bool()),
        Some(false)
    );
    let job = first.body.get("job").and_then(|v| v.as_u64()).unwrap();

    let done = h.wait_terminal(job);
    assert_eq!(done.get("status").and_then(|v| v.as_str()), Some("done"));
    let result = done.get("result").expect("finished run carries a result");
    assert!(result.get("record").is_some(), "{result:?}");
    let simulated_once = h.simulated_points();
    assert_eq!(simulated_once, 1);

    // The acceptance pin: an identical submission returns the stored
    // result instantly — 200 (not 202), cached, and the executor's
    // simulation counter does not move.
    let second = h.call("POST", "/runs", Some(SMALL_RUN));
    assert_eq!(second.status, 200, "{:?}", second.body);
    assert_eq!(
        second.body.get("cached").and_then(|v| v.as_bool()),
        Some(true)
    );
    assert_eq!(
        second.body.get("status").and_then(|v| v.as_str()),
        Some("done")
    );
    assert!(second.body.get("result").is_some());
    assert_eq!(h.simulated_points(), simulated_once);

    // A *different* experiment is not a store hit.
    let other = h.call(
        "POST",
        "/runs",
        Some(r#"{"format": "1080p30", "channels": 2, "clock_mhz": 400, "op_limit": 2000}"#),
    );
    assert_eq!(other.status, 202, "{:?}", other.body);
    let other_job = other.body.get("job").and_then(|v| v.as_u64()).unwrap();
    h.wait_terminal(other_job);
    assert_eq!(h.simulated_points(), simulated_once + 1);

    // Both jobs are listed, results elided from the listing.
    let listing = h.call("GET", "/jobs", None);
    assert_eq!(listing.status, 200);
    let jobs = match listing.body.get("jobs") {
        Some(serde::Value::Array(a)) => a.clone(),
        other => panic!("expected jobs array, got {other:?}"),
    };
    assert!(jobs.len() >= 3, "store-hit job is listed too: {jobs:?}");
    for j in &jobs {
        assert!(j.get("result").is_none(), "listing elides results: {j:?}");
    }

    h.shutdown();
}

#[test]
fn cancelling_a_sweep_leaves_the_store_consistent() {
    // One executor slot: the first sweep occupies it, so the second is
    // deterministically still queued when the cancel lands.
    let h = Harness::start("cancel", 1);

    let occupant = h.call(
        "POST",
        "/sweeps",
        Some(r#"{"spec": {"channels": [4], "op_limit": 2000}}"#),
    );
    assert_eq!(occupant.status, 202, "{:?}", occupant.body);
    let occupant_job = occupant.body.get("job").and_then(|v| v.as_u64()).unwrap();

    let victim = h.call(
        "POST",
        "/sweeps",
        Some(r#"{"spec": {"channels": [1, 2, 4, 8], "op_limit": 2000}}"#),
    );
    assert_eq!(victim.status, 202, "{:?}", victim.body);
    assert_eq!(victim.body.get("total").and_then(|v| v.as_u64()), Some(4));
    let victim_job = victim.body.get("job").and_then(|v| v.as_u64()).unwrap();

    let cancel = h.call("DELETE", &format!("/jobs/{victim_job}"), None);
    assert_eq!(cancel.status, 200, "{:?}", cancel.body);
    let doc = h.wait_terminal(victim_job);
    let status = doc.get("status").and_then(|v| v.as_str()).unwrap();
    // The sweep may have slipped into the freed slot before the cancel
    // landed; either way it must reach a clean terminal state.
    assert!(
        matches!(status, "cancelled" | "done"),
        "unexpected terminal state {status}"
    );

    // Cancelling a finished job reports `cancelled: false`, not an error.
    h.wait_terminal(occupant_job);
    let late = h.call("DELETE", &format!("/jobs/{occupant_job}"), None);
    assert_eq!(late.status, 200);
    assert_eq!(
        late.body.get("cancelled").and_then(|v| v.as_bool()),
        Some(false)
    );

    // The store survived: health is clean and the cancelled spec can be
    // resubmitted and run to completion.
    let retry = h.call(
        "POST",
        "/sweeps",
        Some(r#"{"spec": {"channels": [1, 2, 4, 8], "op_limit": 2000}}"#),
    );
    assert_eq!(retry.status, 202, "{:?}", retry.body);
    let retry_job = retry.body.get("job").and_then(|v| v.as_u64()).unwrap();
    let done = h.wait_terminal(retry_job);
    assert_eq!(done.get("status").and_then(|v| v.as_str()), Some("done"));
    let result = done.get("result").expect("finished sweep carries a result");
    assert!(result.get("stats").is_some(), "{result:?}");

    h.shutdown();
}
