//! [`ServeExecutor`] over real sockets (ISSUE 10 satellite): ephemeral
//! `mcm serve` workers on `127.0.0.1:0`, driven through the same
//! [`run_sweep_on`] entry point every local sweep uses. Three contracts
//! are pinned:
//!
//! 1. **Parity** — a sweep through remote workers exports byte-identically
//!    to the same sweep on a [`RayonExecutor`], fault axis included.
//! 2. **Dedup** — resubmitting the same sweep is answered from the
//!    workers' shared store (`simulated_points` does not move), and a
//!    client-side checkpoint log turns a third run into pure `resumed`
//!    provenance without touching the wire for those points.
//! 3. **Failover** — shutting a worker down mid-sweep re-queues its
//!    points onto a survivor sharing the store, and the sweep still
//!    finishes byte-identical to a local run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mcm_core::ExecutionPolicy;
use mcm_load::HdOperatingPoint;
use mcm_serve::{ServeConfig, ServeExecutor, Server};
use mcm_sweep::{run_sweep_on, CheckpointLog, RayonExecutor, SweepOptions, SweepSpec};

/// One worker: a [`Server`] on an ephemeral port, its accept loop on a
/// background thread.
struct Worker {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

fn spawn_worker(store_dir: &Path) -> Worker {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: store_dir.to_path_buf(),
        max_jobs: 2,
        threads: Some(1),
    };
    let server = Arc::new(Server::bind(config).expect("ephemeral bind succeeds"));
    let addr = server.local_addr();
    let thread = std::thread::spawn(move || {
        server.run().expect("server loop exits cleanly");
    });
    Worker {
        addr,
        thread: Some(thread),
    }
}

impl Worker {
    fn addr_string(&self) -> String {
        self.addr.to_string()
    }

    /// `GET /healthz` → `simulated_points`: how many points this worker's
    /// executor actually simulated (the dedup counter).
    fn simulated_points(&self) -> u64 {
        let raw = raw_call(self.addr, "GET /healthz HTTP/1.1\r\n\r\n");
        let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        let doc: serde::Value = serde_json::from_str(body.trim()).expect("healthz is JSON");
        doc.get("simulated_points")
            .and_then(|v| v.as_u64())
            .expect("healthz reports simulated_points")
    }

    /// `POST /shutdown` and join the accept loop: from here on the worker
    /// refuses connections, exactly like a crashed process.
    fn stop(mut self) {
        let raw = raw_call(
            self.addr,
            "POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        self.thread
            .take()
            .expect("worker thread still running")
            .join()
            .expect("worker thread exits without panicking");
    }
}

fn raw_call(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("worker accepts connections");
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response is UTF-8");
    raw
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcm-serve-exec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The parity grid: two formats × two channel counts × a fault axis —
/// four healthy and four degraded points, all op-limited for test speed.
/// (The fault plan must fit every cell: losing a channel of one leaves
/// nothing to record with, and such points fail with a *typed* local
/// error whose rendering necessarily differs from its wire round-trip.)
fn spec() -> SweepSpec {
    SweepSpec {
        points: vec![HdOperatingPoint::Hd720p30, HdOperatingPoint::Hd1080p30],
        channels: vec![2, 4],
        faults: vec![None, Some(mcm_fault::FaultPlan::channel_loss(5, 0))],
        op_limit: Some(2_000),
        ..SweepSpec::default()
    }
}

#[test]
fn remote_sweeps_export_byte_identically_to_local_ones() {
    let store = tmp_dir("parity");
    let worker = spawn_worker(&store);
    let remote_exec =
        ServeExecutor::connect(&[worker.addr_string()]).expect("healthy worker connects");

    let local = run_sweep_on(&RayonExecutor::default(), &spec(), &SweepOptions::default()).unwrap();
    let remote = run_sweep_on(&remote_exec, &spec(), &SweepOptions::default()).unwrap();

    // Same provenance (every point freshly simulated, worker-side)...
    assert_eq!(remote.stats.total, local.stats.total);
    assert_eq!(remote.stats.simulated, local.stats.simulated);
    assert_eq!(remote.stats.failed, 0);
    // ...and the exports are the same bytes, fault axis included.
    assert_eq!(remote.to_json(), local.to_json());
    assert_eq!(remote.to_csv(), local.to_csv());

    worker.stop();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn duplicate_submissions_hit_the_shared_store_and_checkpoints_resume_locally() {
    let store = tmp_dir("dedup");
    let worker = spawn_worker(&store);
    let exec = ServeExecutor::connect(&[worker.addr_string()]).expect("healthy worker connects");

    let first = run_sweep_on(&exec, &spec(), &SweepOptions::default()).unwrap();
    let total = first.stats.total;
    assert_eq!(first.stats.simulated, total);
    let baseline = worker.simulated_points();
    assert_eq!(baseline as usize, total);

    // Same sweep again: answered from the worker's store — the simulation
    // counter must not move, and the client sees cache provenance.
    let second = run_sweep_on(&exec, &spec(), &SweepOptions::default()).unwrap();
    assert_eq!(second.stats.cached, total);
    assert_eq!(worker.simulated_points(), baseline);
    assert_eq!(second.to_json(), first.to_json());

    // With a checkpoint log the client records completed points...
    let log_path =
        std::env::temp_dir().join(format!("mcm-serve-exec-log-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let policy = ExecutionPolicy::default();
    let log = CheckpointLog::attach(&log_path, &spec(), &policy, false).unwrap();
    let third = run_sweep_on(
        &exec,
        &spec(),
        &SweepOptions::default().with_checkpoint(log.clone()),
    )
    .unwrap();
    assert_eq!(third.stats.cached, total);
    assert_eq!(log.len(), total, "store hits are checkpointed too");

    // ...and answers them itself on the next run: pure `resumed`
    // provenance, nothing on the wire, counter still parked.
    let fourth = run_sweep_on(
        &exec,
        &spec(),
        &SweepOptions::default().with_checkpoint(log),
    )
    .unwrap();
    assert_eq!(fourth.stats.resumed, total);
    assert_eq!(fourth.stats.simulated + fourth.stats.cached, 0);
    assert_eq!(worker.simulated_points(), baseline);
    assert_eq!(fourth.to_json(), first.to_json());

    worker.stop();
    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn a_dead_workers_points_requeue_onto_a_survivor() {
    let store = tmp_dir("failover");
    let survivor = spawn_worker(&store);
    let casualty = spawn_worker(&store);
    let exec = Arc::new(
        ServeExecutor::connect(&[survivor.addr_string(), casualty.addr_string()])
            .expect("both workers connect"),
    );

    // Long enough per point that the kill lands mid-sweep; the test stays
    // correct either way (a finished batch on a dead worker re-queues too,
    // and the shared store answers it without re-simulating).
    let heavy = SweepSpec {
        points: vec![HdOperatingPoint::Hd720p30],
        channels: vec![1, 2, 4, 8],
        clocks_mhz: vec![200, 400],
        op_limit: Some(30_000),
        ..SweepSpec::default()
    };

    let sweep_exec = Arc::clone(&exec);
    let heavy_spec = heavy.clone();
    let sweep = std::thread::spawn(move || {
        run_sweep_on(&*sweep_exec, &heavy_spec, &SweepOptions::default())
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    casualty.stop();

    let remote = sweep.join().expect("sweep thread survives").unwrap();
    assert_eq!(remote.stats.total, 8);
    assert_eq!(
        remote.stats.failed, 0,
        "no point may be lost to the dead worker"
    );
    for p in &remote.points {
        assert!(p.outcome.is_ok(), "{}: {:?}", p.label, p.outcome);
    }

    // Byte-identity with an uninterrupted local run of the same grid.
    let local = run_sweep_on(&RayonExecutor::default(), &heavy, &SweepOptions::default()).unwrap();
    assert_eq!(remote.to_json(), local.to_json());
    assert_eq!(remote.to_csv(), local.to_csv());

    survivor.stop();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn connecting_to_a_dead_address_is_a_typed_remote_error() {
    // Bind-then-drop guarantees a port nobody is listening on.
    let port = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().port()
    };
    let err = ServeExecutor::connect(&[format!("127.0.0.1:{port}")]).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("remote worker"), "{text}");
    assert!(text.contains(&port.to_string()), "{text}");

    let err = ServeExecutor::connect(&[]).unwrap_err();
    assert!(err.to_string().contains("no worker addresses"), "{}", err);
}
