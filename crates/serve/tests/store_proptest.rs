//! Property tests for the result store: any constructible [`PointRecord`]
//! must survive a put/get round trip byte-faithfully, and the on-disk
//! index must reload exactly what was appended. The store is the service's
//! long-term memory — a lossy round trip would silently corrupt the
//! dedup guarantee (`POST /runs` answering from a record that differs
//! from what was simulated).

use mcm_serve::ResultStore;
use mcm_sweep::PointRecord;
use proptest::prelude::*;

/// A fresh throwaway store directory per test case.
fn temp_store(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcm-serve-proptest-{tag:016x}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Any record the simulator could plausibly distill: feasible records
/// carry metrics, infeasible ones carry a reason, and the byte counters
/// cover the op-limited (`simulated < planned`) case.
fn arb_record() -> impl Strategy<Value = PointRecord> {
    (
        any::<bool>(),
        (0.0f64..1000.0, 0.0f64..1000.0, 0.0f64..5000.0),
        (
            0.0f64..5000.0,
            0.0f64..1.0,
            0.0f64..500.0,
            0.0f64..100_000.0,
        ),
        (0u64..u64::MAX / 2, 0u64..u64::MAX / 2, 0.01f64..100.0),
        any::<u64>(),
        0usize..3,
    )
        .prop_map(
            |(
                feasible,
                (access, budget, core),
                (interface, eff, energy, p99),
                (planned, simulated, peak),
                reason_seed,
                verdict_idx,
            )| {
                let verdict = ["meets", "marginal", "fails"][verdict_idx];
                let reason = format!("frame exceeds capacity by {reason_seed} bytes");
                if feasible {
                    PointRecord {
                        feasible: true,
                        infeasible_reason: None,
                        access_ms: Some(access),
                        budget_ms: Some(budget),
                        verdict: Some(verdict.to_string()),
                        core_mw: Some(core),
                        interface_mw: Some(interface),
                        efficiency: Some(eff),
                        energy_per_bit_pj: Some(energy),
                        latency_p99_ns: Some(p99),
                        planned_bytes: planned,
                        simulated_bytes: simulated.min(planned),
                        peak_gbytes_per_s: peak,
                    }
                } else {
                    PointRecord {
                        feasible: false,
                        infeasible_reason: Some(reason),
                        access_ms: None,
                        budget_ms: None,
                        verdict: None,
                        core_mw: None,
                        interface_mw: None,
                        efficiency: None,
                        energy_per_bit_pj: None,
                        latency_p99_ns: None,
                        planned_bytes: planned,
                        simulated_bytes: 0,
                        peak_gbytes_per_s: peak,
                    }
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// put → get returns the identical record, both through the live
    /// store instance and through a freshly reopened one (disk truth).
    #[test]
    fn records_round_trip_through_the_store(record in arb_record(), key in any::<u64>()) {
        let dir = temp_store(key ^ 0x51_04E);
        {
            let store = ResultStore::open(&dir).expect("store opens");
            store.put(key, &record).expect("put succeeds");
            let live = store.get(key);
            prop_assert_eq!(live.as_ref(), Some(&record));
            prop_assert_eq!(store.get(key.wrapping_add(1)), None);
        }
        let reopened = ResultStore::open(&dir).expect("store reopens");
        let from_disk = reopened.get(key);
        prop_assert_eq!(from_disk.as_ref(), Some(&record));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The index survives reopen: every appended entry is there exactly
    /// once, duplicates collapse, and entry count matches.
    #[test]
    fn index_reloads_what_was_appended(keys in prop::collection::vec(any::<u64>(), 1..20)) {
        let dir = temp_store(keys.iter().fold(0x1DE_u64, |a, k| a.wrapping_mul(31).wrapping_add(*k)));
        let unique: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        {
            let store = ResultStore::open(&dir).expect("store opens");
            for (i, key) in keys.iter().enumerate() {
                store.index(*key, &format!("point-{i}"), "run");
                // A second append of the same key must not duplicate.
                store.index(*key, &format!("point-{i}-again"), "run");
            }
            prop_assert_eq!(store.indexed().len(), unique.len());
        }
        let reopened = ResultStore::open(&dir).expect("store reopens");
        let entries = reopened.indexed();
        prop_assert_eq!(entries.len(), unique.len());
        let reloaded: std::collections::BTreeSet<u64> =
            entries.iter().map(|e| e.key).collect();
        prop_assert_eq!(reloaded, unique);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
