//! The server's job table: public job ids over [`Executor`] handles.
//!
//! A job is either *live* (backed by an executor job, finalized lazily the
//! first time a status request sees it finish) or *instant* (a `POST
//! /runs` answered straight from the store — no executor involvement at
//! all, which is the dedup guarantee the integration tests pin). Finished
//! jobs are persisted through the [`ResultStore`] so their documents
//! survive a server restart.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mcm_sweep::{Executor, RayonExecutor, SweepError, SweepOptions, WorkItem, WorkOutcome};

use crate::store::ResultStore;

/// What a job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One experiment (`POST /runs`).
    Run,
    /// An expanded grid (`POST /sweeps`).
    Sweep,
    /// Raw work items expanded client-side (`POST /batch`) — the wire form
    /// a [`ServeExecutor`](crate::ServeExecutor) submits, typically one
    /// shard of a larger sweep.
    Batch,
}

impl JobKind {
    fn as_str(self) -> &'static str {
        match self {
            JobKind::Run => "run",
            JobKind::Sweep => "sweep",
            JobKind::Batch => "batch",
        }
    }
}

#[derive(Debug)]
struct Job {
    kind: JobKind,
    label: String,
    /// The executor handle; `None` for instant store-hit jobs.
    exec_job: Option<mcm_sweep::JobId>,
    total: usize,
    /// The finished status document, once finalized or instant.
    result: Option<serde::Value>,
}

/// Public job ids mapped to executor jobs, plus lazy finalization.
#[derive(Debug)]
pub struct JobTable {
    executor: RayonExecutor,
    store: Arc<ResultStore>,
    jobs: Mutex<BTreeMap<u64, Job>>,
    next_id: AtomicU64,
}

impl JobTable {
    /// A table issuing ids above everything persisted in `store`, driving
    /// `executor`.
    pub fn new(executor: RayonExecutor, store: Arc<ResultStore>) -> Self {
        JobTable {
            next_id: AtomicU64::new(store.last_job_id() + 1),
            executor,
            store,
            jobs: Mutex::new(BTreeMap::new()),
        }
    }

    /// The executor behind the table (health metrics).
    pub fn executor(&self) -> &RayonExecutor {
        &self.executor
    }

    /// Jobs known in memory.
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("job table lock poisoned").len()
    }

    /// Whether no jobs are known in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn allocate(&self, job: Job) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.jobs
            .lock()
            .expect("job table lock poisoned")
            .insert(id, job);
        id
    }

    /// Registers an instant job: the store already held the record, no
    /// executor job exists, the document is final immediately.
    pub fn instant_run(&self, label: &str, key: u64, record: &mcm_sweep::PointRecord) -> u64 {
        self.store.index(key, label, JobKind::Run.as_str());
        let point = serde_json::json!({
            "label": label,
            "cached": true,
            "prelinted": false,
            "resumed": false,
            "key": format!("{key:016x}"),
            "record": record,
            "error": serde::Value::Null,
            "obs": serde::Value::Null
        });
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let doc = serde_json::json!({
            "job": id,
            "kind": "run",
            "label": label,
            "status": "done",
            "done": 1,
            "total": 1,
            "result": point
        });
        self.store.put_job(id, &doc);
        self.jobs.lock().expect("job table lock poisoned").insert(
            id,
            Job {
                kind: JobKind::Run,
                label: label.to_string(),
                exec_job: None,
                total: 1,
                result: Some(doc),
            },
        );
        id
    }

    /// Submits a live job to the executor and registers it.
    pub fn submit(
        &self,
        kind: JobKind,
        label: &str,
        items: Vec<WorkItem>,
        options: SweepOptions,
    ) -> Result<u64, SweepError> {
        let total = items.len();
        let exec_job = self.executor.submit(items, options)?;
        Ok(self.allocate(Job {
            kind,
            label: label.to_string(),
            exec_job: Some(exec_job),
            total,
            result: None,
        }))
    }

    /// The status document for one job: live jobs report progress, jobs
    /// the executor has finished are finalized (outcomes collected, store
    /// indexed, document persisted) on first sight, and ids predating this
    /// process fall back to the store's persisted documents.
    pub fn status(&self, id: u64) -> Option<serde::Value> {
        let mut jobs = self.jobs.lock().expect("job table lock poisoned");
        let Some(job) = jobs.get_mut(&id) else {
            drop(jobs);
            return self.store.get_job(id);
        };
        if let Some(doc) = &job.result {
            return Some(doc.clone());
        }
        let exec_job = job.exec_job.expect("live jobs have an executor handle");
        let snapshot = self.executor.poll(exec_job)?;
        if !snapshot.state.is_terminal() {
            return Some(serde_json::json!({
                "job": id,
                "kind": job.kind.as_str(),
                "label": job.label,
                "status": snapshot.state.as_str(),
                "done": snapshot.done,
                "total": snapshot.total
            }));
        }
        // Terminal: collect never blocks now. Finalize under the table
        // lock so concurrent status requests build the document once.
        let outcomes = self.executor.collect(exec_job).ok()?;
        let doc = self.finalize(id, job, snapshot.state.as_str(), &outcomes);
        job.result = Some(doc.clone());
        Some(doc)
    }

    /// Builds and persists the final document of a collected job.
    fn finalize(
        &self,
        id: u64,
        job: &Job,
        exec_state: &str,
        outcomes: &[WorkOutcome],
    ) -> serde::Value {
        for o in outcomes {
            if let (Some(key), Ok(_)) = (o.key, &o.outcome) {
                if !o.cached {
                    self.store.index(key, &o.label, job.kind.as_str());
                }
            }
        }
        let points: Vec<serde::Value> = outcomes.iter().map(outcome_json).collect();
        let status = match job.kind {
            // A run is as good as its one outcome.
            JobKind::Run => match outcomes.first() {
                Some(o) if o.outcome.is_ok() => "done",
                Some(o) if matches!(o.outcome, Err(SweepError::Cancelled { .. })) => "cancelled",
                _ => "failed",
            },
            JobKind::Sweep | JobKind::Batch => exec_state,
        };
        let result = match job.kind {
            JobKind::Run => points.into_iter().next().unwrap_or(serde::Value::Null),
            JobKind::Sweep | JobKind::Batch => serde_json::json!({
                "points": points,
                "stats": fold_stats(outcomes)
            }),
        };
        let doc = serde_json::json!({
            "job": id,
            "kind": job.kind.as_str(),
            "label": job.label,
            "status": status,
            "done": outcomes.len(),
            "total": job.total,
            "result": result
        });
        self.store.put_job(id, &doc);
        doc
    }

    /// Requests cancellation. `None` for unknown ids; `Some(false)` when
    /// the job had already finished.
    pub fn cancel(&self, id: u64) -> Option<bool> {
        let jobs = self.jobs.lock().expect("job table lock poisoned");
        let job = jobs.get(&id)?;
        match (job.result.is_some(), job.exec_job) {
            (false, Some(exec_job)) => Some(self.executor.cancel(exec_job)),
            _ => Some(false),
        }
    }

    /// One summary line per known job, oldest first (no result payloads).
    pub fn list(&self) -> Vec<serde::Value> {
        let ids: Vec<u64> = {
            let jobs = self.jobs.lock().expect("job table lock poisoned");
            jobs.keys().copied().collect()
        };
        ids.into_iter()
            .filter_map(|id| {
                let mut doc = self.status(id)?;
                // Summaries drop the (possibly large) result body.
                if let serde::Value::Object(m) = &mut doc {
                    m.remove("result");
                }
                Some(doc)
            })
            .collect()
    }
}

/// One outcome as its wire document.
fn outcome_json(o: &WorkOutcome) -> serde::Value {
    serde_json::json!({
        "label": o.label,
        "cached": o.cached,
        "prelinted": o.prelinted,
        "resumed": o.resumed,
        "key": o.key.map(|k| format!("{k:016x}")),
        "record": o.outcome.as_ref().ok(),
        "error": o.outcome.as_ref().err().map(|e| e.to_string()),
        "obs": o.obs,
        "elapsed_ms": o.elapsed.as_secs_f64() * 1e3
    })
}

/// Aggregate counters over a finished job, mirroring the sweep engine's
/// [`SweepStats`](mcm_sweep::SweepStats) accounting plus a cancelled
/// bucket.
fn fold_stats(outcomes: &[WorkOutcome]) -> serde::Value {
    let mut simulated = 0usize;
    let mut cached = 0usize;
    let mut prelinted = 0usize;
    let mut infeasible = 0usize;
    let mut failed = 0usize;
    let mut cancelled = 0usize;
    for o in outcomes {
        match &o.outcome {
            Ok(record) => {
                if o.prelinted {
                    prelinted += 1;
                } else if o.cached {
                    cached += 1;
                } else {
                    simulated += 1;
                }
                if !record.feasible {
                    infeasible += 1;
                }
            }
            Err(SweepError::Cancelled { .. }) => cancelled += 1,
            Err(_) => failed += 1,
        }
    }
    serde_json::json!({
        "total": outcomes.len(),
        "simulated": simulated,
        "cached": cached,
        "prelinted": prelinted,
        "infeasible": infeasible,
        "failed": failed,
        "cancelled": cancelled
    })
}
