//! A deliberately minimal HTTP/1.1 layer over `std::net`.
//!
//! The service speaks a small, fixed dialect — JSON request bodies, JSON
//! responses, `Connection: close` — so a full framework would buy nothing
//! but dependencies. This module follows the vendored-rayon precedent:
//! implement exactly the subset the callers need, and keep the contract
//! (request line + headers + `Content-Length` body; one response per
//! connection) explicit.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Parsed request line and body of one HTTP/1.1 exchange.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request path without query string (`/jobs/7`).
    pub path: String,
    /// Raw request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The request body parsed as JSON, or a human-readable refusal.
    pub fn json(&self) -> Result<serde::Value, String> {
        if self.body.is_empty() {
            return Ok(serde::Value::Null);
        }
        let text = std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())?;
        serde_json::from_str(text).map_err(|e| format!("body is not JSON: {e:?}"))
    }
}

/// Header section cap: a request line plus a handful of headers. Anything
/// larger is not a client of this API.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Body cap. The largest legitimate body is a full sweep spec with fault
/// plans — kilobytes, not megabytes.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Reads one request off the stream. Returns a human-readable refusal for
/// malformed or oversized requests (the caller answers 400).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| "request line has no target".to_string())?;
    // Query strings are accepted and ignored: the API is path-shaped.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("reading headers: {e}"))?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err("header section too large".to_string());
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length `{}`", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading {content_length}-byte body: {e}"))?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one JSON response and flushes. Errors are swallowed: the peer
/// hanging up mid-response is its problem, not the server's.
pub fn respond(stream: &mut TcpStream, status: u16, body: &serde::Value) {
    let mut json = serde_json::to_string_pretty(body).expect("a value tree always serializes");
    json.push('\n');
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        json.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(json.as_bytes());
    let _ = stream.flush();
}

/// The uniform error body: `{"error": "..."}` plus optional extra fields.
pub fn error_body(message: impl Into<String>) -> serde::Value {
    serde_json::json!({ "error": message.into() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &str) -> Result<Request, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.flush().unwrap();
            // Half-close so a read_request waiting for more body bytes
            // sees EOF instead of blocking forever.
            s.shutdown(std::net::Shutdown::Write).unwrap();
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        let request = read_request(&mut stream);
        let _ = writer.join().unwrap();
        request
    }

    #[test]
    fn parses_method_path_and_body() {
        let r =
            roundtrip("POST /runs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/runs");
        assert_eq!(r.json().unwrap().get("a").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn get_without_body_is_null_json() {
        let r = roundtrip("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert!(matches!(r.json().unwrap(), serde::Value::Null));
    }

    #[test]
    fn bad_content_length_is_refused() {
        let e = roundtrip("POST /runs HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert!(e.contains("Content-Length"), "{e}");
    }

    #[test]
    fn truncated_body_is_refused() {
        let e = roundtrip("POST /runs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{}").unwrap_err();
        assert!(e.contains("50-byte body"), "{e}");
    }
}
