//! [`ServeExecutor`] — the [`Executor`] seam spoken over the wire.
//!
//! A sweep does not care where its points simulate: [`run_sweep_on`]
//! (mcm_sweep) drives any [`Executor`], and this one forwards work items
//! to one or more `mcm serve` workers over the existing HTTP/JSON
//! protocol (`POST /batch`, `GET /jobs/:id`, `DELETE /jobs/:id`). The
//! executor round-robins items across workers, retries transient
//! connection failures with backoff, and re-queues the points of a worker
//! that dies mid-job onto a surviving one — the workers' shared result
//! store dedups whatever the dead worker had already finished.
//!
//! Division of labour with the server:
//!
//! * **Checkpoint logs stay client-side.** Before anything goes on the
//!   wire, the submitting process answers resumed points from its own
//!   [`CheckpointLog`](mcm_sweep::CheckpointLog) and appends completed
//!   ones on collect; workers never see the log.
//! * **The result cache lives server-side.** Each worker executes batches
//!   with its store as the cache directory, so duplicate submissions are
//!   answered from the store without re-simulating —
//!   [`SweepOptions::cache_dir`] is ignored here and documented as such.
//! * **Provenance crosses the wire intact.** `cached` / `prelinted` /
//!   `resumed` flags, content keys, records, error strings and obs
//!   summaries are parsed back out of the job document, so
//!   [`run_sweep_on`] folds remote outcomes exactly like local ones.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use mcm_sweep::{
    content_key, Executor, JobId, JobSnapshot, JobState, PointRecord, SweepError, SweepOptions,
    WorkItem, WorkOutcome,
};
use serde::{Deserialize, Serialize};

/// Per-request socket timeout, mirroring the server's.
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Backoff schedule between retries of one request: a transient failure
/// gets three more chances before the worker is declared dead.
const RETRY_BACKOFF_MS: [u64; 3] = [50, 100, 200];

/// One remote batch: the slice of a job that went to one worker.
#[derive(Debug)]
struct Batch {
    /// Index into [`ServeExecutor::workers`].
    worker: usize,
    /// The worker's public job id for this batch.
    remote_job: u64,
    /// Submission-order indices of the items in this batch.
    indices: Vec<usize>,
    /// The items themselves, kept for re-queueing if the worker dies.
    items: Vec<WorkItem>,
}

/// A submitted job: remote batches plus the points answered locally from
/// the checkpoint log.
#[derive(Debug)]
struct BatchJob {
    batches: Vec<Batch>,
    local: Vec<(usize, WorkOutcome)>,
    options: SweepOptions,
    total: usize,
}

/// An [`Executor`] that runs its items on remote `mcm serve` workers.
///
/// Constructed with [`ServeExecutor::connect`] against one or more worker
/// addresses; selected from the CLI as `mcm sweep --executor
/// serve:<addr>[,<addr>...]`. Items are distributed round-robin, each
/// worker executes its batch with the full engine pipeline (prelint,
/// store lookup, panic-isolated simulation, store write-back), and
/// [`Executor::collect`] reassembles the outcomes in submission order.
///
/// Failure model: every request retries with backoff
/// (50/100/200 ms); a worker that stays unreachable is marked dead and
/// its unfinished points are resubmitted to a survivor. Only when no
/// worker is left do the affected items resolve to
/// [`SweepError::Remote`].
#[derive(Debug)]
pub struct ServeExecutor {
    workers: Vec<String>,
    /// Liveness flags, one per worker; flipped off permanently when a
    /// worker exhausts its retries.
    alive: Mutex<Vec<bool>>,
    jobs: Mutex<BTreeMap<JobId, BatchJob>>,
    next_id: AtomicU64,
}

impl ServeExecutor {
    /// Connects to `addrs` (each `host:port`), health-checking every
    /// worker up front. Fails fast — with the unreachable worker named —
    /// rather than discovering a dead address mid-sweep.
    pub fn connect(addrs: &[String]) -> Result<Self, SweepError> {
        if addrs.is_empty() {
            return Err(SweepError::Remote {
                context: "connect".to_string(),
                message: "no worker addresses given".to_string(),
            });
        }
        for addr in addrs {
            let (status, _) =
                request_with_retry(addr, "GET", "/healthz", None).map_err(|message| {
                    SweepError::Remote {
                        context: format!("health check on {addr}"),
                        message,
                    }
                })?;
            if status != 200 {
                return Err(SweepError::Remote {
                    context: format!("health check on {addr}"),
                    message: format!("worker answered HTTP {status}"),
                });
            }
        }
        Ok(ServeExecutor {
            alive: Mutex::new(vec![true; addrs.len()]),
            workers: addrs.to_vec(),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
        })
    }

    /// The worker addresses this executor drives.
    pub fn workers(&self) -> &[String] {
        &self.workers
    }

    fn is_alive(&self, worker: usize) -> bool {
        self.alive.lock().expect("executor lock poisoned")[worker]
    }

    fn mark_dead(&self, worker: usize) {
        self.alive.lock().expect("executor lock poisoned")[worker] = false;
    }

    /// Submits one batch, preferring `preferred` but falling over to any
    /// other live worker; exhausting them all is a [`SweepError::Remote`].
    fn submit_batch(
        &self,
        preferred: usize,
        indices: Vec<usize>,
        items: Vec<WorkItem>,
        options: &SweepOptions,
    ) -> Result<Batch, SweepError> {
        let body = batch_body(&items, options);
        let n = self.workers.len();
        for offset in 0..n {
            let worker = (preferred + offset) % n;
            if !self.is_alive(worker) {
                continue;
            }
            let addr = &self.workers[worker];
            match request_with_retry(addr, "POST", "/batch", Some(&body)) {
                Ok((202, doc)) => {
                    let remote_job = doc.get("job").and_then(|v| v.as_u64()).ok_or_else(|| {
                        SweepError::Remote {
                            context: format!("submit to {addr}"),
                            message: "batch accepted without a job id".to_string(),
                        }
                    })?;
                    return Ok(Batch {
                        worker,
                        remote_job,
                        indices,
                        items,
                    });
                }
                // A refusal is a protocol-level error (bad items, bad
                // options) every worker would repeat: surface it.
                Ok((status, doc)) => {
                    return Err(SweepError::Remote {
                        context: format!("submit to {addr}"),
                        message: format!("HTTP {status}: {}", error_message(&doc)),
                    });
                }
                Err(_) => self.mark_dead(worker),
            }
        }
        Err(SweepError::Remote {
            context: "submit".to_string(),
            message: format!("no live worker left among {n}"),
        })
    }

    /// One remote status probe: `(status-string, done)` or the connection
    /// failure that makes the worker suspect.
    fn probe(&self, batch: &Batch) -> Result<(String, usize), String> {
        let addr = &self.workers[batch.worker];
        let path = format!("/jobs/{}", batch.remote_job);
        match request_with_retry(addr, "GET", &path, None)? {
            (200, doc) => Ok((
                doc.get("status")
                    .and_then(|v| v.as_str())
                    .unwrap_or("running")
                    .to_string(),
                doc.get("done").and_then(|v| v.as_u64()).unwrap_or(0) as usize,
            )),
            (status, doc) => Err(format!("HTTP {status}: {}", error_message(&doc))),
        }
    }

    /// Polls one batch to a terminal state and parses its outcomes; a
    /// connection failure (worker died) comes back as `Err` so the caller
    /// can re-queue the items.
    fn collect_batch(&self, batch: &Batch) -> Result<Vec<WorkOutcome>, String> {
        let addr = &self.workers[batch.worker];
        let path = format!("/jobs/{}", batch.remote_job);
        let mut wait_ms = 5u64;
        loop {
            let (status, doc) = request_with_retry(addr, "GET", &path, None)?;
            if status != 200 {
                return Err(format!("HTTP {status}: {}", error_message(&doc)));
            }
            let state = doc.get("status").and_then(|v| v.as_str()).unwrap_or("");
            if matches!(state, "done" | "cancelled" | "failed") {
                let points = doc
                    .get("result")
                    .and_then(|r| r.get("points"))
                    .and_then(|p| p.as_array())
                    .ok_or_else(|| format!("terminal job {} has no points", batch.remote_job))?;
                if points.len() != batch.items.len() {
                    return Err(format!(
                        "job {} returned {} outcomes for {} items",
                        batch.remote_job,
                        points.len(),
                        batch.items.len()
                    ));
                }
                return Ok(points.iter().map(parse_outcome).collect());
            }
            std::thread::sleep(Duration::from_millis(wait_ms));
            wait_ms = (wait_ms * 2).min(200);
        }
    }
}

impl Executor for ServeExecutor {
    fn submit(&self, items: Vec<WorkItem>, options: SweepOptions) -> Result<JobId, SweepError> {
        if options.run.frames != 1 {
            return Err(SweepError::BadOptions {
                reason: format!(
                    "sweeps are single-frame (got frames = {}); use run_steady_state for sessions",
                    options.run.frames
                ),
            });
        }
        let total = items.len();
        // The checkpoint log answers before anything goes on the wire —
        // the same "log outranks everything" rule the local executor
        // applies, moved to the submitting side.
        let mut local = Vec::new();
        let mut remote: Vec<(usize, WorkItem)> = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            let hit = options.checkpoint.as_ref().and_then(|log| {
                let point_run = match &item.faults {
                    Some(plan) => options.run.clone().with_faults(plan.clone()),
                    None => options.run.clone(),
                };
                let key = content_key(&item.experiment, &point_run).ok()?;
                Some((key, log.lookup(key)?))
            });
            match hit {
                Some((key, record)) => local.push((
                    i,
                    WorkOutcome {
                        label: item.label,
                        outcome: Ok(record),
                        cached: false,
                        prelinted: false,
                        key: Some(key),
                        resumed: true,
                        elapsed: Duration::ZERO,
                        obs: None,
                    },
                )),
                None => remote.push((i, item)),
            }
        }

        // Round-robin the remaining items across workers and submit one
        // batch per worker that got any.
        let n = self.workers.len();
        let mut buckets: Vec<(Vec<usize>, Vec<WorkItem>)> =
            (0..n).map(|_| Default::default()).collect();
        for (slot, (i, item)) in remote.into_iter().enumerate() {
            let (indices, bitems) = &mut buckets[slot % n];
            indices.push(i);
            bitems.push(item);
        }
        let mut batches = Vec::new();
        for (worker, (indices, bitems)) in buckets.into_iter().enumerate() {
            if bitems.is_empty() {
                continue;
            }
            batches.push(self.submit_batch(worker, indices, bitems, &options)?);
        }

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.jobs.lock().expect("executor lock poisoned").insert(
            id,
            BatchJob {
                batches,
                local,
                options,
                total,
            },
        );
        Ok(id)
    }

    fn poll(&self, job: JobId) -> Option<JobSnapshot> {
        let jobs = self.jobs.lock().expect("executor lock poisoned");
        let entry = jobs.get(&job)?;
        let mut done = entry.local.len();
        let mut any_live = false;
        let mut any_cancelled = false;
        for batch in &entry.batches {
            match self.probe(batch) {
                Ok((state, batch_done)) => {
                    done += batch_done;
                    match state.as_str() {
                        "queued" | "running" => any_live = true,
                        "cancelled" => any_cancelled = true,
                        _ => {}
                    }
                }
                // Unreachable worker: presumed still running until collect
                // settles the batch one way or the other.
                Err(_) => any_live = true,
            }
        }
        let state = if any_live {
            JobState::Running
        } else if any_cancelled {
            JobState::Cancelled
        } else {
            JobState::Done
        };
        Some(JobSnapshot {
            state,
            done: done.min(entry.total),
            total: entry.total,
        })
    }

    fn cancel(&self, job: JobId) -> bool {
        let jobs = self.jobs.lock().expect("executor lock poisoned");
        let Some(entry) = jobs.get(&job) else {
            return false;
        };
        let mut landed = false;
        for batch in &entry.batches {
            let addr = &self.workers[batch.worker];
            let path = format!("/jobs/{}", batch.remote_job);
            if let Ok((200, doc)) = request_with_retry(addr, "DELETE", &path, None) {
                landed |= doc
                    .get("cancelled")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
            }
        }
        landed
    }

    fn collect(&self, job: JobId) -> Result<Vec<WorkOutcome>, SweepError> {
        let entry = self
            .jobs
            .lock()
            .expect("executor lock poisoned")
            .remove(&job)
            .ok_or(SweepError::UnknownJob { job })?;
        let BatchJob {
            batches,
            local,
            options,
            total,
        } = entry;
        let mut slots: Vec<Option<WorkOutcome>> = (0..total).map(|_| None).collect();
        for (i, outcome) in local {
            slots[i] = Some(outcome);
        }
        let mut queue = batches;
        while let Some(batch) = queue.pop() {
            match self.collect_batch(&batch) {
                Ok(outcomes) => {
                    for (&i, outcome) in batch.indices.iter().zip(outcomes) {
                        slots[i] = Some(outcome);
                    }
                }
                Err(reason) => {
                    // The worker died mid-batch. Re-queue its points on a
                    // survivor — the shared store dedups whatever it had
                    // already finished — or fail them typed if none is
                    // left.
                    self.mark_dead(batch.worker);
                    let Batch {
                        worker,
                        indices,
                        items,
                        ..
                    } = batch;
                    match self.submit_batch(worker + 1, indices.clone(), items.clone(), &options) {
                        Ok(requeued) => queue.push(requeued),
                        Err(_) => {
                            let message = format!("{} died: {reason}", self.workers[worker]);
                            for (&i, item) in indices.iter().zip(&items) {
                                slots[i] = Some(WorkOutcome {
                                    label: item.label.clone(),
                                    outcome: Err(SweepError::Remote {
                                        context: item.label.clone(),
                                        message: message.clone(),
                                    }),
                                    cached: false,
                                    prelinted: false,
                                    key: None,
                                    resumed: false,
                                    elapsed: Duration::ZERO,
                                    obs: None,
                                });
                            }
                        }
                    }
                }
            }
        }
        // Completed points land in the checkpoint log exactly as they
        // would locally — resumed ones are already there.
        if let Some(log) = &options.checkpoint {
            for outcome in slots.iter().flatten() {
                if let (false, Some(key), Ok(record)) =
                    (outcome.resumed, outcome.key, &outcome.outcome)
                {
                    let _ = log.record(key, &outcome.label, record);
                }
            }
        }
        Ok(slots
            .into_iter()
            .map(|o| o.expect("every submitted index resolves"))
            .collect())
    }
}

/// The `POST /batch` request body for `items` under `options`.
fn batch_body(items: &[WorkItem], options: &SweepOptions) -> serde::Value {
    let wire_items: Vec<serde::Value> = items
        .iter()
        .map(|item| {
            let mut m = serde::Map::new();
            m.insert("label".to_string(), item.label.to_value());
            m.insert("experiment".to_string(), item.experiment.to_value());
            if let Some(plan) = &item.faults {
                m.insert("faults".to_string(), plan.to_value());
            }
            serde::Value::Object(m)
        })
        .collect();
    let mut body = serde::Map::new();
    body.insert("items".to_string(), serde::Value::Array(wire_items));
    body.insert("run".to_string(), options.run.to_value());
    body.insert("observe".to_string(), options.observe.to_value());
    body.insert("prelint".to_string(), options.prelint.to_value());
    if let Some(threads) = options.threads {
        body.insert("threads".to_string(), (threads as u64).to_value());
    }
    serde::Value::Object(body)
}

/// One wire outcome document back into a [`WorkOutcome`]. Remote failures
/// arrive as strings (the server serializes `SweepError` via `Display`),
/// so they come back typed as [`SweepError::Remote`] with the item's
/// label as context.
fn parse_outcome(doc: &serde::Value) -> WorkOutcome {
    let label = doc
        .get("label")
        .and_then(|v| v.as_str())
        .unwrap_or_default()
        .to_string();
    let flag = |name: &str| doc.get(name).and_then(|v| v.as_bool()).unwrap_or(false);
    let key = doc
        .get("key")
        .and_then(|v| v.as_str())
        .and_then(|s| u64::from_str_radix(s, 16).ok());
    let outcome = match doc.get("record") {
        Some(serde::Value::Null) | None => Err(SweepError::Remote {
            context: label.clone(),
            message: doc
                .get("error")
                .and_then(|v| v.as_str())
                .unwrap_or("worker returned neither record nor error")
                .to_string(),
        }),
        Some(record) => PointRecord::from_value(record).map_err(|e| SweepError::Remote {
            context: label.clone(),
            message: format!("unparseable record: {e:?}"),
        }),
    };
    let obs = match doc.get("obs") {
        Some(serde::Value::Null) | None => None,
        Some(v) => mcm_obs::ObsSummary::from_value(v).ok(),
    };
    let elapsed = doc
        .get("elapsed_ms")
        .and_then(|v| v.as_f64())
        .map(|ms| Duration::from_secs_f64((ms / 1e3).max(0.0)))
        .unwrap_or(Duration::ZERO);
    WorkOutcome {
        label,
        outcome,
        cached: flag("cached"),
        prelinted: flag("prelinted"),
        resumed: flag("resumed"),
        key,
        elapsed,
        obs,
    }
}

/// The `"error"` field of a refusal body, or the whole body as a fallback.
fn error_message(doc: &serde::Value) -> String {
    doc.get("error")
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .unwrap_or_else(|| serde_json::to_string(doc).unwrap_or_default())
}

/// One HTTP/1.1 exchange in the server's own dialect: request line +
/// `Connection: close` + `Content-Length` body, one JSON response, EOF.
fn http_exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&serde::Value>,
) -> Result<(u16, serde::Value), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let payload = match body {
        Some(v) => serde_json::to_string(v).map_err(|e| format!("request body: {e:?}"))?,
        None => String::new(),
    };
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        payload.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let text = std::str::from_utf8(&raw).map_err(|_| "response is not UTF-8".to_string())?;
    let (header, body_text) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "response has no header/body split".to_string())?;
    let status: u16 = header
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line in `{header}`"))?;
    let value = if body_text.trim().is_empty() {
        serde::Value::Null
    } else {
        serde_json::from_str(body_text.trim())
            .map_err(|e| format!("response is not JSON: {e:?}"))?
    };
    Ok((status, value))
}

/// [`http_exchange`] with the retry/backoff schedule: transient
/// connection failures get [`RETRY_BACKOFF_MS`] more chances before the
/// last error is reported.
fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&serde::Value>,
) -> Result<(u16, serde::Value), String> {
    for backoff in RETRY_BACKOFF_MS {
        match http_exchange(addr, method, path, body) {
            Ok(reply) => return Ok(reply),
            Err(_) => std::thread::sleep(Duration::from_millis(backoff)),
        }
    }
    http_exchange(addr, method, path, body)
        .map_err(|e| format!("{e} (after {} retries)", RETRY_BACKOFF_MS.len()))
}
