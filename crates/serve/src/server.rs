//! The HTTP front door: route dispatch over [`JobTable`] + [`ResultStore`].
//!
//! Endpoints (all JSON, `Connection: close`):
//!
//! | method & path     | effect                                              |
//! |-------------------|-----------------------------------------------------|
//! | `GET /healthz`    | liveness + store/executor counters                  |
//! | `POST /runs`      | submit one experiment (or answer from the store)    |
//! | `POST /sweeps`    | submit a grid (partial spec merged over defaults)   |
//! | `POST /batch`     | submit raw work items (client-side expansion)       |
//! | `GET /jobs`       | list known jobs (summaries, no result bodies)       |
//! | `GET /jobs/:id`   | progress or final document of one job               |
//! | `DELETE /jobs/:id`| request cooperative cancellation                    |
//! | `POST /shutdown`  | stop accepting connections and return              |
//!
//! Statically infeasible healthy submissions are refused up front with a
//! `422` whose body carries the MCM4xx witness from `mcm-analyze`; a
//! duplicate submission whose content key is already in the store is
//! answered instantly (`200`, `"cached": true`) without touching the
//! executor.

use std::fmt;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcm_core::{ExecutionPolicy, Experiment, RunOptions};
use mcm_load::HdOperatingPoint;
use mcm_sweep::{content_key, SweepOptions, SweepSpec, WorkItem};
use serde::Deserialize;

use crate::http::{error_body, read_request, respond, Request};
use crate::jobs::{JobKind, JobTable};
use crate::store::ResultStore;

/// How to stand the service up.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port `0` picks an ephemeral port).
    pub addr: String,
    /// Directory of the persistent result store (created if missing).
    pub store_dir: PathBuf,
    /// Concurrent job slots on the shared executor.
    pub max_jobs: usize,
    /// Worker threads per job (`None`: the executor's ambient pool).
    pub threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7700".to_string(),
            store_dir: PathBuf::from("mcm-store"),
            max_jobs: 2,
            threads: None,
        }
    }
}

/// Why the service could not start or keep running.
#[derive(Debug)]
pub struct ServeError(pub String);

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ServeError {}

/// The bound service. [`Server::run`] handles connections until a
/// `POST /shutdown` arrives.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    store: Arc<ResultStore>,
    table: JobTable,
    threads: Option<usize>,
    shutdown: AtomicBool,
}

/// Route outcome: status code and response body.
type Reply = (u16, serde::Value);

impl Server {
    /// Binds the listener, opens the store, and builds the executor-backed
    /// job table. Nothing is served until [`Server::run`].
    pub fn bind(config: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError(format!("cannot bind {}: {e}", config.addr)))?;
        let store = Arc::new(
            ResultStore::open(&config.store_dir)
                .map_err(|e| ServeError(format!("cannot open store: {e}")))?,
        );
        let executor = mcm_sweep::RayonExecutor::new(config.max_jobs);
        let table = JobTable::new(executor, Arc::clone(&store));
        Ok(Server {
            listener,
            store,
            table,
            threads: config.threads,
            shutdown: AtomicBool::new(false),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has an address")
    }

    /// Serves connections one at a time until shut down. Handlers never
    /// block on simulation — submissions return job ids and polling is
    /// cheap — so serial accept keeps the server trivially race-free.
    pub fn run(&self) -> Result<(), ServeError> {
        for conn in self.listener.incoming() {
            match conn {
                Ok(mut stream) => {
                    // A stalled peer must not wedge the accept loop.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                    self.handle_connection(&mut stream);
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                }
                Err(e) => return Err(ServeError(format!("accept failed: {e}"))),
            }
        }
        Ok(())
    }

    fn handle_connection(&self, stream: &mut TcpStream) {
        let request = match read_request(stream) {
            Ok(r) => r,
            Err(e) => {
                respond(stream, 400, &error_body(e));
                return;
            }
        };
        let (status, body) = self.route(&request);
        respond(stream, status, &body);
    }

    /// Dispatches one request to its handler.
    fn route(&self, request: &Request) -> Reply {
        let path = request.path.trim_end_matches('/');
        let path = if path.is_empty() { "/" } else { path };
        match (request.method.as_str(), path) {
            ("GET", "/healthz") => self.healthz(),
            ("POST", "/runs") => self.post_run(request),
            ("POST", "/sweeps") => self.post_sweep(request),
            ("POST", "/batch") => self.post_batch(request),
            ("GET", "/jobs") => self.list_jobs(),
            ("POST", "/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                (200, serde_json::json!({ "status": "shutting-down" }))
            }
            (method, p) if p.starts_with("/jobs/") => {
                let Ok(id) = p["/jobs/".len()..].parse::<u64>() else {
                    return (400, error_body(format!("bad job id in `{p}`")));
                };
                match method {
                    "GET" => self.get_job(id),
                    "DELETE" => self.cancel_job(id),
                    _ => (405, error_body("jobs accept GET and DELETE")),
                }
            }
            (_, "/healthz" | "/runs" | "/sweeps" | "/batch" | "/jobs" | "/shutdown") => {
                (405, error_body(format!("method not allowed on {path}")))
            }
            _ => (404, error_body(format!("no route for {path}"))),
        }
    }

    fn healthz(&self) -> Reply {
        (
            200,
            serde_json::json!({
                "status": "ok",
                "jobs": self.table.len(),
                "store_entries": self.store.entries(),
                "store_indexed": self.store.indexed().len(),
                "simulated_points": self.table.executor().simulated()
            }),
        )
    }

    /// `POST /runs`: one experiment, given either in full (`"experiment"`)
    /// or as the paper's shorthand coordinates (`"format"`, `"channels"`,
    /// `"clock_mhz"`). Healthy submissions pass the static feasibility
    /// gate first; known content keys are answered from the store.
    fn post_run(&self, request: &Request) -> Reply {
        let body = match request.json() {
            Ok(v) => v,
            Err(e) => return (400, error_body(e)),
        };
        let mut experiment = match parse_experiment(&body) {
            Ok(e) => e,
            Err(e) => return (400, error_body(e)),
        };
        if let Some(n) = body.get("op_limit").and_then(|v| v.as_u64()) {
            experiment.op_limit = Some(n);
        }
        let run = match parse_run_options(&body) {
            Ok(r) => r,
            Err(e) => return (400, error_body(e)),
        };
        let faults = match parse_faults(&body, experiment.memory.channels) {
            Ok(f) => f,
            Err(e) => return (400, error_body(e)),
        };

        // The static gate: healthy submissions that cannot meet the frame
        // budget are refused before any queueing, with the analyzer's
        // findings as the witness. Faulted runs measure degradation of an
        // intentionally broken configuration, so they bypass the gate.
        if faults.is_none() {
            let verdict = mcm_analyze::verdict(&experiment);
            if let Some(reason) = verdict.reason() {
                return (
                    422,
                    serde_json::json!({
                        "error": reason,
                        "witness": verdict.report.to_json()
                    }),
                );
            }
        }

        let label = body
            .get("label")
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .unwrap_or_else(|| {
                format!(
                    "run/{}ch/{}MHz",
                    experiment.memory.channels, experiment.memory.clock_mhz
                )
            });

        // Identical experiment + options ⇒ identical content key ⇒ the
        // store answers without the executor ever seeing the submission.
        let keyed_run = match &faults {
            Some(plan) => run.clone().with_faults(plan.clone()),
            None => run.clone(),
        };
        let key = match content_key(&experiment, &keyed_run) {
            Ok(k) => k,
            Err(e) => return (500, error_body(format!("cannot key submission: {e}"))),
        };
        if let Some(record) = self.store.get(key) {
            let id = self.table.instant_run(&label, key, &record);
            let mut doc = self
                .table
                .status(id)
                .unwrap_or_else(|| serde_json::json!({ "job": id, "status": "done" }));
            if let serde::Value::Object(m) = &mut doc {
                m.insert("cached".to_string(), serde::Value::Bool(true));
            }
            return (200, doc);
        }

        let mut item = WorkItem::new(label.clone(), experiment);
        item.faults = faults;
        let options = self.sweep_options(run, /* observe */ true, /* prelint */ false);
        match self.table.submit(JobKind::Run, &label, vec![item], options) {
            Ok(id) => (
                202,
                serde_json::json!({
                    "job": id,
                    "status": "queued",
                    "cached": false,
                    "total": 1
                }),
            ),
            Err(e) => (400, error_body(e.to_string())),
        }
    }

    /// `POST /sweeps`: a partial [`SweepSpec`] (under `"spec"`, or the
    /// whole body) merged over the paper defaults, expanded, and queued.
    fn post_sweep(&self, request: &Request) -> Reply {
        let body = match request.json() {
            Ok(v) => v,
            Err(e) => return (400, error_body(e)),
        };
        let spec_value = body.get("spec").cloned().unwrap_or_else(|| body.clone());
        let spec = match merge_spec(&spec_value) {
            Ok(s) => s,
            Err(e) => return (400, error_body(e)),
        };
        let points = match spec.expand() {
            Ok(p) => p,
            Err(e) => return (400, error_body(e.to_string())),
        };
        let items: Vec<WorkItem> = points
            .into_iter()
            .map(|p| {
                let mut item = WorkItem::new(p.label, p.experiment);
                item.faults = p.faults;
                item
            })
            .collect();
        let total = items.len();
        let label = format!("sweep/{total} points");

        let mut run = RunOptions::default();
        if let Some(v) = body.get("verify").and_then(|v| v.as_bool()) {
            run.verify = v;
        }
        if let Some(v) = body.get("execution") {
            run.execution = match ExecutionPolicy::from_value(v) {
                Ok(p) => p,
                Err(e) => return (400, error_body(format!("bad `execution`: {e:?}"))),
            };
        }
        let mut options = self.sweep_options(
            run,
            body.get("observe")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            body.get("prelint")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
        );
        if let Some(n) = body.get("threads").and_then(|v| v.as_u64()) {
            options.threads = Some(n as usize);
        }
        match self.table.submit(JobKind::Sweep, &label, items, options) {
            Ok(id) => (
                202,
                serde_json::json!({ "job": id, "status": "queued", "total": total }),
            ),
            Err(e) => (400, error_body(e.to_string())),
        }
    }

    /// `POST /batch`: raw work items (label + full experiment, optional
    /// fault plan) under job-wide run options — the wire form of
    /// [`Executor`](mcm_sweep::Executor)`::submit` that
    /// [`ServeExecutor`](crate::ServeExecutor) drives. Unlike `/sweeps`
    /// the grid is expanded *client-side*, so one worker can execute shard
    /// `i/n` of a sweep it never sees whole. No static gate applies (the
    /// caller opts into pruning via `"prelint"`, exactly like a local
    /// executor), which keeps remote outcomes point-for-point identical to
    /// [`RayonExecutor`](mcm_sweep::RayonExecutor)'s.
    fn post_batch(&self, request: &Request) -> Reply {
        let body = match request.json() {
            Ok(v) => v,
            Err(e) => return (400, error_body(e)),
        };
        let Some(serde::Value::Array(raw_items)) = body.get("items") else {
            return (400, error_body("batch body needs an `items` array"));
        };
        if raw_items.is_empty() {
            return (400, error_body("batch needs at least one item"));
        }
        let mut items = Vec::with_capacity(raw_items.len());
        for (i, raw) in raw_items.iter().enumerate() {
            match parse_batch_item(raw) {
                Ok(item) => items.push(item),
                Err(e) => return (400, error_body(format!("item {i}: {e}"))),
            }
        }
        let run = match body.get("run") {
            None => RunOptions::default(),
            Some(v) => match RunOptions::from_value(v) {
                Ok(r) => r,
                Err(e) => return (400, error_body(format!("bad `run` options: {e:?}"))),
            },
        };
        let total = items.len();
        let label = body
            .get("label")
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .unwrap_or_else(|| format!("batch/{total} items"));
        let mut options = self.sweep_options(
            run,
            body.get("observe")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            body.get("prelint")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
        );
        if let Some(n) = body.get("threads").and_then(|v| v.as_u64()) {
            options.threads = Some(n as usize);
        }
        match self.table.submit(JobKind::Batch, &label, items, options) {
            Ok(id) => (
                202,
                serde_json::json!({ "job": id, "status": "queued", "total": total }),
            ),
            Err(e) => (400, error_body(e.to_string())),
        }
    }

    fn list_jobs(&self) -> Reply {
        (200, serde_json::json!({ "jobs": self.table.list() }))
    }

    fn get_job(&self, id: u64) -> Reply {
        match self.table.status(id) {
            Some(doc) => (200, doc),
            None => (404, error_body(format!("no job {id}"))),
        }
    }

    fn cancel_job(&self, id: u64) -> Reply {
        match self.table.cancel(id) {
            Some(cancelled) => (
                200,
                serde_json::json!({ "job": id, "cancelled": cancelled }),
            ),
            None => (404, error_body(format!("no job {id}"))),
        }
    }

    /// Every job shares the store directory as its cache directory — that
    /// is what makes executor write-backs service history.
    fn sweep_options(&self, run: RunOptions, observe: bool, prelint: bool) -> SweepOptions {
        SweepOptions {
            threads: self.threads,
            cache_dir: Some(self.store.dir().to_path_buf()),
            run,
            progress: false,
            observe,
            prelint,
            // Checkpoint logs are a client-side concern: a `ServeExecutor`
            // consults and appends its own log around remote batches.
            checkpoint: None,
        }
    }
}

/// One `POST /batch` item: `{"label", "experiment", "faults"?}` with the
/// experiment always in full (batch items come from an expanded spec, not
/// from a human, so there is no shorthand form).
fn parse_batch_item(raw: &serde::Value) -> Result<WorkItem, String> {
    let label = raw
        .get("label")
        .and_then(|v| v.as_str())
        .ok_or("missing `label`")?
        .to_string();
    let experiment = raw.get("experiment").ok_or("missing `experiment`")?;
    let experiment =
        Experiment::from_value(experiment).map_err(|e| format!("bad experiment: {e:?}"))?;
    // No fit validation here, unlike `/runs` and `/sweeps`: a local
    // executor would accept any well-formed plan and let the engine
    // produce its verdict, and remote outcomes must match point for
    // point — so only malformed JSON is a refusal.
    let faults = match raw.get("faults") {
        None | Some(serde::Value::Null) => None,
        Some(value) => Some(
            mcm_fault::FaultPlan::from_value(value)
                .map_err(|e| format!("bad fault plan: {e:?}"))?,
        ),
    };
    let mut item = WorkItem::new(label, experiment);
    item.faults = faults;
    Ok(item)
}

/// The experiment of a `POST /runs` body: full (`"experiment"`) or the
/// shorthand grid coordinates with paper defaults.
fn parse_experiment(body: &serde::Value) -> Result<Experiment, String> {
    if let Some(value) = body.get("experiment") {
        return Experiment::from_value(value).map_err(|e| format!("bad experiment: {e:?}"));
    }
    let point = match body.get("format").and_then(|v| v.as_str()) {
        None => HdOperatingPoint::Hd1080p30,
        Some(s) => parse_point(s)?,
    };
    let channels = body.get("channels").and_then(|v| v.as_u64()).unwrap_or(4) as u32;
    let clock_mhz = body
        .get("clock_mhz")
        .and_then(|v| v.as_u64())
        .unwrap_or(400);
    let workload = match body.get("workload") {
        None => mcm_load::Workload::TableI,
        Some(v) => {
            let name = v.as_str().ok_or("`workload` must be a string name")?;
            mcm_load::Workload::parse(name).map_err(|e| format!("bad workload: {e}"))?
        }
    };
    Experiment::builder()
        .point(point)
        .channels(channels)
        .clock_mhz(clock_mhz)
        .workload(workload)
        .build()
        .map_err(|e| format!("bad run coordinates: {e}"))
}

fn parse_point(s: &str) -> Result<HdOperatingPoint, String> {
    match s {
        "720p30" => Ok(HdOperatingPoint::Hd720p30),
        "720p60" => Ok(HdOperatingPoint::Hd720p60),
        "1080p30" => Ok(HdOperatingPoint::Hd1080p30),
        "1080p60" => Ok(HdOperatingPoint::Hd1080p60),
        "2160p30" => Ok(HdOperatingPoint::Uhd2160p30),
        other => Err(format!(
            "unknown format `{other}` (expected 720p30, 720p60, 1080p30, 1080p60 or 2160p30)"
        )),
    }
}

/// Lenient `"run"` options: every field optional, defaults apply.
fn parse_run_options(body: &serde::Value) -> Result<RunOptions, String> {
    let mut run = RunOptions::default();
    let Some(value) = body.get("run") else {
        return Ok(run);
    };
    let serde::Value::Object(map) = value else {
        return Err("`run` must be a JSON object".to_string());
    };
    for (key, v) in map.iter() {
        match key.as_str() {
            "verify" => {
                run.verify = v.as_bool().ok_or("`run.verify` must be a boolean")?;
            }
            "frames" => {
                run.frames = v.as_u64().ok_or("`run.frames` must be a number")? as u32;
            }
            "op_limit" => {
                run.op_limit = Some(v.as_u64().ok_or("`run.op_limit` must be a number")?);
            }
            "execution" => {
                run.execution = ExecutionPolicy::from_value(v)
                    .map_err(|e| format!("bad `run.execution`: {e:?}"))?;
            }
            other => return Err(format!("unknown run option `{other}`")),
        }
    }
    Ok(run)
}

/// The optional `"faults"` plan, validated against the channel count.
fn parse_faults(
    body: &serde::Value,
    channels: u32,
) -> Result<Option<mcm_fault::FaultPlan>, String> {
    let Some(value) = body.get("faults") else {
        return Ok(None);
    };
    if matches!(value, serde::Value::Null) {
        return Ok(None);
    }
    let plan =
        mcm_fault::FaultPlan::from_value(value).map_err(|e| format!("bad fault plan: {e:?}"))?;
    plan.validate(channels)
        .map_err(|e| format!("fault plan does not fit {channels} channel(s): {e}"))?;
    Ok(Some(plan))
}

/// Merges a partial spec over [`SweepSpec::default`] at the JSON level,
/// so clients name only the axes they vary. Unknown axes are an error —
/// a typo must not silently run the default grid.
fn merge_spec(user: &serde::Value) -> Result<SweepSpec, String> {
    let mut base = serde_json::to_value(&SweepSpec::default())
        .map_err(|e| format!("cannot build default spec: {e:?}"))?;
    match user {
        serde::Value::Null => {}
        serde::Value::Object(map) => {
            let serde::Value::Object(defaults) = &mut base else {
                unreachable!("a struct serializes to an object");
            };
            for (axis, value) in map.iter() {
                if !defaults.contains_key(axis) {
                    return Err(format!("unknown sweep axis `{axis}`"));
                }
                defaults.insert(axis.clone(), value.clone());
            }
        }
        _ => return Err("sweep spec must be a JSON object".to_string()),
    }
    SweepSpec::from_value(&base).map_err(|e| format!("bad sweep spec: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_specs_merge_over_paper_defaults() {
        let spec = merge_spec(&serde_json::json!({
            "channels": [1, 2],
            "clocks_mhz": [200]
        }))
        .unwrap();
        assert_eq!(spec.channels, vec![1, 2]);
        assert_eq!(spec.clocks_mhz, vec![200]);
        // Untouched axes keep the paper defaults.
        assert_eq!(spec.points, SweepSpec::default().points);
        assert_eq!(spec.mappings, SweepSpec::default().mappings);
    }

    #[test]
    fn unknown_axes_are_refused_not_ignored() {
        let e = merge_spec(&serde_json::json!({ "chanels": [1] })).unwrap_err();
        assert!(e.contains("unknown sweep axis `chanels`"), "{e}");
    }

    #[test]
    fn empty_spec_is_the_default_grid() {
        let spec = merge_spec(&serde::Value::Null).unwrap();
        assert_eq!(spec, SweepSpec::default());
    }

    #[test]
    fn shorthand_run_bodies_build_experiments() {
        let exp = parse_experiment(&serde_json::json!({
            "format": "720p60",
            "channels": 2,
            "clock_mhz": 266
        }))
        .unwrap();
        assert_eq!(exp.memory.channels, 2);
        assert_eq!(exp.memory.clock_mhz, 266);
        let e = parse_experiment(&serde_json::json!({ "format": "480i" })).unwrap_err();
        assert!(e.contains("unknown format"), "{e}");
    }

    #[test]
    fn shorthand_bodies_accept_a_workload_name() {
        let exp = parse_experiment(&serde_json::json!({
            "format": "720p30",
            "workload": "stochastic:42:80"
        }))
        .unwrap();
        assert_eq!(exp.workload.name(), "stochastic:42:80");
        // Omitting the key keeps the paper's Table I chain.
        let exp = parse_experiment(&serde_json::json!({ "format": "720p30" })).unwrap();
        assert!(exp.workload.is_default());
        let e = parse_experiment(&serde_json::json!({ "workload": "mpeg2" })).unwrap_err();
        assert!(e.contains("bad workload"), "{e}");
    }

    #[test]
    fn sweep_specs_accept_the_workload_axis() {
        let spec = merge_spec(&serde_json::json!({
            "workloads": ["h264-record", "hevc-record"]
        }))
        .unwrap();
        assert_eq!(spec.workloads.len(), 2);
        assert_eq!(spec.workloads[1].name(), "hevc-record");
    }

    #[test]
    fn full_experiments_round_trip_through_the_body() {
        let exp = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 200);
        let body = serde_json::json!({ "experiment": exp });
        let parsed = parse_experiment(&body).unwrap();
        // Experiment has no PartialEq; the content key is the identity
        // the whole service runs on, so compare that.
        assert_eq!(
            content_key(&parsed, &RunOptions::default()).unwrap(),
            content_key(&exp, &RunOptions::default()).unwrap()
        );
    }

    #[test]
    fn run_options_are_lenient_but_typo_safe() {
        assert_eq!(
            parse_run_options(&serde_json::json!({})).unwrap(),
            RunOptions::default()
        );
        let run =
            parse_run_options(&serde_json::json!({ "run": { "verify": true, "op_limit": 500 } }))
                .unwrap();
        assert!(run.verify);
        assert_eq!(run.op_limit, Some(500));
        let e = parse_run_options(&serde_json::json!({ "run": { "verfy": true } })).unwrap_err();
        assert!(e.contains("unknown run option"), "{e}");
    }

    #[test]
    fn execution_policy_parses_as_string_or_object() {
        let run = parse_run_options(
            &serde_json::json!({ "run": { "execution": "per-channel:2,memoized" } }),
        )
        .unwrap();
        assert_eq!(
            run.execution,
            ExecutionPolicy::per_channel(2).with_memoize_steady(true)
        );
        let run = parse_run_options(
            &serde_json::json!({ "run": { "execution": { "parallelism": "per-channel", "threads": 4 } } }),
        )
        .unwrap();
        assert_eq!(run.execution, ExecutionPolicy::per_channel(4));
        let e = parse_run_options(&serde_json::json!({ "run": { "execution": "warp-drive" } }))
            .unwrap_err();
        assert!(e.contains("bad `run.execution`"), "{e}");
    }
}
