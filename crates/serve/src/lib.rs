//! mcmem as a long-running service: an HTTP/JSON job API over the shared
//! [`Executor`](mcm_sweep::Executor) and a persistent, content-addressed
//! result store.
//!
//! The crate turns the one-shot sweep machinery into infrastructure:
//!
//! * [`Server`] speaks a minimal HTTP/1.1 dialect over `std::net` (no
//!   frameworks — the vendored-dependency discipline applies to the
//!   service layer too) and exposes `POST /runs`, `POST /sweeps`,
//!   `GET /jobs[/:id]`, `DELETE /jobs/:id`, `GET /healthz` and
//!   `POST /shutdown`.
//! * [`JobTable`] maps public job ids onto [`RayonExecutor`] jobs
//!   (bounded concurrency, incremental progress, cooperative
//!   cancellation) and finalizes finished jobs lazily into persisted
//!   result documents.
//! * [`ResultStore`] extends the sweep cache's
//!   [`content_key`](mcm_sweep::content_key) discipline into queryable
//!   history: records live in the same keyed format and the same
//!   directory a sweep cache would use, so a submission whose key is
//!   already stored is answered instantly — the executor never sees it.
//!
//! Statically infeasible healthy submissions are rejected up front with
//! the MCM4xx witness produced by [`mcm_analyze::verdict`].
//!
//! The crate also holds the other end of the wire: [`ServeExecutor`]
//! implements [`Executor`](mcm_sweep::Executor) against one or more
//! running servers (`POST /batch`), so `mcm sweep --executor
//! serve:<addr>` distributes a sweep — or one shard of it — across
//! remote workers with retry, backoff and dead-worker re-queueing.
//!
//! ```no_run
//! use mcm_serve::{ServeConfig, Server};
//!
//! let mut config = ServeConfig::default();
//! config.addr = "127.0.0.1:0".to_string();
//! let server = Server::bind(config).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run().unwrap();
//! ```

#![warn(missing_docs)]

mod client;
mod http;
mod jobs;
mod server;
mod store;

pub use client::ServeExecutor;
pub use http::{error_body, read_request, respond, Request};
pub use jobs::{JobKind, JobTable};
pub use server::{ServeConfig, ServeError, Server};
pub use store::{IndexEntry, ResultStore};

pub use mcm_sweep::RayonExecutor;
