//! The persistent, content-addressed result store.
//!
//! The store is the sweep engine's [`ResultCache`] promoted to a queryable
//! service history: records live under the **same** directory, named by
//! the **same** [`content_key`](mcm_sweep::content_key), so everything a
//! sweep caches the server can answer and vice versa. On top of the raw
//! records the store keeps:
//!
//! * `index.jsonl` — one append-only line per distinct key (label + how it
//!   first entered the store), making the keyed history enumerable without
//!   re-deriving experiments;
//! * `jobs/<id>.json` — the full result document of every finished job
//!   (per-point records, provenance, `ObsSummary`), surviving restarts.
//!
//! Corrupt index lines and job files degrade to absence, mirroring the
//! cache's corrupt-entry-is-a-miss discipline.

use std::collections::BTreeSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use mcm_sweep::{PointRecord, ResultCache, SweepError};

/// One line of `index.jsonl`: a key and where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// The shared content key (also the record's file name).
    pub key: u64,
    /// Human-readable coordinates of the submission that stored it.
    pub label: String,
    /// How the key entered the store: `run` or `sweep`.
    pub kind: String,
}

/// The on-disk store: keyed records (via [`ResultCache`]), the key index,
/// and persisted job results.
#[derive(Debug)]
pub struct ResultStore {
    cache: ResultCache,
    index_path: PathBuf,
    jobs_dir: PathBuf,
    index: Mutex<Vec<IndexEntry>>,
    seen: Mutex<BTreeSet<u64>>,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`. The record
    /// directory doubles as a sweep cache directory — that is the point.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ResultStore, SweepError> {
        let dir = dir.into();
        let cache = ResultCache::new(dir.clone())?;
        let jobs_dir = dir.join("jobs");
        fs::create_dir_all(&jobs_dir).map_err(|e| SweepError::Cache {
            path: jobs_dir.display().to_string(),
            message: e.to_string(),
        })?;
        let index_path = dir.join("index.jsonl");
        let mut index = Vec::new();
        let mut seen = BTreeSet::new();
        if let Ok(text) = fs::read_to_string(&index_path) {
            for line in text.lines() {
                // Corrupt lines are skipped, not fatal: the index is an
                // accelerator over the records, never the records.
                let Ok(v) = serde_json::from_str::<serde::Value>(line) else {
                    continue;
                };
                let key = v
                    .get("key")
                    .and_then(|k| k.as_str())
                    .and_then(|k| u64::from_str_radix(k, 16).ok());
                let label = v.get("label").and_then(|l| l.as_str());
                let kind = v.get("kind").and_then(|k| k.as_str());
                if let (Some(key), Some(label), Some(kind)) = (key, label, kind) {
                    if seen.insert(key) {
                        index.push(IndexEntry {
                            key,
                            label: label.to_string(),
                            kind: kind.to_string(),
                        });
                    }
                }
            }
        }
        Ok(ResultStore {
            cache,
            index_path,
            jobs_dir,
            index: Mutex::new(index),
            seen: Mutex::new(seen),
        })
    }

    /// The record directory (hand this to the executor as its cache dir).
    pub fn dir(&self) -> &Path {
        self.cache.dir()
    }

    /// Looks a content key up in the keyed records.
    pub fn get(&self, key: u64) -> Option<PointRecord> {
        self.cache.load(key)
    }

    /// Stores a record under its key (normally the executor's cache
    /// write-back does this; tests and imports use it directly).
    pub fn put(&self, key: u64, record: &PointRecord) -> Result<(), SweepError> {
        self.cache.store(key, record)
    }

    /// Number of keyed records on disk.
    pub fn entries(&self) -> usize {
        self.cache.entry_count()
    }

    /// Records that a key entered the store. First write per key appends
    /// one `index.jsonl` line; repeats are no-ops. Index write failures
    /// degrade to an in-memory-only index entry.
    pub fn index(&self, key: u64, label: &str, kind: &str) {
        let mut seen = self.seen.lock().expect("store lock poisoned");
        if !seen.insert(key) {
            return;
        }
        let entry = IndexEntry {
            key,
            label: label.to_string(),
            kind: kind.to_string(),
        };
        let line = serde_json::json!({
            "key": format!("{key:016x}"),
            "label": entry.label,
            "kind": entry.kind
        });
        if let Ok(mut f) = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.index_path)
        {
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string(&line).expect("a value tree always serializes")
            );
        }
        self.index.lock().expect("store lock poisoned").push(entry);
    }

    /// The indexed history, oldest first.
    pub fn indexed(&self) -> Vec<IndexEntry> {
        self.index.lock().expect("store lock poisoned").clone()
    }

    /// Persists one finished job's result document under `jobs/<id>.json`.
    pub fn put_job(&self, id: u64, result: &serde::Value) {
        let path = self.jobs_dir.join(format!("{id}.json"));
        if let Ok(json) = serde_json::to_string_pretty(result) {
            let _ = fs::write(path, json);
        }
    }

    /// Loads a persisted job result (jobs survive server restarts).
    pub fn get_job(&self, id: u64) -> Option<serde::Value> {
        let text = fs::read_to_string(self.jobs_dir.join(format!("{id}.json"))).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// The largest persisted job id, so a restarted server never reuses
    /// ids that clients may still hold.
    pub fn last_job_id(&self) -> u64 {
        fs::read_dir(&self.jobs_dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok()?.path().file_stem()?.to_str()?.parse::<u64>().ok())
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mcm-serve-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record() -> PointRecord {
        PointRecord {
            feasible: true,
            infeasible_reason: None,
            access_ms: Some(12.5),
            budget_ms: Some(33.3),
            verdict: Some("meets".into()),
            core_mw: Some(100.0),
            interface_mw: Some(50.0),
            efficiency: Some(0.8),
            energy_per_bit_pj: Some(1.5),
            latency_p99_ns: None,
            planned_bytes: 1024,
            simulated_bytes: 1024,
            peak_gbytes_per_s: 3.2,
        }
    }

    #[test]
    fn records_and_jobs_round_trip() {
        let dir = tmp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.entries(), 0);
        store.put(0xabc, &record()).unwrap();
        assert_eq!(store.get(0xabc), Some(record()));
        assert_eq!(store.entries(), 1);
        let doc = serde_json::json!({ "status": "done", "points": [1, 2, 3] });
        store.put_job(7, &doc);
        assert_eq!(store.get_job(7), Some(doc));
        assert_eq!(store.get_job(8), None);
        assert_eq!(store.last_job_id(), 7);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn index_dedups_and_survives_reopen() {
        let dir = tmp_dir("index");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.index(1, "a", "run");
            store.index(2, "b", "sweep");
            store.index(1, "a-again", "run");
            assert_eq!(store.indexed().len(), 2);
        }
        let store = ResultStore::open(&dir).unwrap();
        let idx = store.indexed();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[0].label, "a");
        assert_eq!(idx[1].kind, "sweep");
        // New keys keep appending after a reload.
        store.index(3, "c", "run");
        assert_eq!(ResultStore::open(&dir).unwrap().indexed().len(), 3);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_index_lines_are_skipped() {
        let dir = tmp_dir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        store.index(1, "good", "run");
        fs::write(
            dir.join("index.jsonl"),
            "{not json\n{\"key\":\"0001\",\"label\":\"ok\",\"kind\":\"run\"}\n{\"key\":\"zz\"}\n",
        )
        .unwrap();
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.indexed().len(), 1);
        assert_eq!(reopened.indexed()[0].label, "ok");
        let _ = fs::remove_dir_all(dir);
    }
}
