//! # mcm-power — interface power and comparison models
//!
//! The DRAM *core* power is accounted inside the device model
//! (`mcm_dram`); this crate adds the parts the paper computes analytically:
//!
//! * [`InterfacePowerModel`] — equation (1), the per-channel I/O power from
//!   pin count, bonding capacitance ([`BondingTechnique`]), I/O voltage,
//!   clock and activity (≈ 5 mW per channel at 400 MHz);
//! * [`XdrReference`] — the Cell BE XDR operating point (25.6 GB/s, 5 W)
//!   the paper compares against;
//! * [`PowerSummary`] — the Fig. 5 presentation split (core + stacked
//!   interface power).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod interface;
mod report;
mod xdr;

pub use interface::{BondingTechnique, InterfacePowerModel};
pub use report::PowerSummary;
pub use xdr::XdrReference;
