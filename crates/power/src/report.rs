//! Power-breakdown report types shared by the experiment harness.

use core::fmt;

/// The memory subsystem's average power over one frame period, split the way
//  Fig. 5 presents it: DRAM core power with the interface power stacked on
/// top.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerSummary {
    /// DRAM core power (background + activate + burst + refresh), mW.
    pub core_mw: f64,
    /// Interface (I/O) power per equation (1), all channels, mW.
    pub interface_mw: f64,
}

impl PowerSummary {
    /// Total subsystem power, mW.
    pub fn total_mw(&self) -> f64 {
        self.core_mw + self.interface_mw
    }

    /// The interface's share of the total, in `[0, 1]`.
    pub fn interface_share(&self) -> f64 {
        let t = self.total_mw();
        if t == 0.0 {
            0.0
        } else {
            self.interface_mw / t
        }
    }

    /// Publishes the breakdown as run-wide gauges (`power.core_mw`,
    /// `power.interface_mw`, `power.total_mw`) on `recorder`.
    pub fn observe(&self, recorder: &dyn mcm_obs::Recorder) {
        recorder.record_gauge("power.core_mw", None, self.core_mw);
        recorder.record_gauge("power.interface_mw", None, self.interface_mw);
        recorder.record_gauge("power.total_mw", None, self.total_mw());
    }
}

impl fmt::Display for PowerSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} mW (core {:.0} + interface {:.0})",
            self.total_mw(),
            self.core_mw,
            self.interface_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_publishes_all_three_gauges() {
        let p = PowerSummary {
            core_mw: 320.0,
            interface_mw: 16.6,
        };
        let rec = mcm_obs::StatsRecorder::new();
        p.observe(&rec);
        let report = rec.report();
        assert_eq!(report.gauges.len(), 3);
        assert_eq!(report.gauges[0].name, "power.core_mw");
        assert_eq!(report.gauges[0].value, 320.0);
        assert_eq!(report.gauges[2].name, "power.total_mw");
        assert!((report.gauges[2].value - 336.6).abs() < 1e-12);
    }

    #[test]
    fn totals_and_shares() {
        let p = PowerSummary {
            core_mw: 320.0,
            interface_mw: 16.6,
        };
        assert!((p.total_mw() - 336.6).abs() < 1e-12);
        assert!((p.interface_share() - 16.6 / 336.6).abs() < 1e-12);
        assert_eq!(PowerSummary::default().interface_share(), 0.0);
        assert!(p.to_string().contains("337 mW"));
    }
}
