//! The paper's XDR DRAM comparison point.
//!
//! "The Cell Broadband Engine contains a dual XDR DRAM memory interface.
//! The XDR memory interface operating with 1.6 GHz clock frequency acquires
//! 25.6 GB/s bandwidth and consumes typically power of 5 W. According to
//! this study, the proposed theoretical next generation mobile DDR SDRAM
//! with eight channels and 400 MHz clock frequency has similar bandwidth
//! (25.0 GB/s) but power consumption from 4 % to 25 % of the XDR value."

use core::fmt;

/// Published operating point of the Cell BE's XDR memory interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XdrReference {
    /// Peak bandwidth, bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Typical power, watts.
    pub power_w: f64,
    /// Interface clock, hertz.
    pub clock_hz: f64,
}

impl XdrReference {
    /// The Cell BE numbers used by the paper: 25.6 GB/s @ 1.6 GHz, 5 W.
    pub fn cell_be() -> Self {
        XdrReference {
            bandwidth_bytes_per_s: 25.6e9,
            power_w: 5.0,
            clock_hz: 1.6e9,
        }
    }

    /// This subsystem's power as a fraction of the XDR power (the paper's
    /// "4 % to 25 %" metric), given the subsystem's total power in mW.
    pub fn power_fraction(&self, subsystem_power_mw: f64) -> f64 {
        subsystem_power_mw / 1e3 / self.power_w
    }

    /// Bandwidth ratio (subsystem ÷ XDR) for a subsystem bandwidth in B/s.
    pub fn bandwidth_fraction(&self, subsystem_bytes_per_s: f64) -> f64 {
        subsystem_bytes_per_s / self.bandwidth_bytes_per_s
    }

    /// Energy efficiency of the XDR interface, bytes per joule.
    pub fn bytes_per_joule(&self) -> f64 {
        self.bandwidth_bytes_per_s / self.power_w
    }
}

impl fmt::Display for XdrReference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XDR: {:.1} GB/s @ {:.1} GHz, {:.1} W",
            self.bandwidth_bytes_per_s / 1e9,
            self.clock_hz / 1e9,
            self.power_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_be_numbers() {
        let x = XdrReference::cell_be();
        assert_eq!(x.bandwidth_bytes_per_s, 25.6e9);
        assert_eq!(x.power_w, 5.0);
        assert_eq!(x.to_string(), "XDR: 25.6 GB/s @ 1.6 GHz, 5.0 W");
    }

    #[test]
    fn fractions() {
        let x = XdrReference::cell_be();
        // The paper's 720p 8-channel point (~205 mW) is ~4 % of XDR.
        assert!((x.power_fraction(205.0) - 0.041).abs() < 0.001);
        // And the 2160p point (~1280 mW) is ~26 %.
        assert!((x.power_fraction(1280.0) - 0.256).abs() < 0.001);
        assert!((x.bandwidth_fraction(25.0e9) - 0.9765625).abs() < 1e-9);
        assert!(x.bytes_per_joule() > 5e9);
    }
}
