//! Channel interface (I/O) power — the paper's equation (1).
//!
//! The DRAM interconnect power is not simulated; the paper computes it
//! analytically as
//!
//! ```text
//! interface power = nr_of_pins × C × V² × f_clk × activity        (1)
//! ```
//!
//! with 36 toggling pins (32 data + 4 strobe), a 0.4 pF chip-to-chip pin
//! capacitance (the average over the bonding techniques of the cited
//! packaging survey — the value expected for a 3-D die stack), a 1.2 V
//! next-generation I/O voltage and a fixed 50 % activity. At 400 MHz this
//! yields ≈ 5 mW per channel, which is exactly the number the paper quotes.

use core::fmt;

use mcm_sim::Frequency;
use serde::{Deserialize, Serialize};

/// Chip-to-chip bonding technique, selecting the per-pin capacitance.
///
/// Individual technique values are estimates consistent with the survey the
/// paper cites; their average is the paper's 0.4 pF working value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BondingTechnique {
    /// Conventional wire bonding (longest leads, highest capacitance).
    WireBond,
    /// Flip-chip attach (shortest path, lowest capacitance).
    FlipChip,
    /// Tape-automated bonding.
    TapeAutomated,
    /// The paper's 3-D stacking assumption: the average of the three.
    ThreeDAverage,
    /// A conventional off-chip channel: package balls, PCB trace and the
    /// far-end pad — an order of magnitude more capacitance than a die
    /// stack. The counterfactual to the paper's enabling technology.
    OffChipPcb,
}

impl BondingTechnique {
    /// Per-pin capacitance, picofarads.
    pub fn capacitance_pf(self) -> f64 {
        match self {
            BondingTechnique::WireBond => 0.70,
            BondingTechnique::FlipChip => 0.15,
            BondingTechnique::TapeAutomated => 0.35,
            BondingTechnique::ThreeDAverage => 0.40,
            BondingTechnique::OffChipPcb => 5.0,
        }
    }
}

impl fmt::Display for BondingTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BondingTechnique::WireBond => write!(f, "wire bond"),
            BondingTechnique::FlipChip => write!(f, "flip chip"),
            BondingTechnique::TapeAutomated => write!(f, "tape automated bonding"),
            BondingTechnique::ThreeDAverage => write!(f, "3-D average"),
            BondingTechnique::OffChipPcb => write!(f, "off-chip PCB"),
        }
    }
}

/// Equation (1) with its parameters.
///
/// # Examples
///
/// ```
/// use mcm_power::InterfacePowerModel;
/// use mcm_sim::Frequency;
///
/// let model = InterfacePowerModel::paper();
/// let p = model.power_mw(Frequency::from_mhz(400));
/// // "these assumptions result in the approximate interface power of
/// //  5 mW per channel"
/// assert!((4.0..=5.0).contains(&p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterfacePowerModel {
    /// Pins toggling during a burst (paper: 36 — data bus + strobes).
    pub pins: u32,
    /// Per-pin capacitance, picofarads.
    pub capacitance_pf: f64,
    /// I/O voltage, volts (paper: 1.2 V for next-generation devices).
    pub io_voltage_v: f64,
    /// Toggle activity factor in `[0, 1]` (paper: fixed 0.5).
    pub activity: f64,
}

impl InterfacePowerModel {
    /// The paper's parameters: 36 pins, 0.4 pF, 1.2 V, 50 % activity.
    pub fn paper() -> Self {
        InterfacePowerModel {
            pins: 36,
            capacitance_pf: BondingTechnique::ThreeDAverage.capacitance_pf(),
            io_voltage_v: 1.2,
            activity: 0.5,
        }
    }

    /// The paper's parameters with a different bonding technique.
    pub fn with_bonding(bonding: BondingTechnique) -> Self {
        InterfacePowerModel {
            capacitance_pf: bonding.capacitance_pf(),
            ..Self::paper()
        }
    }

    /// Equation (1): per-channel interface power in milliwatts at `clock`.
    pub fn power_mw(&self, clock: Frequency) -> f64 {
        // pins × pF × V² × Hz × activity: 1e-12 F × Hz × V² = W.
        self.pins as f64
            * self.capacitance_pf
            * 1e-12
            * self.io_voltage_v
            * self.io_voltage_v
            * clock.as_hz() as f64
            * self.activity
            * 1e3
    }

    /// Interface power for `channels` channels, milliwatts.
    pub fn total_power_mw(&self, clock: Frequency, channels: u32) -> f64 {
        self.power_mw(clock) * channels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_value_at_400mhz_is_about_5mw() {
        let p = InterfacePowerModel::paper().power_mw(Frequency::from_mhz(400));
        // 36 × 0.4 pF × 1.44 V² × 400 MHz × 0.5 = 4.15 mW ≈ "approximately 5 mW".
        assert!((p - 4.1472).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn power_scales_linearly_with_clock_and_channels() {
        let m = InterfacePowerModel::paper();
        let p200 = m.power_mw(Frequency::from_mhz(200));
        let p400 = m.power_mw(Frequency::from_mhz(400));
        assert!((p400 / p200 - 2.0).abs() < 1e-12);
        let t = m.total_power_mw(Frequency::from_mhz(400), 8);
        assert!((t - 8.0 * p400).abs() < 1e-12);
    }

    #[test]
    fn bonding_average_matches_paper() {
        let avg = (BondingTechnique::WireBond.capacitance_pf()
            + BondingTechnique::FlipChip.capacitance_pf()
            + BondingTechnique::TapeAutomated.capacitance_pf())
            / 3.0;
        assert!((avg - BondingTechnique::ThreeDAverage.capacitance_pf()).abs() < 1e-12);
        assert_eq!(BondingTechnique::ThreeDAverage.capacitance_pf(), 0.4);
    }

    #[test]
    fn off_chip_is_an_order_of_magnitude_worse() {
        let stack = InterfacePowerModel::paper();
        let pcb = InterfacePowerModel::with_bonding(BondingTechnique::OffChipPcb);
        let f = Frequency::from_mhz(400);
        let ratio = pcb.power_mw(f) / stack.power_mw(f);
        assert!((10.0..=15.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn flip_chip_is_cheapest() {
        let fc = InterfacePowerModel::with_bonding(BondingTechnique::FlipChip);
        let wb = InterfacePowerModel::with_bonding(BondingTechnique::WireBond);
        let f = Frequency::from_mhz(400);
        assert!(fc.power_mw(f) < wb.power_mw(f));
    }

    #[test]
    fn displays() {
        assert_eq!(BondingTechnique::ThreeDAverage.to_string(), "3-D average");
    }
}
