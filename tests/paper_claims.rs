//! Integration tests asserting the paper's qualitative claims end-to-end —
//! the anchor table from DESIGN.md §1. Each test runs the full simulator
//! stack (load model → interleaver → controllers → DRAM devices → power).

use mcm::prelude::*;

fn run(point: HdOperatingPoint, channels: u32, clock: u64) -> FrameResult {
    Experiment::paper(point, channels, clock)
        .run_with(&RunOptions::default())
        .expect("paper configuration must be runnable")
        .into_frame()
        .expect("single-frame outcome")
}

#[test]
fn table_i_anchor_720p30_needs_about_1_9_gbps() {
    let row = UseCase::hd(HdOperatingPoint::Hd720p30).table_row();
    let gbps = row.gbytes_per_second();
    assert!(
        (1.7..=2.1).contains(&gbps),
        "720p30 {gbps} GB/s vs paper 1.9"
    );
}

#[test]
fn table_i_anchor_1080p30_needs_about_4_3_gbps_at_2_2x() {
    let p720 = UseCase::hd(HdOperatingPoint::Hd720p30).table_row();
    let p1080 = UseCase::hd(HdOperatingPoint::Hd1080p30).table_row();
    let gbps = p1080.gbytes_per_second();
    assert!(
        (3.9..=4.6).contains(&gbps),
        "1080p30 {gbps} GB/s vs paper 4.3"
    );
    let ratio = gbps / p720.gbytes_per_second();
    assert!((2.0..=2.4).contains(&ratio), "ratio {ratio} vs paper 2.2");
}

#[test]
fn table_i_anchor_1080p60_needs_about_8_6_gbps() {
    let gbps = UseCase::hd(HdOperatingPoint::Hd1080p60)
        .table_row()
        .gbytes_per_second();
    assert!(
        (7.7..=9.2).contains(&gbps),
        "1080p60 {gbps} GB/s vs paper 8.6"
    );
}

#[test]
fn fig3_one_channel_low_clocks_miss_720p30_real_time() {
    // "the first two frequencies 200 and 266 MHz cannot meet the
    // performance requirements"
    assert_eq!(
        run(HdOperatingPoint::Hd720p30, 1, 200).verdict,
        RealTimeVerdict::Fails
    );
    assert_eq!(
        run(HdOperatingPoint::Hd720p30, 1, 266).verdict,
        RealTimeVerdict::Fails
    );
}

#[test]
fn fig3_one_channel_333mhz_is_marginal_for_720p30() {
    // "the first clock frequency with the 1-channel configuration meeting
    // the requirement from the access time perspective (333 MHz, marked
    // marginal) is on the edge"
    assert_eq!(
        run(HdOperatingPoint::Hd720p30, 1, 333).verdict,
        RealTimeVerdict::Marginal
    );
}

#[test]
fn fig3_two_channels_meet_720p30_at_every_clock() {
    // "at least two channels are required to satisfy the real-time
    // requirements of the 720p HDTV with all the examined DDR2 clock
    // frequencies"
    for clock in [200u64, 266, 333, 400, 466, 533] {
        let r = run(HdOperatingPoint::Hd720p30, 2, clock);
        assert!(
            r.verdict.is_real_time(),
            "2ch @ {clock} MHz: {} should satisfy 720p30",
            r.access_time
        );
    }
}

#[test]
fn fig3_channel_doubling_gives_about_2x_speedup() {
    // "close to 2x speedup can be achieved by using double clock frequency
    // or double the number of exploited channels"
    let t1 = run(HdOperatingPoint::Hd720p30, 1, 400).access_time;
    let t2 = run(HdOperatingPoint::Hd720p30, 2, 400).access_time;
    let t4 = run(HdOperatingPoint::Hd720p30, 4, 400).access_time;
    for (slow, fast) in [(t1, t2), (t2, t4)] {
        let ratio = slow.as_ps() as f64 / fast.as_ps() as f64;
        assert!((1.85..=2.15).contains(&ratio), "speedup {ratio}");
    }
}

#[test]
fn fig3_clock_doubling_gives_about_2x_speedup() {
    let slow = run(HdOperatingPoint::Hd720p30, 2, 200).access_time;
    let fast = run(HdOperatingPoint::Hd720p30, 2, 400).access_time;
    let ratio = slow.as_ps() as f64 / fast.as_ps() as f64;
    assert!((1.7..=2.1).contains(&ratio), "speedup {ratio}");
}

#[test]
fn fig4_720p60_requires_two_channels_at_400mhz() {
    // "Level 3.2 (720p@60 fps) requires at least two channels"
    assert_eq!(
        run(HdOperatingPoint::Hd720p60, 1, 400).verdict,
        RealTimeVerdict::Fails
    );
    assert_eq!(
        run(HdOperatingPoint::Hd720p60, 2, 400).verdict,
        RealTimeVerdict::Meets
    );
}

#[test]
fn fig4_1080p30_employs_four_channels_at_400mhz() {
    // "In order to be on the safe side regarding the real time
    // requirements, 1080p employs at minimum four channels."
    let two = run(HdOperatingPoint::Hd1080p30, 2, 400);
    assert_eq!(
        two.verdict,
        RealTimeVerdict::Marginal,
        "{}",
        two.access_time
    );
    let four = run(HdOperatingPoint::Hd1080p30, 4, 400);
    assert_eq!(four.verdict, RealTimeVerdict::Meets, "{}", four.access_time);
}

#[test]
fn fig4_2160p30_needs_all_eight_channels() {
    // "The frame format 3840x2160 need[s] all eight channels" — with fewer
    // channels the frame buffers do not even fit (1-2 ch) or the access
    // time fails outright (4 ch).
    let exp = Experiment::paper(HdOperatingPoint::Uhd2160p30, 2, 400);
    assert!(
        exp.run_with(&RunOptions::default()).is_err(),
        "2160p should not fit 2 channels"
    );
    assert_eq!(
        run(HdOperatingPoint::Uhd2160p30, 4, 400).verdict,
        RealTimeVerdict::Fails
    );
    let eight = run(HdOperatingPoint::Uhd2160p30, 8, 400);
    assert!(
        eight.verdict.is_real_time(),
        "8ch 2160p30: {}",
        eight.access_time
    );
    // "2160p format starts to be already doubtful": within 5 % of the
    // margin boundary.
    let ms = eight.access_time.as_ms_f64();
    assert!(
        (26.5..33.4).contains(&ms),
        "2160p 8ch {ms} ms should be near the edge"
    );
}

#[test]
fn fig5_power_anchors() {
    // Paper: 720p ~150 mW (1ch) -> ~205 mW (8ch); 1080p30 4ch ~345 mW;
    // 2160p 8ch ~1280 mW. Allow ±20 % — our device is an estimate of the
    // same theoretical part.
    let p = run(HdOperatingPoint::Hd720p30, 1, 400).power.total_mw();
    assert!((120.0..=180.0).contains(&p), "720p 1ch {p} mW vs paper 150");
    let p8 = run(HdOperatingPoint::Hd720p30, 8, 400).power.total_mw();
    assert!(
        (164.0..=246.0).contains(&p8),
        "720p 8ch {p8} mW vs paper 205"
    );
    assert!(p8 > p, "multi-channel costs moderately more ({p} -> {p8})");
    let p1080 = run(HdOperatingPoint::Hd1080p30, 4, 400).power.total_mw();
    assert!(
        (276.0..=414.0).contains(&p1080),
        "1080p 4ch {p1080} mW vs paper 345"
    );
    let p2160 = run(HdOperatingPoint::Uhd2160p30, 8, 400).power.total_mw();
    assert!(
        (1024.0..=1536.0).contains(&p2160),
        "2160p 8ch {p2160} mW vs paper 1280"
    );
}

#[test]
fn interface_power_is_about_5mw_per_channel_at_400mhz() {
    let p = InterfacePowerModel::paper().power_mw(Frequency::from_mhz(400));
    assert!((4.0..=5.0).contains(&p), "{p} mW vs paper's ~5 mW");
}

#[test]
fn xdr_comparison_bandwidth_and_power_fractions() {
    // "eight channels and 400 MHz … similar bandwidth (25.0 GB/s) but power
    // consumption from 4% to 25% of the XDR value"
    let r = run(HdOperatingPoint::Hd720p30, 8, 400);
    assert!((r.peak_bandwidth_bytes_per_s / 1e9 - 25.6).abs() < 0.01);
    let xdr = XdrReference::cell_be();
    let low = xdr.power_fraction(r.power.total_mw());
    let high = xdr.power_fraction(run(HdOperatingPoint::Uhd2160p30, 8, 400).power.total_mw());
    assert!(
        (0.025..=0.06).contains(&low),
        "720p fraction {low} vs paper 4%"
    );
    assert!(
        (0.18..=0.30).contains(&high),
        "2160p fraction {high} vs paper 25%"
    );
}

#[test]
fn conclusions_minimum_channel_counts_at_400mhz() {
    use mcm::core::analysis::min_channels_real_time;
    let min = |p| min_channels_real_time(p, 400).unwrap();
    assert_eq!(min(HdOperatingPoint::Hd720p30), Some(1));
    assert_eq!(min(HdOperatingPoint::Hd720p60), Some(2));
    assert_eq!(min(HdOperatingPoint::Hd1080p30), Some(2)); // marginal at 2, safe at 4
    assert_eq!(min(HdOperatingPoint::Hd1080p60), Some(4));
    assert_eq!(min(HdOperatingPoint::Uhd2160p30), Some(8));
}
