//! Cross-crate integration tests: invariants that only hold when the load
//! model, interleaver, controllers, devices and power models cooperate
//! correctly. Runs use truncated frames (`op_limit`) — the full-frame
//! behaviour is covered by `paper_claims.rs`.

use mcm::core::ChunkPolicy;
use mcm::prelude::*;

fn quick_experiment(channels: u32) -> Experiment {
    let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, channels, 400);
    e.op_limit = Some(30_000);
    e
}

fn frame(e: &Experiment) -> FrameResult {
    e.run_with(&RunOptions::default())
        .unwrap()
        .into_frame()
        .unwrap()
}

#[test]
fn determinism_same_experiment_same_result() {
    let e = quick_experiment(4);
    let a = frame(&e);
    let b = frame(&e);
    assert_eq!(a.access_time, b.access_time);
    assert_eq!(a.verdict, b.verdict);
    assert!((a.power.total_mw() - b.power.total_mw()).abs() < 1e-12);
    assert_eq!(a.report.bytes_read, b.report.bytes_read);
    assert_eq!(
        a.report.channels[0].device.activates,
        b.report.channels[0].device.activates
    );
}

#[test]
fn energy_decomposition_is_consistent() {
    let r = frame(&quick_experiment(2));
    for ch in &r.report.channels {
        let sum = ch.background_energy_pj + ch.event_energy_pj;
        assert!(
            (ch.total_energy_pj - sum).abs() < 1e-6,
            "background + event must equal total"
        );
        assert!(ch.background_energy_pj > 0.0);
        assert!(ch.event_energy_pj > 0.0);
    }
}

#[test]
fn bytes_are_conserved_through_the_interleaver() {
    let r = frame(&quick_experiment(8));
    let moved = r.report.bytes_read + r.report.bytes_written;
    assert_eq!(moved, r.simulated_bytes);
    // And every byte became a read or write burst on some channel
    // (bursts are 16 B; requests are burst-aligned in this configuration).
    let bursts: u64 = r
        .report
        .channels
        .iter()
        .map(|c| c.ctrl.read_bursts + c.ctrl.write_bursts)
        .sum();
    assert_eq!(bursts * 16, moved);
}

#[test]
fn channel_load_is_balanced_by_interleaving() {
    let r = frame(&quick_experiment(4));
    let bursts: Vec<u64> = r
        .report
        .channels
        .iter()
        .map(|c| c.ctrl.read_bursts + c.ctrl.write_bursts)
        .collect();
    let max = *bursts.iter().max().unwrap() as f64;
    let min = *bursts.iter().min().unwrap() as f64;
    assert!(min / max > 0.99, "imbalance: {bursts:?}");
}

#[test]
fn rbc_beats_brc_end_to_end() {
    let mut rbc = quick_experiment(2);
    rbc.memory = rbc.memory.with_mapping(AddressMapping::Rbc);
    let mut brc = quick_experiment(2);
    brc.memory = brc.memory.with_mapping(AddressMapping::Brc);
    let t_rbc = frame(&rbc).access_time;
    let t_brc = frame(&brc).access_time;
    // "somewhat better performance were achieved compared to the BRC type"
    assert!(t_rbc < t_brc, "RBC {t_rbc} should beat BRC {t_brc}");
    let ratio = t_brc.as_ps() as f64 / t_rbc.as_ps() as f64;
    assert!(
        ratio < 1.5,
        "the gap should be 'somewhat', not dramatic: {ratio}"
    );
}

#[test]
fn open_page_beats_closed_page_end_to_end() {
    let open = frame(&quick_experiment(2)).access_time;
    let mut closed = quick_experiment(2);
    closed.memory.controller.page_policy = PagePolicy::Closed;
    let t_closed = frame(&closed).access_time;
    assert!(open < t_closed);
}

#[test]
fn power_down_saves_energy_on_light_loads() {
    // A light load (720p30 on 8 channels) idles most of the frame; the
    // paper's immediate power-down policy must beat never powering down.
    let pd = frame(&quick_experiment(8)).power.core_mw;
    let mut never = quick_experiment(8);
    never.memory.controller.power_down = PowerDownPolicy::Never;
    let no_pd = frame(&never).power.core_mw;
    assert!(
        pd < no_pd * 0.8,
        "immediate PD {pd} mW should clearly beat never {no_pd} mW"
    );
}

#[test]
fn per_channel_chunks_keep_efficiency_flat_fixed_chunks_degrade() {
    // Equalize the simulated byte span so every run sees the same stage
    // mix (per-channel chunks grow with the channel count).
    let eff = |chunk: ChunkPolicy, channels: u32| {
        let mut e = quick_experiment(channels);
        let bytes_per_op = chunk.bytes(channels) as u64;
        e.op_limit = Some(16 * 1024 * 1024 / bytes_per_op);
        e.chunk = chunk;
        frame(&e).efficiency()
    };
    let flat1 = eff(ChunkPolicy::PerChannel(64), 1);
    let flat8 = eff(ChunkPolicy::PerChannel(64), 8);
    assert!((flat1 - flat8).abs() < 0.08, "{flat1} vs {flat8}");
    let fixed8 = eff(ChunkPolicy::Fixed(64), 8);
    assert!(
        fixed8 < flat8 - 0.1,
        "cache-line masters should collapse multi-channel efficiency: {fixed8} vs {flat8}"
    );
}

#[test]
fn interleave_granularity_roundtrips_through_subsystem() {
    // Submit transactions through subsystems with different granules and
    // verify byte conservation (the ablation's correctness precondition).
    for granule in [16u64, 32, 64, 128] {
        let mut cfg = MemoryConfig::paper(4, 400);
        cfg.granule_bytes = granule;
        let mut mem = MemorySubsystem::new(&cfg).unwrap();
        for i in 0..64 {
            mem.submit(MasterTransaction {
                op: if i % 2 == 0 {
                    AccessOp::Read
                } else {
                    AccessOp::Write
                },
                addr: i * 1000,
                len: 333,
                arrival: 0,
            })
            .unwrap();
        }
        let rep = mem.finish(0).unwrap();
        assert_eq!(
            rep.bytes_read + rep.bytes_written,
            64 * 333,
            "granule {granule}"
        );
    }
}

#[test]
fn dpb_reference_frames_raise_encoder_load() {
    // With the DPB maximum (5 refs at 720p L3.1) the encoder traffic grows
    // 25 % over the paper's 4-reference calibration.
    let mut uc = UseCase::hd(HdOperatingPoint::Hd720p30);
    let base = uc.table_row().bits_per_frame();
    uc.ref_frames = RefFrames::DpbMax;
    let dpb = uc.table_row().bits_per_frame();
    assert!(dpb > base);
    let enc_base = UseCase::hd(HdOperatingPoint::Hd720p30).stage_traffic()[7].read_bits;
    let enc_dpb = uc.stage_traffic()[7].read_bits;
    assert_eq!(enc_dpb * 4, enc_base * 5);
}

#[test]
fn contemporary_mobile_ddr_cannot_reach_the_required_clocks() {
    // The real 2008-era part tops out at 200 MHz — the paper's case for a
    // *next-generation* device.
    let mut e = quick_experiment(1);
    e.memory.controller.cluster.timing = TimingParams::contemporary_mobile_ddr();
    // 400 MHz is out of range for the contemporary part.
    assert!(e.run_with(&RunOptions::default()).is_err());
    // At 200 MHz it runs, but fails 720p30 real time on one channel.
    let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 1, 200);
    e.memory.controller.cluster.timing = TimingParams::contemporary_mobile_ddr();
    assert_eq!(frame(&e).verdict, RealTimeVerdict::Fails);
}

#[test]
fn wider_interleave_granules_still_work_end_to_end() {
    for granule in [16u64, 64, 256] {
        let mut e = quick_experiment(4);
        e.memory.granule_bytes = granule;
        let r = frame(&e);
        assert!(r.access_time > SimTime::ZERO, "granule {granule}");
    }
}

#[test]
fn clustered_memory_full_stack() {
    let use_case = UseCase::hd(HdOperatingPoint::Hd720p30);
    let mut mem = ClusteredMemory::new(&MemoryConfig::paper(2, 400), 2).unwrap();
    let layout = FrameLayout::new(&use_case, mem.cluster_capacity_bytes()).unwrap();
    let traffic = FrameTraffic::new(&use_case, &layout, 128).unwrap();
    for op in traffic.take(20_000) {
        mem.submit(MasterTransaction {
            op: if op.write {
                AccessOp::Write
            } else {
                AccessOp::Read
            },
            addr: op.addr,
            len: op.len as u64,
            arrival: 0,
        })
        .unwrap();
    }
    let reports = mem.finish(0).unwrap();
    assert!(reports[0].bytes_read + reports[0].bytes_written > 0);
    assert_eq!(reports[1].bytes_read + reports[1].bytes_written, 0);
}

#[test]
fn linear_channel_mapping_strands_the_load_in_one_channel() {
    // A granule as large as one channel's capacity disables interleaving:
    // the paper's Table II exists precisely to avoid this.
    let time = |granule: u64, channels: u32| {
        let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, channels, 400);
        e.memory.granule_bytes = granule;
        e.op_limit = Some(30_000);
        frame(&e).access_time
    };
    let interleaved_4ch = time(16, 4);
    let linear_4ch = time(64 << 20, 4);
    let one_channel = time(16, 1);
    assert!(linear_4ch.as_ps() > 2 * interleaved_4ch.as_ps());
    // Linear 4-channel is (roughly) one-channel performance; the chunk
    // policy still scales the transaction size, so compare loosely.
    let ratio = linear_4ch.as_ps() as f64 / one_channel.as_ps() as f64;
    assert!((0.5..=1.5).contains(&ratio), "ratio {ratio}");
}

#[test]
fn event_energy_breakdown_sums_to_the_event_total() {
    let r = frame(&quick_experiment(2));
    for c in &r.report.channels {
        let (a, rd, wr, rf) = c.event_breakdown_pj;
        let sum = a + rd + wr + rf;
        assert!(
            (sum - c.event_energy_pj).abs() < 1e-6,
            "breakdown {sum} != event total {}",
            c.event_energy_pj
        );
        assert!(rd > 0.0 && wr > 0.0 && a > 0.0);
    }
}
