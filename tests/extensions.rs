//! Integration tests for the repository's extensions beyond the paper —
//! each one pins the qualitative claim its bench target prints.

use mcm::core::eventsim::run_event_driven;
use mcm::core::{analysis, ChunkPolicy, Pacing};
use mcm::prelude::*;
use mcm_ctrl::{InterconnectModel, WritePolicy};
use mcm_dram::ClusterConfig;

fn quick(channels: u32) -> Experiment {
    let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, channels, 400);
    e.op_limit = Some(40_000);
    e
}

fn frame(e: &Experiment) -> FrameResult {
    e.run_with(&RunOptions::default())
        .unwrap()
        .into_frame()
        .unwrap()
}

#[test]
fn e4_event_kernel_cross_validates_the_direct_path() {
    let e = quick(2);
    let direct = frame(&e);
    let scale = direct.planned_bytes as f64 / direct.simulated_bytes as f64;
    let direct_raw = direct.access_time.as_ps() as f64 / scale;
    let event = run_event_driven(&e, u32::MAX).unwrap();
    let ratio = direct_raw / event.access_time.as_ps() as f64;
    assert!((ratio - 1.0).abs() < 0.02, "ratio {ratio}");
}

#[test]
fn e7_steady_state_stays_real_time_for_720p() {
    let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 2, 400);
    e.op_limit = Some(60_000);
    let r = e
        .run_with(&RunOptions::steady(4))
        .unwrap()
        .into_steady()
        .unwrap();
    assert!(r.all_real_time());
    assert!(r.steady_access_time().is_some());
}

#[test]
fn e8_viewfinder_fits_one_channel_where_recording_needs_four() {
    let mut rec = Experiment::paper(HdOperatingPoint::Hd1080p30, 1, 400);
    rec.op_limit = Some(60_000);
    assert_eq!(frame(&rec).verdict, RealTimeVerdict::Fails);
    let mut vf = rec.clone();
    vf.use_case = UseCase::viewfinder(HdOperatingPoint::Hd1080p30);
    let r = frame(&vf);
    assert!(
        r.verdict.is_real_time(),
        "viewfinder 1ch: {}",
        r.access_time
    );
}

#[test]
fn e9_off_chip_interconnect_costs_power_not_bandwidth() {
    let stacked = frame(&quick(4));
    let mut off = quick(4);
    off.memory.controller.interconnect = InterconnectModel::off_chip();
    off.interface = InterfacePowerModel::with_bonding(BondingTechnique::OffChipPcb);
    let off = frame(&off);
    // Bandwidth-bound access time within 2%.
    let ratio = off.access_time.as_ps() as f64 / stacked.access_time.as_ps() as f64;
    assert!((0.98..=1.02).contains(&ratio), "access ratio {ratio}");
    // Interface power an order of magnitude worse.
    assert!(off.power.interface_mw > 10.0 * stacked.power.interface_mw);
}

#[test]
fn e11_future_device_outruns_the_paper_device() {
    let mut paper = Experiment::paper(HdOperatingPoint::Hd720p30, 1, 533);
    paper.op_limit = Some(40_000);
    let t_paper = frame(&paper).access_time;
    let mut future = paper.clone();
    future.memory.clock_mhz = 800;
    future.memory.controller.cluster = ClusterConfig::future_lpddr2(800);
    let t_future = frame(&future).access_time;
    let speedup = t_paper.as_ps() as f64 / t_future.as_ps() as f64;
    assert!((1.3..=1.7).contains(&speedup), "speedup {speedup}");
}

#[test]
fn a7_write_batching_speeds_up_the_frame_without_losing_bytes() {
    let base = frame(&quick(2));
    let mut batched = quick(2);
    batched.memory.controller.write_policy = WritePolicy::Batched(32);
    let b = frame(&batched);
    assert!(b.access_time < base.access_time);
    // Byte conservation holds across the posted-write path.
    assert_eq!(
        b.report.bytes_read + b.report.bytes_written,
        base.report.bytes_read + base.report.bytes_written
    );
    let bursts: u64 = b
        .report
        .channels
        .iter()
        .map(|c| c.ctrl.read_bursts + c.ctrl.write_bursts)
        .sum();
    assert_eq!(bursts * 16, b.simulated_bytes);
}

#[test]
fn pacing_and_batching_compose() {
    let mut e = quick(4);
    e.pacing = Pacing::Paced;
    e.memory.controller.write_policy = WritePolicy::Batched(16);
    let r = frame(&e);
    assert!(r.access_time > mcm_sim::SimTime::ZERO);
    assert!(r.power.core_mw > 0.0);
}

#[test]
fn headroom_uses_the_experiment_configuration() {
    // Batching raises the sustainable frame rate.
    let mut base = quick(1);
    base.op_limit = Some(120_000);
    let plain = analysis::max_sustainable_fps(&base).unwrap().unwrap();
    let mut batched = base.clone();
    batched.memory.controller.write_policy = WritePolicy::Batched(32);
    let better = analysis::max_sustainable_fps(&batched).unwrap().unwrap();
    assert!(better > plain, "{better} vs {plain}");
}

#[test]
fn mlp_window_one_hurts_most_at_eight_channels() {
    let mut e = Experiment::paper(HdOperatingPoint::Hd720p30, 8, 400);
    e.chunk = ChunkPolicy::Fixed(64);
    e.op_limit = Some(30_000);
    let narrow = run_event_driven(&e, 1).unwrap().access_time;
    let wide = run_event_driven(&e, 64).unwrap().access_time;
    assert!(
        narrow.as_ps() as f64 > 1.8 * wide.as_ps() as f64,
        "narrow {narrow} vs wide {wide}"
    );
}
