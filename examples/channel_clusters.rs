//! The paper's future-work proposal, running: divide a large multi-channel
//! memory into independent channel clusters so idle clusters stay in
//! power-down while one cluster serves the active use case.
//!
//! We compare one 8-channel memory against 2 clusters x 4 channels serving
//! a 1080p30 recording (which needs only 4 channels), with the load placed
//! entirely in cluster 0.
//!
//! Run with: `cargo run --release --example channel_clusters`

use mcm::prelude::*;

fn main() {
    let use_case = UseCase::hd(HdOperatingPoint::Hd1080p30);
    let budget_cycles = 13_333_333; // 33.3 ms at 400 MHz

    // Flat 8-channel memory.
    let flat = Experiment::paper(HdOperatingPoint::Hd1080p30, 8, 400)
        .run_with(&RunOptions::default())
        .expect("flat 8-channel run")
        .into_frame()
        .expect("single-frame outcome");
    println!(
        "flat 8-channel:       {:>6.2} ms, {}",
        flat.access_time.as_ms_f64(),
        flat.power
    );

    // Clustered: 2 x 4 channels; the recording lives in cluster 0 and
    // cluster 1 spends the frame in power-down.
    let mut clustered =
        ClusteredMemory::new(&MemoryConfig::paper(4, 400), 2).expect("2 clusters x 4 channels");
    let geometry = Geometry::next_gen_mobile_ddr();
    let layout = FrameLayout::with_options(
        &use_case,
        &LayoutOptions::bank_staggered(
            clustered.cluster_capacity_bytes(),
            geometry.page_bytes() as u64,
            4,
            geometry.banks,
        ),
    )
    .expect("1080p fits one 4-channel cluster");
    let traffic = FrameTraffic::new(&use_case, &layout, 64 * 4).expect("traffic plan");
    for op in traffic {
        clustered
            .submit(MasterTransaction {
                op: if op.write {
                    AccessOp::Write
                } else {
                    AccessOp::Read
                },
                addr: op.addr,
                len: op.len as u64,
                arrival: 0,
            })
            .expect("transaction within cluster 0");
    }
    let reports = clustered.finish(budget_cycles).expect("cluster reports");
    let frame_ns = 1e9 / 30.0;
    let active_mw = reports[0].core_energy_pj / frame_ns;
    let idle_mw = reports[1].core_energy_pj / frame_ns;
    let interface = InterfacePowerModel::paper();
    // Only the active cluster's interface toggles.
    let if_mw = interface.total_power_mw(Frequency::from_mhz(400), 4);
    println!(
        "clustered 2x4:        {:>6.2} ms, {:.0} mW (active {:.0} + idle {:.0} + interface {:.0})",
        reports[0].access_time.as_ms_f64(),
        active_mw + idle_mw + if_mw,
        active_mw,
        idle_mw,
        if_mw
    );
    println!(
        "\nidle cluster overhead: {:.1} mW — the cost of keeping 4 spare channels\n\
         in power-down, vs. widening every access across all 8 channels",
        idle_mw
    );
}
