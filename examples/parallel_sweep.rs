//! Sweep every HD operating point over channel counts and clocks — a
//! superset of the paper's Figs. 3 and 4 — on the parallel sweep engine,
//! and print which configurations record in real time.
//!
//! Run with: `cargo run --release --example parallel_sweep`
//!
//! Compared to looping over `Experiment::paper(..).run()` by hand, the
//! engine runs the grid on a thread pool (results stay in grid order),
//! isolates per-point failures, and can cache results on disk: point it
//! at a directory with `SweepOptions::default().with_cache_dir(..)` or use
//! the `mcm sweep --cache DIR` CLI and a re-run simulates nothing.

use mcm::prelude::*;

const CLOCKS_MHZ: [u64; 6] = [200, 266, 333, 400, 466, 533];
const CHANNELS: [u32; 4] = [1, 2, 4, 8];

fn main() {
    // One spec for the whole grid; expansion order is documented as
    // points -> channels -> clocks, so the printed tables just slice the
    // ordered results.
    let spec = SweepSpec {
        points: HdOperatingPoint::ALL.to_vec(),
        channels: CHANNELS.to_vec(),
        clocks_mhz: CLOCKS_MHZ.to_vec(),
        ..SweepSpec::default()
    };
    let result =
        run_sweep_on(&RayonExecutor::default(), &spec, &SweepOptions::default()).expect("sweep");
    let mut rows = result.points.chunks(CLOCKS_MHZ.len());

    for point in HdOperatingPoint::ALL {
        let budget_ms = point.frame_budget().as_ms_f64();
        println!(
            "\n=== {point} — frame budget {budget_ms:.2} ms (margin {:.2} ms) ===",
            budget_ms * 0.85
        );
        print!("  ch\\MHz |");
        for clk in CLOCKS_MHZ {
            print!(" {clk:>9}");
        }
        println!();
        for ch in CHANNELS {
            print!("  {ch:>6} |");
            for cell in rows.next().expect("row") {
                match &cell.outcome {
                    Ok(r) if r.feasible => {
                        let mark = match r.verdict.as_deref() {
                            Some("meets") => ' ',
                            Some("MARGINAL") => '~',
                            _ => '!',
                        };
                        print!(" {:>7.2}{mark} ", r.access_ms.unwrap_or(f64::NAN));
                    }
                    Ok(_) => print!(" {:>9}", "n/a"),
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            println!();
        }
        // The paper's conclusion per level: the minimum channel count.
        let min = mcm_core::analysis::min_channels_meeting(point, 400).expect("sweep at 400 MHz");
        match min {
            Some(ch) => println!("  -> needs {ch} channel(s) at 400 MHz"),
            None => println!("  -> no evaluated configuration meets real time at 400 MHz"),
        }
    }
    println!("\n{}", result.stats);
    println!("(~ marginal: misses the 15% data-processing margin; ! fails real time)");
}
