//! Sweep every HD operating point over channel counts and clocks — a
//! superset of the paper's Figs. 3 and 4 — and print which configurations
//! record in real time.
//!
//! Run with: `cargo run --release --example hd_sweep`

use mcm::prelude::*;

const CLOCKS_MHZ: [u64; 6] = [200, 266, 333, 400, 466, 533];
const CHANNELS: [u32; 4] = [1, 2, 4, 8];

fn main() {
    for point in HdOperatingPoint::ALL {
        let budget_ms = point.frame_budget().as_ms_f64();
        println!(
            "\n=== {point} — frame budget {budget_ms:.2} ms (margin {:.2} ms) ===",
            budget_ms * 0.85
        );
        print!("  ch\\MHz |");
        for clk in CLOCKS_MHZ {
            print!(" {clk:>9}");
        }
        println!();
        for ch in CHANNELS {
            print!("  {ch:>6} |");
            for clk in CLOCKS_MHZ {
                match Experiment::paper(point, ch, clk).run() {
                    Ok(r) => {
                        let mark = match r.verdict {
                            RealTimeVerdict::Meets => ' ',
                            RealTimeVerdict::Marginal => '~',
                            RealTimeVerdict::Fails => '!',
                        };
                        print!(" {:>7.2}{mark} ", r.access_time.as_ms_f64());
                    }
                    Err(CoreError::Load(_)) => print!(" {:>9}", "n/a"),
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            println!();
        }
        // The paper's conclusion per level: the minimum channel count.
        let min = mcm_core::analysis::min_channels_meeting(point, 400).expect("sweep at 400 MHz");
        match min {
            Some(ch) => println!("  -> needs {ch} channel(s) at 400 MHz"),
            None => println!("  -> no evaluated configuration meets real time at 400 MHz"),
        }
    }
    println!("\n(~ marginal: misses the 15% data-processing margin; ! fails real time)");
}
