//! Model your own workload: implement [`LoadModel`] for a pipeline the
//! built-in catalogue does not cover, then run it through the unmodified
//! engine with [`Experiment::run_with_model`].
//!
//! The model here is a *drone camera*: an aerial 1080p30 recorder with no
//! local display — the viewfinder stages (display scaling and refresh)
//! disappear — but with a doubled motion-search window to track fast global
//! motion, so the encoder reads twice the reference data per frame. The
//! question the engine answers: does losing the display pay for the wider
//! search, or does the drone need more channels than the camcorder?
//!
//! Run with: `cargo run --release --example custom_workload`

use mcm::load::{
    Footprint, FrameLayout, FrameTraffic, LayoutOptions, LoadError, StageTraffic, TableIModel,
    Traffic,
};
use mcm::prelude::*;

/// An aerial recorder: Table I without the display chain, with a doubled
/// encoder motion-search window.
#[derive(Debug, Clone)]
struct DroneCamera {
    base: UseCase,
}

impl DroneCamera {
    /// The per-stage traffic table: Table I, reshaped. Dropping a row drops
    /// the stage from the synthesized stream; the buffer layout is
    /// untouched.
    fn rows(&self) -> Vec<StageTraffic> {
        self.base
            .stage_traffic()
            .into_iter()
            .filter(|t| !matches!(t.stage, Stage::ScaleToDisplay | Stage::DisplayCtrl))
            .map(|mut t| {
                if t.stage == Stage::VideoEncoder {
                    t.read_bits *= 2; // wide motion search
                }
                t
            })
            .collect()
    }
}

impl LoadModel for DroneCamera {
    fn name(&self) -> String {
        "drone-record".to_string()
    }

    fn use_case(&self) -> &UseCase {
        &self.base
    }

    fn validate(&self) -> Result<(), LoadError> {
        self.base.validate()
    }

    fn bits_per_second(&self) -> u64 {
        let per_frame: u64 = self.rows().iter().map(StageTraffic::total_bits).sum();
        per_frame * u64::from(self.base.fps)
    }

    fn stage_rows(&self, _frame: u64) -> Vec<StageTraffic> {
        self.rows()
    }

    fn footprint(&self, options: &LayoutOptions) -> Result<Footprint, LoadError> {
        // Same buffers as Table I — the display buffers still exist in the
        // layout, they simply see no traffic — so delegate.
        TableIModel::new(self.base).footprint(options)
    }

    fn traffic(
        &self,
        options: &LayoutOptions,
        chunk_bytes: u32,
        frame: u64,
        shed: &[Stage],
    ) -> Result<Traffic, LoadError> {
        let layout = FrameLayout::with_options(&self.base, options)?.rotated(frame);
        let t = FrameTraffic::with_rows(&self.base, &self.rows(), &layout, chunk_bytes, shed)?;
        Ok(Traffic::Single(t))
    }
}

fn main() {
    let base = UseCase::hd(HdOperatingPoint::Hd1080p30);
    let drone = DroneCamera { base };
    drone.validate().expect("base use case is consistent");

    // How the reshaped table compares with Table I.
    let table_i = TableIModel::new(base);
    println!("Per-stage traffic, Mb/frame (drone vs Table I):");
    let paper_rows = table_i.stage_rows(0);
    for t in &paper_rows {
        let drone_mbits = drone
            .stage_rows(0)
            .iter()
            .find(|d| d.stage == t.stage)
            .map(StageTraffic::total_mbits);
        match drone_mbits {
            Some(m) => println!(
                "  {:<22} {:>8.2}  vs {:>8.2}",
                t.stage.label(),
                m,
                t.total_mbits()
            ),
            None => println!(
                "  {:<22} {:>8} vs {:>8.2}",
                t.stage.label(),
                "dropped",
                t.total_mbits()
            ),
        }
    }
    println!(
        "Sustained demand: {:.2} GB/s (drone) vs {:.2} GB/s (Table I)\n",
        drone.bits_per_second() as f64 / 8e9,
        table_i.bits_per_second() as f64 / 8e9,
    );

    // Size a 400 MHz multi-channel memory for the drone. The experiment's
    // use case still sets the frame budget; the model sets the traffic.
    println!("Sizing a 400 MHz multi-channel memory for the drone:");
    for channels in [1u32, 2, 4, 8] {
        let exp = Experiment::paper(HdOperatingPoint::Hd1080p30, channels, 400);
        let r = exp
            .run_with_model(&drone, &RunOptions::default())
            .map(|o| o.into_frame().expect("single-frame outcome"));
        match r {
            Ok(r) => {
                println!(
                    "  {channels} ch: {:>6.2} ms [{}] {}",
                    r.access_time.as_ms_f64(),
                    r.verdict,
                    r.power
                );
                if r.verdict == RealTimeVerdict::Meets {
                    println!("  -> {channels} channels carry the drone's 1080p30 chain");
                    break;
                }
            }
            Err(e) => println!("  {channels} ch: {e}"),
        }
    }
}
