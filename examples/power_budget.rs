//! Power-aware configuration search: for each recording format, find the
//! cheapest (lowest-power) multi-channel configuration that still records
//! in real time — the engineering question behind the paper's Fig. 5 — and
//! compare the winner against the Cell BE XDR interface.
//!
//! Run with: `cargo run --release --example power_budget`

use mcm::prelude::*;

const CLOCKS_MHZ: [u64; 6] = [200, 266, 333, 400, 466, 533];
const CHANNELS: [u32; 4] = [1, 2, 4, 8];

fn main() {
    let xdr = XdrReference::cell_be();
    println!("Cheapest real-time configuration per format (search space:");
    println!("  {{1,2,4,8}} channels x {{200..533}} MHz, meets-with-margin only)\n");

    for point in HdOperatingPoint::ALL {
        let mut best: Option<(u32, u64, f64, f64)> = None; // ch, clk, mW, ms
        for ch in CHANNELS {
            for clk in CLOCKS_MHZ {
                let run = Experiment::paper(point, ch, clk)
                    .run_with(&RunOptions::default())
                    .map(|o| o.into_frame().expect("single-frame outcome"));
                let Ok(result) = run else {
                    continue; // frame buffers exceed this capacity
                };
                if result.verdict != RealTimeVerdict::Meets {
                    continue;
                }
                let mw = result.power.total_mw();
                if best.is_none_or(|(_, _, b, _)| mw < b) {
                    best = Some((ch, clk, mw, result.access_time.as_ms_f64()));
                }
            }
        }
        match best {
            Some((ch, clk, mw, ms)) => println!(
                "  {point}: {ch} ch @ {clk} MHz -> {mw:>5.0} mW, {ms:>5.2} ms \
                 ({:.1}% of the XDR interface's 5 W)",
                xdr.power_fraction(mw) * 100.0
            ),
            None => println!("  {point}: no evaluated configuration meets real time"),
        }
    }

    println!("\nFixed 8-channel 400 MHz memory across formats (the paper's XDR point):");
    for point in HdOperatingPoint::ALL {
        let run = Experiment::paper(point, 8, 400)
            .run_with(&RunOptions::default())
            .map(|o| o.into_frame().expect("single-frame outcome"));
        if let Ok(result) = run {
            let mw = result.power.total_mw();
            println!(
                "  {point}: {mw:>5.0} mW = {:>4.1}% of XDR at {:.1} GB/s peak",
                xdr.power_fraction(mw) * 100.0,
                result.peak_bandwidth_bytes_per_s / 1e9
            );
        }
    }
}
