//! Going beyond the paper's five Table I columns: build a custom recording
//! use case (1440p30 with 2x digital zoom, DPB-maximum reference frames),
//! validate it against the H.264 level system, and size a memory for it.
//!
//! Run with: `cargo run --release --example custom_use_case`

use mcm::prelude::*;

fn main() {
    // A 2560x1440 (QHD) 30 fps recorder with 2x digizoom. The level system
    // tells us the smallest H.264 level that can carry it.
    let format = FrameFormat::new(2560, 1440).expect("non-zero dimensions");
    let level = H264Level::minimum_for(format, 30).expect("QHD30 fits level 5");
    println!("2560x1440@30 requires H.264 level {level}");
    println!(
        "  level limits: {} kbps max bitrate, DPB allows {} reference frames",
        level.limits().max_br_kbps,
        level.max_ref_frames(format)
    );

    let use_case = UseCase {
        video: format,
        fps: 30,
        level,
        digizoom: 2.0,
        display: FrameFormat::WVGA,
        display_hz: 60,
        video_kbps: 50_000, // a practical rate well under the level cap
        audio_kbps: 256,
        ref_frames: RefFrames::DpbMax,
        encoder_factor: 6,
        mode: UseCaseMode::Recording,
    };
    use_case.validate().expect("parameters are consistent");

    let row = use_case.table_row();
    println!(
        "\nExecution-memory load: {:.0} Mb/frame = {:.2} GB/s",
        row.bits_per_frame() as f64 / 1e6,
        row.gbytes_per_second()
    );
    println!("Per-stage traffic (Mb/frame):");
    for t in use_case.stage_traffic() {
        println!("  {:<22} {:>8.2}", t.stage.label(), t.total_mbits());
    }

    // Size the memory: walk up the channel counts at 400 MHz.
    println!("\nSizing a 400 MHz multi-channel memory:");
    for channels in [1u32, 2, 4, 8] {
        let exp = Experiment {
            use_case,
            memory: MemoryConfig::paper(channels, 400),
            chunk: ChunkPolicy::PerChannel(64),
            pacing: Pacing::Greedy,
            margin: 0.15,
            interface: InterfacePowerModel::paper(),
            op_limit: None,
            workload: Workload::default(),
        };
        let r = exp
            .run_with(&RunOptions::default())
            .map(|o| o.into_frame().expect("single-frame outcome"));
        match r {
            Ok(r) => {
                println!(
                    "  {channels} ch: {:>6.2} ms [{}] {}",
                    r.access_time.as_ms_f64(),
                    r.verdict,
                    r.power
                );
                if r.verdict == RealTimeVerdict::Meets {
                    println!("  -> {channels} channels suffice for QHD30 with 2x zoom");
                    break;
                }
            }
            Err(e) => println!("  {channels} ch: {e}"),
        }
    }
}
