//! Run the same experiment two ways: the direct bandwidth-bound path (the
//! paper's access-time measurement) and the discrete-event kernel with a
//! bounded window of outstanding master transactions — and watch the
//! multi-channel speedup depend on memory-level parallelism.
//!
//! Run with: `cargo run --release --example event_driven`

use mcm::core::eventsim::run_event_driven;
use mcm::core::ChunkPolicy;
use mcm::prelude::*;

fn main() {
    let mut exp = Experiment::paper(HdOperatingPoint::Hd720p30, 4, 400);
    exp.chunk = ChunkPolicy::Fixed(64); // a cache-line master
    exp.op_limit = Some(100_000); // a frame prefix keeps the demo snappy

    // The direct path: flood the memory, measure the drain time.
    let direct = exp
        .run_with(&RunOptions::default())
        .expect("direct run")
        .into_frame()
        .expect("single-frame outcome");
    let raw_ms = direct.access_time.as_ms_f64() * direct.simulated_bytes as f64
        / direct.planned_bytes as f64;
    println!("direct (flood):          {raw_ms:.3} ms for the prefix");

    // The event-driven path at different outstanding-transaction windows.
    for window in [1u32, 2, 4, 16, 256] {
        let r = run_event_driven(&exp, window).expect("event-driven run");
        println!(
            "event-driven, window {window:>3}: {:.3} ms  ({} transactions, {} kernel events)",
            r.access_time.as_ms_f64(),
            r.transactions,
            r.events
        );
    }

    println!(
        "\nWith a wide window the kernel converges to the direct measurement;\n\
         with window 1 the master is latency-bound and extra channels idle."
    );
}
