//! Quickstart: simulate the paper's headline configuration.
//!
//! Full-HD (1080p) H.264/AVC recording at 30 fps needs ≈ 4.3 GB/s of
//! execution-memory bandwidth; the paper's answer is a four-channel 400 MHz
//! next-generation mobile DDR memory at ≈ 345 mW. This example runs exactly
//! that experiment and prints what the simulator sees.
//!
//! Run with: `cargo run --release --example quickstart`

use mcm::prelude::*;

fn main() {
    // The recording use case: 1920x1088 @ 30 fps, H.264 level 4 (Table I
    // column four), with the paper's defaults (digizoom 1, WVGA display at
    // 60 Hz, four reference frames, encoder traffic factor six).
    let use_case = UseCase::hd(HdOperatingPoint::Hd1080p30);
    let row = use_case.table_row();
    println!("Use case: 1080p30 H.264/AVC level 4 video recording");
    println!(
        "  execution-memory load: {:.0} Mb/frame = {:.2} GB/s\n",
        row.bits_per_frame() as f64 / 1e6,
        row.gbytes_per_second()
    );

    // The memory: 4 channels x (memory controller + DRAM interconnect +
    // 512 Mb bank cluster), 400 MHz DDR, 16-byte channel interleaving.
    let experiment = Experiment::paper(HdOperatingPoint::Hd1080p30, 4, 400);
    let outcome = experiment
        .run_with(&RunOptions::default())
        .expect("the paper configuration is valid");
    let result = outcome.into_frame().expect("single-frame outcome");

    println!("Memory: 4 channels x 32-bit mobile DDR @ 400 MHz");
    println!(
        "  peak bandwidth:    {:.1} GB/s",
        result.peak_bandwidth_bytes_per_s / 1e9
    );
    println!(
        "  achieved:          {:.1} GB/s ({:.0}% efficiency)",
        result.achieved_bandwidth_bytes_per_s() / 1e9,
        result.efficiency() * 100.0
    );
    println!(
        "  frame access time: {:.2} ms (budget {:.2} ms) -> {}",
        result.access_time.as_ms_f64(),
        result.frame_budget.as_ms_f64(),
        result.verdict
    );
    println!("  average power:     {}", result.power);

    // Per-channel row-buffer behaviour, straight from the controllers.
    let ch0 = &result.report.channels[0];
    println!(
        "\nChannel 0: {} row hits / {} misses / {} conflicts, {} refreshes, {} wakeups",
        ch0.ctrl.row_hits,
        ch0.ctrl.row_misses,
        ch0.ctrl.row_conflicts,
        ch0.ctrl.refreshes_forced + ch0.ctrl.refreshes_idle,
        ch0.ctrl.wakeups,
    );
}
