//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input token
//! stream is walked directly. Supported shapes — non-generic structs with
//! named fields, and non-generic enums whose variants are unit, tuple, or
//! struct-like. That covers every derive site in this workspace; anything
//! else produces a `compile_error!` naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

fn err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips leading attributes (`#[...]` / doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1; // optional `(crate)` etc.
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Splits a token slice on top-level commas, tracking `<...>` depth so that
/// commas inside generic arguments do not split.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts the field names of a `{ ... }` struct body.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for piece in split_top_level_commas(body) {
        let i = skip_attrs_and_vis(&piece, 0);
        if i >= piece.len() {
            continue; // trailing comma
        }
        let TokenTree::Ident(name) = &piece[i] else {
            return Err(format!("unsupported field syntax near `{}`", piece[i]));
        };
        match piece.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        fields.push(name.to_string());
    }
    Ok(fields)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got `{other}`")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected type name, got `{other}`")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored derive"
            ));
        }
    }
    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        return Err(format!(
            "unsupported body for `{name}` (unit/tuple structs not supported)"
        ));
    };
    let body: Vec<TokenTree> = body.stream().into_iter().collect();

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(&body)?,
        }),
        "enum" => {
            let mut variants = Vec::new();
            for piece in split_top_level_commas(&body) {
                let i = skip_attrs_and_vis(&piece, 0);
                if i >= piece.len() {
                    continue;
                }
                let TokenTree::Ident(vname) = &piece[i] else {
                    return Err(format!("unsupported variant syntax near `{}`", piece[i]));
                };
                let vname = vname.to_string();
                match piece.get(i + 1) {
                    None => variants.push(Variant::Unit(vname)),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        variants.push(Variant::Tuple(vname, split_top_level_commas(&inner).len()));
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        variants.push(Variant::Struct(vname, parse_named_fields(&inner)?));
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        return Err(format!("explicit discriminant on `{vname}` not supported"));
                    }
                    Some(other) => {
                        return Err(format!("unsupported variant syntax near `{other}`"));
                    }
                }
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Derives `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(it) => it,
        Err(e) => return err(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in &fields {
                inserts.push_str(&format!(
                    "m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut m = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let bind_list = binds.join(", ");
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({bind_list}) => {{\n\
                                 let mut m = ::serde::Map::new();\n\
                                 m.insert({vn:?}.to_string(), {payload});\n\
                                 ::serde::Value::Object(m)\n\
                             }}\n"
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let bind_list = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "inner.insert({f:?}.to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bind_list} }} => {{\n\
                                 let mut inner = ::serde::Map::new();\n\
                                 {inserts}\
                                 let mut m = ::serde::Map::new();\n\
                                 m.insert({vn:?}.to_string(), ::serde::Value::Object(inner));\n\
                                 ::serde::Value::Object(m)\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(it) => it,
        Err(e) => return err(&e),
    };
    let code = match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(obj.get({f:?}).ok_or_else(|| ::serde::Error::missing_field({f:?}))?)?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(concat!(\"expected object for \", stringify!({name}))))?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in &variants {
                match v {
                    Variant::Unit(vn) => {
                        unit_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),\n"));
                        // Also accept the externally-tagged object form.
                        keyed_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),\n"));
                    }
                    Variant::Tuple(vn, n) => {
                        if *n == 1 {
                            keyed_arms.push_str(&format!(
                                "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                            ));
                        } else {
                            let gets: Vec<String> = (0..*n)
                                .map(|k| format!(
                                    "::serde::Deserialize::from_value(arr.get({k}).ok_or_else(|| ::serde::Error::custom(\"tuple variant too short\"))?)?"
                                ))
                                .collect();
                            keyed_arms.push_str(&format!(
                                "{vn:?} => {{\n\
                                     let arr = payload.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array payload\"))?;\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}\n",
                                gets.join(", ")
                            ));
                        }
                    }
                    Variant::Struct(vn, fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(inner.get({f:?}).ok_or_else(|| ::serde::Error::missing_field({f:?}))?)?,\n"
                            ));
                        }
                        keyed_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                                 let inner = payload.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object payload\"))?;\n\
                                 return Ok({name}::{vn} {{\n{inits}}});\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let Some(s) = v.as_str() {{\n\
                             match s {{\n{unit_arms}_ => return Err(::serde::Error::custom(format!(\"unknown variant `{{s}}` for {name}\"))),\n}}\n\
                         }}\n\
                         if let Some(obj) = v.as_object() {{\n\
                             if obj.len() == 1 {{\n\
                                 let (tag, payload) = obj.iter().next().ok_or_else(|| ::serde::Error::custom(\"empty variant object\"))?;\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n{keyed_arms}_ => return Err(::serde::Error::custom(format!(\"unknown variant `{{tag}}` for {name}\"))),\n}}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(concat!(\"cannot deserialize \", stringify!({name}))))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
