//! Offline stand-in for `rand`, vendored because this build environment has
//! no network access to crates.io. Implements the subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`thread_rng`]. All randomness is splitmix64;
//! statistical quality is fine for test-data generation, not cryptography.

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Uniform draw of a full-range value (bool / integer / unit-interval
    /// float), mirroring `rand::Rng::gen`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

/// Types [`Rng::gen`] can produce. Mirrors the `Standard` distribution.
pub trait Standard {
    /// Builds a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}
impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}
macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> $t { bits as $t }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts. Mirrors `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Uniform draw from `self`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

fn below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo + below(rng, span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    //! RNG implementations.

    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's ChaCha-based
    /// `StdRng` — deterministic for a given seed, like the original).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Alias: the small-footprint RNG is the same splitmix64 here.
    pub type SmallRng = StdRng;

    /// Process-global RNG handle returned by [`crate::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        pub(crate) inner: StdRng,
    }

    impl Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// A fresh RNG seeded from the system clock (mirrors `rand::thread_rng`,
/// without thread-local caching).
pub fn thread_rng() -> rngs::ThreadRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    rngs::ThreadRng {
        inner: SeedableRng::seed_from_u64(nanos),
    }
}

pub mod prelude {
    //! Common imports.
    pub use super::rngs::{SmallRng, StdRng, ThreadRng};
    pub use super::{thread_rng, Rng, SeedableRng};
}
