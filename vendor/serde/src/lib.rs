//! Offline stand-in for `serde`, vendored because this build environment has
//! no network access to crates.io.
//!
//! Unlike real serde's visitor architecture, this implementation routes all
//! (de)serialization through a single JSON-like [`Value`] tree. The public
//! surface mirrors the subset the workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits, `#[derive(Serialize, Deserialize)]` for structs
//! and enums (externally-tagged, like real serde), and the `serde_json`
//! companion crate for text round-trips.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like value tree: the common interchange format for this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub struct Number {
    n: N,
}

#[derive(Debug, Clone, Copy)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// Wraps an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number { n: N::U(v) }
    }
    /// Wraps a signed integer.
    pub fn from_i64(v: i64) -> Self {
        Number { n: N::I(v) }
    }
    /// Wraps a float.
    pub fn from_f64(v: f64) -> Self {
        Number { n: N::F(v) }
    }
    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::U(v) => Some(v),
            N::I(v) => u64::try_from(v).ok(),
            N::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            N::F(_) => None,
        }
    }
    /// The value as `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::U(v) => i64::try_from(v).ok(),
            N::I(v) => Some(v),
            N::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            N::F(_) => None,
        }
    }
    /// The value as `f64` (always available, possibly lossy).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.n {
            N::U(v) => v as f64,
            N::I(v) => v as f64,
            N::F(f) => f,
        })
    }
    /// Whether the number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::F(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.n, other.n) {
            (N::U(a), N::U(b)) => a == b,
            (N::I(a), N::I(b)) => a == b,
            (N::F(a), N::F(b)) => a == b,
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::U(v) => write!(f, "{v}"),
            N::I(v) => write!(f, "{v}"),
            // Debug formatting of f64 is the shortest representation that
            // round-trips, which is what JSON wants.
            N::F(v) if v.is_finite() => {
                if v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v:?}")
                }
            }
            N::F(_) => write!(f, "null"),
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON, matching `serde_json::to_string`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
            f.write_str("\"")?;
            for c in s.chars() {
                match c {
                    '"' => f.write_str("\\\"")?,
                    '\\' => f.write_str("\\\\")?,
                    '\n' => f.write_str("\\n")?,
                    '\r' => f.write_str("\\r")?,
                    '\t' => f.write_str("\\t")?,
                    c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                    c => write!(f, "{c}")?,
                }
            }
            f.write_str("\"")
        }
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// An insertion-order-preserving string-keyed map of [`Value`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }
    /// Inserts a key, replacing (in place) any previous value for it.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }
    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl Value {
    /// `true` if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    /// The numeric payload as `f64`, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    /// The numeric payload as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    /// The numeric payload as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    /// Object-field or `Null` lookup that never panics (mirrors
    /// `serde_json::Value::get` loosely; use `Index` for the panicky form).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An arbitrary error message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error {
            msg: format!("missing field `{name}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize / Deserialize impls for std types --------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::from_u64(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(concat!("expected unsigned integer for ", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::from_i64(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(concat!("expected integer for ", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom("expected number for f64"))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number for f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::custom("expected 2-element array"))?;
        if a.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::custom("expected 3-element array"))?;
        if a.len() != 3 {
            return Err(Error::custom("expected 3-element array"));
        }
        Ok((
            A::from_value(&a[0])?,
            B::from_value(&a[1])?,
            C::from_value(&a[2])?,
        ))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
