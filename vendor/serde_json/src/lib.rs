//! Offline stand-in for `serde_json`: JSON text round-trips for the vendored
//! serde [`Value`] tree, plus the `json!` construction macro.

pub use serde::{Error, Map, Number, Value};

use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    m.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not expected in this
                            // workspace's data; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let chunk =
                        std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Glue for the `json!` macro: callers of `serde_json::json!` need not
/// depend on `serde` directly. Not public API.
#[doc(hidden)]
pub fn __to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] with JSON-like syntax. Supports nested objects with
/// string-literal keys, arrays, `null`, and arbitrary serializable
/// expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($items:tt)* ]) => { $crate::json_array_internal!([] $($items)*) };
    ({ $($entries:tt)* }) => { $crate::json_object_internal!({} $($entries)*) };
    ($other:expr) => { $crate::__to_value(&$other) };
}

/// Internal array muncher for [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    // Finished.
    ([ $($done:expr,)* ]) => { $crate::Value::Array(vec![ $($done),* ]) };
    // Next item is a nested structure or expression, comma-separated.
    ([ $($done:expr,)* ] $next:tt , $($rest:tt)*) => {
        $crate::json_array_internal!([ $($done,)* $crate::json!($next), ] $($rest)*)
    };
    // Final item without trailing comma.
    ([ $($done:expr,)* ] $($last:tt)+) => {
        $crate::Value::Array(vec![ $($done,)* $crate::json!($($last)+) ])
    };
}

/// Internal object muncher for [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ({ $($kdone:expr => $vdone:expr,)* }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($kdone.to_string(), $vdone); )*
        $crate::Value::Object(m)
    }};
    // Entry whose value is a single token tree (covers nested {}, [], literals,
    // and parenthesized expressions), comma-separated.
    ({ $($kdone:expr => $vdone:expr,)* } $key:literal : $val:tt , $($rest:tt)*) => {
        $crate::json_object_internal!({ $($kdone => $vdone,)* $key => $crate::json!($val), } $($rest)*)
    };
    // Final single-tt entry.
    ({ $($kdone:expr => $vdone:expr,)* } $key:literal : $val:tt) => {
        $crate::json_object_internal!({ $($kdone => $vdone,)* $key => $crate::json!($val), })
    };
    // Entry whose value is a general expression (e.g. `a.b(c)`): capture up to
    // the next top-level comma via expr fragment.
    ({ $($kdone:expr => $vdone:expr,)* } $key:literal : $val:expr , $($rest:tt)*) => {
        $crate::json_object_internal!({ $($kdone => $vdone,)* $key => $crate::__to_value(&$val), } $($rest)*)
    };
    // Final general-expression entry.
    ({ $($kdone:expr => $vdone:expr,)* } $key:literal : $val:expr) => {
        $crate::json_object_internal!({ $($kdone => $vdone,)* $key => $crate::__to_value(&$val), })
    };
}
