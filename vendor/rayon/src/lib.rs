//! Offline stand-in for `rayon`, vendored because this build environment has
//! no network access to crates.io.
//!
//! Instead of rayon's work-stealing deque, this implements data parallelism
//! with the simplest scheme that preserves rayon's observable contract for
//! the subset this workspace uses: a fixed set of worker threads pulling
//! items off a shared queue, with results written back by index so that
//! collected output is always in input order (rayon's `IndexedParallelIterator`
//! guarantee).
//!
//! Implemented subset:
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool`] with [`ThreadPool::install`];
//! * [`current_num_threads`], honouring `RAYON_NUM_THREADS` exactly like
//!   rayon's global pool (`0` or unparseable falls back to the number of
//!   available CPUs);
//! * `prelude::*` with `into_par_iter()` on `Vec<T>` and `Range<usize>`,
//!   `par_iter()` on slices, and `map(..).collect::<Vec<_>>()`.
//!
//! Differences from real rayon, all irrelevant to the callers here:
//! `install` runs the closure on the calling thread (only the worker count
//! is taken from the pool), nested parallelism does not steal across pools,
//! and a panicking closure aborts the whole parallel call by propagating the
//! first panic at join (rayon also propagates a panic, just not necessarily
//! the first).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// Worker count of the innermost `ThreadPool::install`, if any.
// Thread-local rather than global so concurrent tests with different pool
// sizes do not interfere.
thread_local! {
    static INSTALLED_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn env_threads() -> Option<usize> {
    let v = std::env::var("RAYON_NUM_THREADS").ok()?;
    match v.trim().parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    }
}

fn available_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of threads the current scope's pool would use: the installed
/// pool's size, else `RAYON_NUM_THREADS`, else the available CPU count.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|t| t.get());
    if installed > 0 {
        return installed;
    }
    env_threads().unwrap_or_else(available_cpus)
}

/// Error building a [`ThreadPool`] (this stand-in never actually fails, the
/// type exists for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count
    /// (`RAYON_NUM_THREADS` or the available CPU count).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; `0` means the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads > 0 {
            self.num_threads
        } else {
            env_threads().unwrap_or_else(available_cpus)
        };
        Ok(ThreadPool { threads })
    }
}

/// A pool of a fixed number of worker threads. Workers are spawned per
/// parallel call (scoped threads), not kept alive — per-call spawn cost is
/// microseconds against the millisecond-scale jobs this workspace runs.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool as the ambient pool: parallel iterators
    /// inside use this pool's thread count.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        INSTALLED_THREADS.with(|t| {
            let prev = t.get();
            t.set(self.threads);
            let result = op();
            t.set(prev);
            result
        })
    }
}

/// Runs `f` over `items` on `threads` workers, returning results in input
/// order. The core primitive behind every parallel iterator here.
fn run_ordered<I, R, F>(items: Vec<I>, threads: usize, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let queue: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = queue[i].lock().unwrap().take().expect("item taken once");
                let r = f(item);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

pub mod iter {
    //! The parallel-iterator subset: `into_par_iter` on `Vec`/`Range<usize>`,
    //! `par_iter` on slices, `map`, and `collect` into `Vec`.

    use super::{current_num_threads, run_ordered};

    /// Conversion into a parallel iterator (rayon's entry point).
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Consumes `self` into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    /// Borrowing conversion (`par_iter()` on collections).
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed element type.
        type Item: Send + 'a;
        /// Parallel iterator over references.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// A materialized parallel iterator (this stand-in holds the items).
    #[derive(Debug)]
    pub struct ParIter<I> {
        items: Vec<I>,
    }

    impl<I: Send> ParIter<I> {
        /// Maps each element through `f` (evaluated in parallel at collect).
        pub fn map<R, F>(self, f: F) -> ParMap<I, F>
        where
            R: Send,
            F: Fn(I) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Collects the (unmapped) elements in order.
        pub fn collect<C: FromParIter<I>>(self) -> C {
            C::from_ordered_vec(self.items)
        }
    }

    /// The result of [`ParIter::map`]; parallel execution happens on
    /// `collect`.
    #[derive(Debug)]
    pub struct ParMap<I, F> {
        items: Vec<I>,
        f: F,
    }

    impl<I, R, F> ParMap<I, F>
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        /// Runs the map on the ambient pool and collects results in input
        /// order.
        pub fn collect<C: FromParIter<R>>(self) -> C {
            let threads = current_num_threads();
            C::from_ordered_vec(run_ordered(self.items, threads, &self.f))
        }
    }

    /// Collection targets for [`ParMap::collect`] (rayon's
    /// `FromParallelIterator`, reduced to the ordered-vec case).
    pub trait FromParIter<T> {
        /// Builds the collection from in-order results.
        fn from_ordered_vec(v: Vec<T>) -> Self;
    }

    impl<T> FromParIter<T> for Vec<T> {
        fn from_ordered_vec(v: Vec<T>) -> Self {
            v
        }
    }
}

pub mod prelude {
    //! Glob-importable traits, like `rayon::prelude`.
    pub use crate::iter::{FromParIter, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_install_controls_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
    }

    #[test]
    fn single_thread_pool_runs_serially() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..8)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect()
        });
        assert!(ids.iter().all(|&id| id == ids[0]));
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        assert_eq!(data.len(), 3); // still usable
    }

    #[test]
    fn parallel_execution_uses_multiple_threads() {
        // With enough slow items, a 4-thread pool must touch >1 thread.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..16)
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    std::thread::current().id()
                })
                .collect()
        });
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert!(unique.len() > 1, "expected parallel execution");
    }
}
