//! Offline stand-in for `proptest`, vendored because this build environment
//! has no network access to crates.io.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_filter_map`, range and tuple
//! strategies, `Just`, `prop_oneof!` (weighted and unweighted),
//! `prop::collection::vec`, `any::<T>()`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros. Differences from the real crate:
//! no shrinking (failures report the originally drawn case) and a fixed
//! deterministic RNG seeded per test function.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Subset of `proptest::test_runner`.

    /// Why a test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected (e.g. by `prop_assume!`); it does not count
        /// against the case budget.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
        /// Builds a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            }
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejections tolerated before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config {
                cases,
                max_global_rejects: 65_536,
            }
        }
    }
}

/// Deterministic split-mix RNG used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fixed-seed RNG, perturbed by `salt` (e.g. a hash of the test name).
    pub fn deterministic(salt: u64) -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15 ^ salt,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test-data purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of type `Self::Value`.
///
/// Object-safe core is [`Strategy::gen_value`]; the combinators require
/// `Self: Sized`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Maps generated values through `f`, retrying (up to a bound) when `f`
    /// returns `None`. `reason` documents what was filtered, as in proptest.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterMapStrategy {
            inner: self,
            f,
            reason,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMapStrategy<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMapStrategy<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.gen_value(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                if span == 0 {
                    // Full-width u64 range.
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Weighted choice among boxed strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one arm with weight > 0"
        );
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.gen_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights were exhausted");
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range boolean strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = FullInt<$t>;
            fn arbitrary() -> FullInt<$t> { FullInt(std::marker::PhantomData) }
        }
    )*};
}

/// Full-range integer strategy.
pub struct FullInt<T>(std::marker::PhantomData<T>);

macro_rules! full_int_impl {
    ($($t:ty),*) => {$(
        impl Strategy for FullInt<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
full_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    //! Subset of `proptest::collection`.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod strategy {
    //! Subset of `proptest::strategy`.
    pub use super::{BoxedStrategy, Just, Strategy};
}

pub mod prelude {
    //! Everything a `proptest!` user needs in scope.
    pub use super::collection as prop_collection;
    pub use super::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use super::{any, Arbitrary, BoxedStrategy, Just, OneOf, Strategy, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` module path used by `prop::collection::vec(...)`.
        pub use super::super::collection;
    }
}

/// Hashes a test-function name into an RNG salt so different tests draw
/// different sequences. Not public API.
#[doc(hidden)]
pub fn __salt(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Internal function muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::deterministic($crate::__salt(stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                let case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!("proptest: too many rejected cases in {}", stringify!($name));
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed in {}: {}\n  case: {}",
                            stringify!($name), msg, case_desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// `assert!` that reports through the proptest machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest machinery.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest machinery.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)+);
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted/unweighted choice among strategies, as in proptest.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}
