//! Offline stand-in for `criterion`, vendored because this build environment
//! has no network access to crates.io. Provides the API surface the
//! workspace's benches use; measurement is a plain `std::time::Instant` loop
//! with median-of-samples reporting instead of criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing harness handed to bench closures.
pub struct Bencher {
    samples: u32,
    last_median: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }

    /// Times `routine` with a fresh `setup` product per sample.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }

    /// `iter_batched` variant taking the input by reference.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            times.push(start.elapsed());
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.max(1) as u32;
        self
    }

    /// Overrides the measurement time (accepted, unused by the stand-in).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The top-level bench driver.
pub struct Criterion {
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, tp: Option<Throughput>, mut f: F) {
        let mut b = Bencher {
            samples: self.samples,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        let median = b.last_median;
        let rate = match tp {
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(
                    "  {:.1} MiB/s",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("bench {id:<50} median {median:?}{rate}");
    }

    /// Criterion's CLI entry point; the stand-in has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a bench group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
