//! Offline stand-in for `crossbeam`, vendored because this build environment
//! has no network access to crates.io. Only `crossbeam::thread::scope` is
//! provided, implemented over `std::thread::scope` (Rust ≥ 1.63).

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention
    //! (the spawn closure receives the scope).

    /// Result alias matching `crossbeam::thread::Result`.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle passed to `scope` and `spawn` closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; the closure receives the scope,
        /// as in crossbeam (std passes nothing).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned; joins all of them before returning.
    ///
    /// Unlike crossbeam this never returns `Err`: panics of threads that the
    /// caller did not join propagate as panics (std semantics). Callers that
    /// join every handle — the only pattern in this workspace — see
    /// identical behavior.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
